#include "core/rdd_solver.hpp"

#include <cmath>
#include <optional>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/chebyshev.hpp"
#include "core/gls_poly.hpp"
#include "la/hessenberg_lsq.hpp"
#include "la/vector_ops.hpp"
#include "obs/trace.hpp"
#include "sparse/ilu0.hpp"
#include "sparse/sell.hpp"

namespace pfem::core {

namespace {

using partition::RddPartition;
using partition::RddSubdomain;
using sparse::CsrMatrix;

constexpr int kRddTag = 1;

/// The two rank-local operator blocks (A_loc, A_ext) in the selected
/// storage format.  Built once at setup from the *scaled* matrices; SELL
/// conversion preserves per-row accumulation order, so the iteration is
/// bit-identical across formats.
struct RddOp {
  const CsrMatrix* loc_csr = nullptr;
  const CsrMatrix* ext_csr = nullptr;
  sparse::SellMatrix loc_sell;
  sparse::SellMatrix ext_sell;
  bool sell = false;
  bool overlap = false;
  std::uint64_t spmv_flops = 0;

  void apply_loc(std::span<const real_t> x, std::span<real_t> y) const {
    if (sell) {
      loc_sell.spmv(x, y);
    } else {
      loc_csr->spmv(x, y);
    }
  }
  void apply_ext_add(std::span<const real_t> x_ext,
                     std::span<real_t> y) const {
    if (sell) {
      ext_sell.spmv_add(x_ext, y);
    } else {
      ext_csr->spmv_add(x_ext, y);
    }
  }
};

/// Rank-local RDD kernels: distributed mat-vec (Eq. 48) and reductions.
class RddRank {
 public:
  RddRank(const RddSubdomain& sub, par::Comm& comm)
      : sub_(sub), comm_(comm), nl_(static_cast<std::size_t>(sub.n_local())),
        x_ext_(std::max<std::size_t>(
            static_cast<std::size_t>(sub.n_ext()), 1)) {
    // Prepost the exchange buffers: sizes are fixed by the comm schedule,
    // so the per-iteration resizes in exchange_into_ext never allocate.
    std::size_t max_send = 0, max_recv = 0;
    for (const auto& nb : sub_.neighbors) {
      max_send = std::max(max_send, nb.send_local_rows.size());
      max_recv = std::max(max_recv, nb.recv_ext_positions.size());
    }
    send_buf_.reserve(max_send);
    recv_buf_.reserve(max_recv);
  }

  [[nodiscard]] std::size_t nl() const noexcept { return nl_; }
  [[nodiscard]] par::Comm& comm() noexcept { return comm_; }
  [[nodiscard]] par::PerfCounters& counters() noexcept {
    return comm_.counters();
  }

  /// y <- A x: scatter owned boundary values, gather externals, then
  /// y = A_loc x + A_ext x_ext (Eq. 48).  A_loc reads only owned entries
  /// of x, which the exchange never touches — with `op.overlap` it runs
  /// while the neighbor messages are in flight.  Exchange count per
  /// matvec is one either way.
  void matvec(const RddOp& op, std::span<const real_t> x,
              std::span<real_t> y) {
    OBS_SPAN(comm_.tracer(), "matvec", obs::Cat::Matvec);
    if (op.overlap) {
      exchange_start(x);
      op.apply_loc(x, y);
      exchange_finish();
    } else {
      exchange_into_ext(x);
      op.apply_loc(x, y);
    }
    if (sub_.n_ext() > 0) op.apply_ext_add(x_ext_, y);
    counters().matvecs += 1;
    counters().flops += op.spmv_flops;
    // Redundant ghost-row work of the paper's duplicated-element layout
    // (Fig. 8); zero unless annotate_rdd_fe_duplication() ran.
    counters().flops += sub_.matvec_extra_flops;
  }

  /// One scatter/gather phase filling x_ext from neighbors.
  void exchange_into_ext(std::span<const real_t> x) {
    // The "exchange" span and neighbor_exchanges count the same logical
    // event — a trace is an exact cross-check of the counters.
    OBS_SPAN(comm_.tracer(), "exchange", obs::Cat::Exchange);
    counters().neighbor_exchanges += 1;
    post_sends(x);
    recv_into_ext();
  }

  /// Split exchange, first half: post the boundary sends.  The logical
  /// exchange is counted here; the matching finish emits the "exchange"
  /// span, so a split exchange still contributes exactly one span and
  /// one neighbor_exchanges tick.
  void exchange_start(std::span<const real_t> x) {
    counters().neighbor_exchanges += 1;
    post_sends(x);
  }

  /// Split exchange, second half: complete the receives into x_ext.
  void exchange_finish() {
    OBS_SPAN(comm_.tracer(), "exchange", obs::Cat::Exchange);
    recv_into_ext();
  }

  [[nodiscard]] std::span<const real_t> x_ext() const { return x_ext_; }

  /// Global inner product (Eq. 47).
  [[nodiscard]] real_t dot(std::span<const real_t> x,
                           std::span<const real_t> y) {
    return comm_.allreduce_sum(dot_partial(x, y));
  }

  /// Local partial without the reduction (for batched coefficients).
  [[nodiscard]] real_t dot_partial(std::span<const real_t> x,
                                   std::span<const real_t> y) {
    counters().inner_products += 1;
    counters().flops += 2 * nl_;
    return la::dot(x, y);
  }

 private:
  /// Pack and post the boundary sends (both exchange forms share this,
  /// so the wire order cannot drift between them).
  void post_sends(std::span<const real_t> x) {
    for (const auto& nb : sub_.neighbors) {
      if (nb.send_local_rows.empty()) continue;
      PFEM_DEBUG_CHECK(send_buf_.capacity() >= nb.send_local_rows.size());
      send_buf_.resize(nb.send_local_rows.size());
      for (std::size_t k = 0; k < nb.send_local_rows.size(); ++k)
        send_buf_[k] = x[static_cast<std::size_t>(nb.send_local_rows[k])];
      comm_.exchange_start(nb.rank, kRddTag, send_buf_);
    }
  }

  /// Complete the receives and scatter into x_ext.
  void recv_into_ext() {
    for (const auto& nb : sub_.neighbors) {
      if (nb.recv_ext_positions.empty()) continue;
      PFEM_DEBUG_CHECK(recv_buf_.capacity() >= nb.recv_ext_positions.size());
      recv_buf_.resize(nb.recv_ext_positions.size());
      comm_.exchange_finish(
          nb.rank, kRddTag,
          std::span<real_t>(recv_buf_.data(), recv_buf_.size()));
      for (std::size_t k = 0; k < nb.recv_ext_positions.size(); ++k)
        x_ext_[static_cast<std::size_t>(nb.recv_ext_positions[k])] =
            recv_buf_[k];
    }
  }

  const RddSubdomain& sub_;
  par::Comm& comm_;
  std::size_t nl_;
  Vector x_ext_, send_buf_, recv_buf_;
};

struct SharedOut {
  std::vector<Vector> solutions;
  bool converged = false;
  bool breakdown = false;
  bool trivial_rhs = false;
  index_t iterations = 0;
  index_t restarts = 0;
  real_t final_relres = 0.0;
  std::vector<real_t> history;
  std::vector<par::PerfCounters> setup_counters;
};

void rdd_rank_solve(const RddPartition& part,
                    std::span<const real_t> f_global,
                    const RddOptions& rdd_opts, const SolveOptions& opts,
                    par::Comm& comm, SharedOut& out) {
  const int s = comm.rank();
  const RddSubdomain& sub = part.subs[static_cast<std::size_t>(s)];
  RddRank r(sub, comm);
  const std::size_t nl = r.nl();
  const index_t m = opts.restart;

  obs::Tracer* const tr = comm.tracer();
  OBS_SPAN(tr, "solve_rdd", obs::Cat::Solve);

  // ---- Setup: local copies, norm-1 scaling (row norms need no comm —
  // rows are complete; external-column scaling needs one exchange).
  // The setup region declares state the solve loop uses, so it cannot be
  // a braced scope; open/close the span manually instead.
  const bool traced = tr != nullptr && tr->enabled();
  std::uint16_t setup_depth = 0;
  std::uint64_t setup_t0 = 0;
  if (traced) {
    setup_depth = tr->open();
    setup_t0 = tr->now_ns();
  }
  CsrMatrix a_loc = sub.a_loc;
  CsrMatrix a_ext = sub.a_ext;

  Vector f_loc(nl);
  for (std::size_t l = 0; l < nl; ++l)
    f_loc[l] = f_global[static_cast<std::size_t>(sub.rows[l])];

  Vector dscale(nl, 0.0);
  for (index_t i = 0; i < sub.n_local(); ++i) {
    real_t rownorm = 0.0;
    for (real_t v : a_loc.row_vals(i)) rownorm += std::abs(v);
    for (real_t v : a_ext.row_vals(i)) rownorm += std::abs(v);
    PFEM_CHECK_MSG(rownorm > 0.0, "norm-1 scaling: zero row");
    dscale[static_cast<std::size_t>(i)] = 1.0 / std::sqrt(rownorm);
  }
  r.counters().flops +=
      static_cast<std::uint64_t>(a_loc.nnz() + a_ext.nnz());
  // Exchange the scaling of boundary rows so external columns scale too.
  r.exchange_into_ext(dscale);
  const Vector d_ext(r.x_ext().begin(), r.x_ext().end());

  a_loc.scale_symmetric(dscale);
  {
    auto vals = a_ext.values();
    const auto rp = a_ext.row_ptr();
    const auto ci = a_ext.col_idx();
    for (index_t i = 0; i < a_ext.rows(); ++i)
      for (index_t k = rp[i]; k < rp[i + 1]; ++k)
        vals[k] *= dscale[static_cast<std::size_t>(i)] *
                   d_ext[static_cast<std::size_t>(ci[k])];
  }
  r.counters().flops +=
      2ull * static_cast<std::uint64_t>(a_loc.nnz() + a_ext.nnz());
  Vector b(nl);
  for (std::size_t l = 0; l < nl; ++l) b[l] = dscale[l] * f_loc[l];

  // Kernel selection: convert the scaled blocks to SELL-C-σ when
  // requested (bit-identical per-row accumulation), and overlap A_loc
  // with the in-flight exchange when enabled.  Format::Ebe documented
  // fallback: RDD rows are FULLY assembled (local + external column
  // blocks), so no per-subdomain element sub-assembly exists to run a
  // matrix-free sweep on — the scalar CSR path is used, bit-identically
  // to Format::Csr.
  RddOp op;
  op.overlap = opts.kernels.overlap;
  op.spmv_flops = a_loc.spmv_flops() + a_ext.spmv_flops();
  if (opts.kernels.format == KernelOptions::Format::Sell) {
    op.sell = true;
    op.loc_sell = sparse::SellMatrix::from_csr(a_loc, opts.kernels.chunk,
                                               opts.kernels.sigma);
    if (sub.n_ext() > 0)
      op.ext_sell = sparse::SellMatrix::from_csr(a_ext, opts.kernels.chunk,
                                                 opts.kernels.sigma);
  } else {
    op.loc_csr = &a_loc;
    op.ext_csr = &a_ext;
  }

  // Preconditioner: polynomial (redundant construction) or local ILU(0)
  // block-Jacobi solve.
  std::optional<GlsPolynomial> gls;
  std::optional<ChebyshevPolynomial> cheb;
  std::optional<sparse::Ilu0> ilu;
  std::optional<sparse::Ilu0> schwarz_ilu;
  const std::size_t n_ovl = nl + static_cast<std::size_t>(sub.n_ext());
  int degree = 0;
  if (rdd_opts.precond == RddOptions::Precond::BlockJacobiIlu) {
    ilu.emplace(a_loc);
  } else if (rdd_opts.precond == RddOptions::Precond::AdditiveSchwarz) {
    // Scale the overlap block consistently with the scaled system:
    // rows/cols 0..nl-1 carry dscale, the appended externals carry d_ext.
    sparse::CsrMatrix a_ovl = sub.a_overlap;
    Vector d_full(n_ovl);
    for (std::size_t l = 0; l < nl; ++l) d_full[l] = dscale[l];
    for (std::size_t k = 0; k < static_cast<std::size_t>(sub.n_ext()); ++k)
      d_full[nl + k] = d_ext[k];
    a_ovl.scale_symmetric(d_full);
    schwarz_ilu.emplace(a_ovl);
  } else if (rdd_opts.poly.kind == PolyKind::Gls) {
    gls.emplace(rdd_opts.poly.theta, rdd_opts.poly.degree);
    degree = rdd_opts.poly.degree;
  } else if (rdd_opts.poly.kind == PolyKind::Chebyshev) {
    PFEM_CHECK_MSG(!rdd_opts.poly.theta.empty(),
                   "Chebyshev preconditioner needs an interval");
    cheb.emplace(rdd_opts.poly.theta.front(), rdd_opts.poly.degree);
    degree = rdd_opts.poly.degree;
  } else if (rdd_opts.poly.kind == PolyKind::Neumann) {
    degree = rdd_opts.poly.degree;
  }
  out.setup_counters[static_cast<std::size_t>(s)] = comm.counters();
  if (traced) tr->close("setup", obs::Cat::Setup, setup_t0, setup_depth);

  // z = P(A) v through the distributed mat-vec: `degree` exchanges.
  Vector pa(nl), pb(nl), pc(nl);
  Vector ovl_rhs(n_ovl), ovl_sol(n_ovl);
  auto precondition = [&](std::span<const real_t> v, std::span<real_t> zz) {
    if (rdd_opts.precond == RddOptions::Precond::BlockJacobiIlu) {
      ilu->solve(v, zz);
      r.counters().flops += ilu->solve_flops();
      return;
    }
    if (rdd_opts.precond == RddOptions::Precond::AdditiveSchwarz) {
      // Restricted additive Schwarz: gather the external residual
      // entries (one exchange), solve on the overlap block, keep the
      // owned part of the solution.
      r.exchange_into_ext(v);
      for (std::size_t l = 0; l < nl; ++l) ovl_rhs[l] = v[l];
      const auto ext = r.x_ext();
      for (std::size_t k = 0; k < static_cast<std::size_t>(sub.n_ext()); ++k)
        ovl_rhs[nl + k] = ext[k];
      schwarz_ilu->solve(ovl_rhs, ovl_sol);
      r.counters().flops += schwarz_ilu->solve_flops();
      for (std::size_t l = 0; l < nl; ++l) zz[l] = ovl_sol[l];
      return;
    }
    switch (rdd_opts.poly.kind) {
      case PolyKind::None:
        la::copy(v, zz);
        return;
      case PolyKind::Neumann: {
        Vector& w = pa;
        Vector& aw = pb;
        la::copy(v, w);
        const real_t omega = rdd_opts.poly.omega;
        for (int k = 0; k < degree; ++k) {
          r.matvec(op, w, aw);
          for (std::size_t i = 0; i < nl; ++i)
            w[i] = v[i] + w[i] - omega * aw[i];
          r.counters().flops += 3 * nl;
          r.counters().vector_updates += 1;
        }
        for (std::size_t i = 0; i < nl; ++i) zz[i] = omega * w[i];
        return;
      }
      case PolyKind::Gls: {
        const OrthoBasis& basis = gls->basis();
        const auto mu = gls->mu();
        Vector& u_prev = pa;
        Vector& u = pb;
        Vector& au = pc;
        la::fill(u_prev, 0.0);
        const real_t inv0 = 1.0 / basis.sqrt_beta(0);
        for (std::size_t i = 0; i < nl; ++i) {
          u[i] = inv0 * v[i];
          zz[i] = mu[0] * u[i];
        }
        for (int i = 0; i < degree; ++i) {
          r.matvec(op, u, au);
          const real_t ai = basis.alpha(i);
          const real_t sb_i = basis.sqrt_beta(i);
          const real_t sb_n = basis.sqrt_beta(i + 1);
          const real_t mu_next = mu[static_cast<std::size_t>(i) + 1];
          for (std::size_t k = 0; k < nl; ++k) {
            const real_t t =
                (au[k] - ai * u[k] - (i > 0 ? sb_i * u_prev[k] : 0.0)) / sb_n;
            u_prev[k] = u[k];
            u[k] = t;
            zz[k] += mu_next * t;
          }
          r.counters().flops += 7 * nl;
          r.counters().vector_updates += 1;
        }
        return;
      }
      case PolyKind::Chebyshev: {
        // Chebyshev semi-iteration through the distributed mat-vec.
        const Interval iv = rdd_opts.poly.theta.front();
        const real_t theta = 0.5 * (iv.lo + iv.hi);
        const real_t delta = 0.5 * (iv.hi - iv.lo);
        const real_t sigma1 = theta / delta;
        Vector& res = pa;
        Vector& dvec = pb;
        Vector& ad = pc;
        la::copy(v, res);
        real_t rho = 1.0 / sigma1;
        for (std::size_t i = 0; i < nl; ++i) {
          dvec[i] = res[i] / theta;
          zz[i] = dvec[i];
        }
        for (int k = 1; k <= degree; ++k) {
          r.matvec(op, dvec, ad);
          const real_t rho_next = 1.0 / (2.0 * sigma1 - rho);
          const real_t c1 = rho_next * rho;
          const real_t c2 = 2.0 * rho_next / delta;
          for (std::size_t i = 0; i < nl; ++i) {
            res[i] -= ad[i];
            dvec[i] = c1 * dvec[i] + c2 * res[i];
            zz[i] += dvec[i];
          }
          rho = rho_next;
          r.counters().flops += 6 * nl;
          r.counters().vector_updates += 1;
        }
        return;
      }
    }
  };

  // ---- FGMRES (Algorithm 8).
  Vector x(nl, 0.0), res(nl), w(nl);
  std::vector<Vector> v(static_cast<std::size_t>(m) + 1, Vector(nl));
  std::vector<Vector> z(static_cast<std::size_t>(m), Vector(nl));
  Vector h(static_cast<std::size_t>(m) + 2);
  Vector h2(static_cast<std::size_t>(m) + 2);

  bool broke_down = false;
  index_t iterations = 0, restarts = 0;
  real_t beta0 = -1.0, relres = 1.0;

  while (iterations < opts.max_iters) {
    r.matvec(op, x, res);
    for (std::size_t l = 0; l < nl; ++l) res[l] = b[l] - res[l];
    const real_t beta = std::sqrt(r.dot(res, res));
    if (beta0 < 0.0) {
      beta0 = beta;
      if (beta0 == 0.0) {
        relres = 0.0;
        if (s == 0) out.trivial_rhs = true;
        break;
      }
    }
    relres = beta / beta0;
    if (relres <= opts.tol) break;
    if (iterations > 0) {
      // Only a cycle entered after a completed one counts as a restart.
      ++restarts;
      if (s == 0) out.restarts = restarts;
    }
    for (std::size_t l = 0; l < nl; ++l) v[0][l] = res[l] / beta;

    la::HessenbergLsq lsq(m, beta);
    index_t j = 0;
    bool breakdown = false;
    for (; j < m && iterations < opts.max_iters; ++j) {
      OBS_SPAN(tr, "arnoldi", obs::Cat::Solve,
               static_cast<std::uint32_t>(iterations));
      {
        OBS_SPAN(tr, "precond", obs::Cat::Precond);
        precondition(v[static_cast<std::size_t>(j)],
                     z[static_cast<std::size_t>(j)]);
      }
      r.matvec(op, z[static_cast<std::size_t>(j)], w);

      // One global reduction per h_ij, as in the paper's Algorithm 8
      // (Table 1: ~m̃+1 global communications per iteration), optionally
      // batched; optional second CGS pass.
      const int gs_passes = opts.reorthogonalize ? 2 : 1;
      {
        OBS_SPAN(tr, "gram_schmidt", obs::Cat::Ortho);
        for (int pass = 0; pass < gs_passes; ++pass) {
          Vector& coeff = pass == 0 ? h : h2;
          if (opts.batched_reductions) {
            for (index_t i = 0; i <= j; ++i)
              coeff[static_cast<std::size_t>(i)] =
                  r.dot_partial(w, v[static_cast<std::size_t>(i)]);
            comm.allreduce_sum(std::span<real_t>(
                coeff.data(), static_cast<std::size_t>(j) + 1));
          } else {
            for (index_t i = 0; i <= j; ++i)
              coeff[static_cast<std::size_t>(i)] =
                  r.dot(w, v[static_cast<std::size_t>(i)]);
          }
          for (index_t i = 0; i <= j; ++i)
            la::axpy(-coeff[static_cast<std::size_t>(i)],
                     v[static_cast<std::size_t>(i)], w);
          r.counters().flops += 2 * nl * static_cast<std::size_t>(j + 1);
          r.counters().vector_updates += static_cast<std::uint64_t>(j) + 1;
          if (pass > 0)
            for (index_t i = 0; i <= j; ++i)
              h[static_cast<std::size_t>(i)] +=
                  coeff[static_cast<std::size_t>(i)];
        }
      }
      const real_t hnext = std::sqrt(r.dot(w, w));
      h[static_cast<std::size_t>(j) + 1] = hnext;

      relres = lsq.push_column(std::span<const real_t>(
                   h.data(), static_cast<std::size_t>(j) + 2)) /
               beta0;
      ++iterations;
      if (s == 0) {
        // Incremental single-writer report: a comm failure mid-solve
        // still leaves a truthful partial history (see edd_solver).
        out.history.push_back(relres);
        out.iterations = iterations;
        out.final_relres = relres;
        if (tr != nullptr) tr->counter("relres", obs::Cat::Solve, relres);
        if (opts.observe.progress) opts.observe.progress(iterations, relres, 0);
      }

      if (hnext <= 1e-14 * beta0) {
        breakdown = true;
        ++j;
        break;
      }
      for (std::size_t l = 0; l < nl; ++l)
        v[static_cast<std::size_t>(j) + 1][l] = w[l] / hnext;

      if (relres <= opts.tol) {
        ++j;
        break;
      }
    }

    if (j > 0) {
      const Vector y = lsq.solve();
      for (index_t i = 0; i < j; ++i)
        la::axpy(y[static_cast<std::size_t>(i)],
                 z[static_cast<std::size_t>(i)], x);
      r.counters().flops += 2 * nl * static_cast<std::size_t>(j);
      r.counters().vector_updates += static_cast<std::uint64_t>(j);
    }
    if (breakdown) {
      broke_down = true;  // terminal, but not convergence by itself
      break;
    }
    if (relres <= opts.tol) break;
  }

  // ---- Final residual and physical solution u = D x.
  r.matvec(op, x, res);
  for (std::size_t l = 0; l < nl; ++l) res[l] = b[l] - res[l];
  const real_t final_res = std::sqrt(r.dot(res, res));
  const real_t final_relres = beta0 > 0.0 ? final_res / beta0 : 0.0;

  Vector u(nl);
  for (std::size_t l = 0; l < nl; ++l) u[l] = dscale[l] * x[l];
  out.solutions[static_cast<std::size_t>(s)] = std::move(u);

  if (s == 0) {
    // The final TRUE relative residual is the only arbiter (see
    // edd_solver): breakdown/trivial exits are reported as flags.
    out.converged = final_relres <= opts.tol;
    out.breakdown = broke_down;
    out.iterations = iterations;
    out.restarts = restarts;
    out.final_relres = final_relres;
  }
}

}  // namespace

DistSolve solve_rdd(const RddPartition& part,
                          std::span<const real_t> f_global,
                          const RddOptions& rdd_opts,
                          const SolveOptions& opts) {
  PFEM_CHECK(f_global.size() == static_cast<std::size_t>(part.n_global));
  PFEM_CHECK_MSG(opts.restart >= 1 && opts.max_iters >= 1 && opts.tol > 0.0,
                 "solve_rdd: need restart >= 1, max_iters >= 1, tol > 0");
  if (rdd_opts.precond == RddOptions::Precond::Poly &&
      rdd_opts.poly.kind == PolyKind::Gls)
    validate_theta(rdd_opts.poly.theta);
  const int p = part.nparts();

  SharedOut out;
  out.solutions.resize(static_cast<std::size_t>(p));
  out.setup_counters.resize(static_cast<std::size_t>(p));

  std::shared_ptr<obs::Trace> trace;
  if (opts.observe.trace)
    trace = std::make_shared<obs::Trace>(p, opts.observe.ring_capacity);

  WallTimer timer;
  std::vector<par::PerfCounters> counters;
  std::string comm_error;
  try {
    counters = par::run_spmd(
        p,
        [&](par::Comm& comm) {
          rdd_rank_solve(part, f_global, rdd_opts, opts, comm, out);
        },
        trace.get(), opts.observe.fault_injector,
        opts.observe.comm_timeout_seconds);
  } catch (const par::CommError& e) {
    comm_error = e.what();
  }

  if (!comm_error.empty()) {
    DistSolve result;
    result.wall_seconds = timer.seconds();
    result.trace = std::move(trace);
    result.converged = false;
    result.comm_error = std::move(comm_error);
    result.breakdown = out.breakdown;
    result.trivial_rhs = out.trivial_rhs;
    result.iterations = out.iterations;
    result.restarts = out.restarts;
    result.final_relres = out.final_relres;
    result.history = std::move(out.history);
    return result;
  }

  DistSolve result;
  result.wall_seconds = timer.seconds();
  result.trace = std::move(trace);
  result.x = partition::rdd_gather(part, out.solutions);
  result.converged = out.converged;
  result.breakdown = out.breakdown;
  result.trivial_rhs = out.trivial_rhs;
  result.iterations = out.iterations;
  result.restarts = out.restarts;
  result.final_relres = out.final_relres;
  result.history = std::move(out.history);
  result.rank_counters = std::move(counters);
  result.setup_counters = std::move(out.setup_counters);
  return result;
}

}  // namespace pfem::core
