#include "core/fgmres.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "la/dense.hpp"
#include "la/hessenberg_lsq.hpp"
#include "la/vector_ops.hpp"

namespace pfem::core {

namespace {

/// Project the current residual b - A x out of span(dirs): solve the
/// small normal equations (CᵀC)γ = Cᵀ(b − Ax) with C_j = A p_j and take
/// x += Pγ.  Mildly regularized so near-parallel recycled directions
/// cannot break the factorization; a (numerically) singular system just
/// skips the projection — the solve then merely starts less warm.
void project_onto_directions(const LinearOp& a, std::span<const real_t> b,
                             std::span<real_t> x,
                             std::span<const Vector* const> dirs) {
  const std::size_t n = b.size();
  const std::size_t k = dirs.size();
  Vector r0(n);
  a.apply(x, r0);
  la::sub(b, r0, r0);
  std::vector<Vector> c(k, Vector(n));
  for (std::size_t j = 0; j < k; ++j) a.apply(*dirs[j], c[j]);
  la::DenseMatrix m(as_index(k), as_index(k));
  Vector g(k);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j)
      m(as_index(i), as_index(j)) = la::dot(c[i], c[j]);
    g[i] = la::dot(c[i], r0);
  }
  real_t trace = 0.0;
  for (std::size_t i = 0; i < k; ++i) trace += m(as_index(i), as_index(i));
  const real_t eps = 1e-12 * (trace / static_cast<real_t>(k));
  for (std::size_t i = 0; i < k; ++i) m(as_index(i), as_index(i)) += eps;
  try {
    la::lu_solve(m, g);
  } catch (const Error&) {
    return;
  }
  for (std::size_t j = 0; j < k; ++j) la::axpy(g[j], *dirs[j], x);
}

}  // namespace

SolveReport fgmres(const LinearOp& a, std::span<const real_t> b,
                   std::span<real_t> x, Preconditioner& precond,
                   const SolveOptions& opts) {
  const std::size_t n = b.size();
  PFEM_CHECK(x.size() == n);
  PFEM_CHECK(a.size() == as_index(n));
  PFEM_CHECK(opts.restart >= 1 && opts.max_iters >= 1 && opts.tol > 0.0);

  SolveReport result;
  const index_t m = opts.restart;

  // ‖b‖ = 0: x = 0 solves exactly and any relative residual is 0/0 —
  // return it in 0 iterations instead of iterating on NaNs.
  if (la::nrm2(b) == 0.0) {
    la::fill(x, 0.0);
    result.converged = true;
    result.trivial_rhs = true;
    result.final_relres = 0.0;
    return result;
  }

  // Solve-session hooks (RecycleOptions): warm-start from the previous
  // solution, project the residual onto recycled directions, and measure
  // convergence against ‖b‖ so warm and cold solves chase the same
  // absolute target (a cold start has r₀ = b, so nothing changes there).
  bool recycled = false;
  if (opts.recycle.enabled && opts.recycle.in != nullptr &&
      !opts.recycle.in->empty()) {
    const RecycleIn& rin = opts.recycle.in->front();
    if (rin.x0.size() == n) la::copy(rin.x0, x);
    std::vector<const Vector*> dirs;
    for (const Vector& p : rin.directions)
      if (p.size() == n) dirs.push_back(&p);
    const auto kmax = static_cast<std::size_t>(
        std::max<index_t>(opts.recycle.max_directions, 0));
    if (dirs.size() > kmax)  // keep the most recent directions
      dirs.erase(dirs.begin(),
                 dirs.begin() + static_cast<std::ptrdiff_t>(dirs.size() -
                                                            kmax));
    if (!dirs.empty()) project_onto_directions(a, b, x, dirs);
    recycled = !rin.empty();
  }

  Vector r(n);
  a.apply(x, r);                       // r = b - A x0
  la::sub(b, r, r);
  const real_t r0_norm = la::nrm2(r);
  const real_t beta0 = recycled ? la::nrm2(b) : r0_norm;
  if (r0_norm == 0.0) {                // x0 already exact
    result.converged = true;
    result.final_relres = 0.0;
    return result;
  }

  std::vector<Vector> v(static_cast<std::size_t>(m) + 1, Vector(n));
  std::vector<Vector> z(static_cast<std::size_t>(m), Vector(n));
  Vector w(n);
  Vector h(static_cast<std::size_t>(m) + 1);
  Vector h2(static_cast<std::size_t>(m) + 1);

  real_t relres = 1.0;
  while (result.iterations < opts.max_iters) {
    // (Re)start: r = b - A x; beta = ||r||.
    a.apply(x, r);
    la::sub(b, r, r);
    const real_t beta = la::nrm2(r);
    relres = beta / beta0;
    if (relres <= opts.tol) break;
    // Only a cycle entered after a completed one counts as a restart,
    // so a solve finishing inside its first cycle reports 0.
    if (result.iterations > 0) ++result.restarts;
    la::copy(r, v[0]);
    la::scal(1.0 / beta, v[0]);

    la::HessenbergLsq lsq(m, beta);
    index_t j = 0;
    bool breakdown = false;
    for (; j < m && result.iterations < opts.max_iters; ++j) {
      // Flexible step: z_j = C v_j, w = A z_j.
      precond.apply(v[static_cast<std::size_t>(j)],
                    z[static_cast<std::size_t>(j)]);
      a.apply(z[static_cast<std::size_t>(j)], w);

      // Classical Gram-Schmidt (optionally a second pass, CGS2).
      const int gs_passes = opts.reorthogonalize ? 2 : 1;
      for (int pass = 0; pass < gs_passes; ++pass) {
        for (index_t i = 0; i <= j; ++i)
          h2[static_cast<std::size_t>(i)] =
              la::dot(w, v[static_cast<std::size_t>(i)]);
        for (index_t i = 0; i <= j; ++i)
          la::axpy(-h2[static_cast<std::size_t>(i)],
                   v[static_cast<std::size_t>(i)], w);
        for (index_t i = 0; i <= j; ++i) {
          if (pass == 0)
            h[static_cast<std::size_t>(i)] = h2[static_cast<std::size_t>(i)];
          else
            h[static_cast<std::size_t>(i)] += h2[static_cast<std::size_t>(i)];
        }
      }
      const real_t hnext = la::nrm2(w);
      h[static_cast<std::size_t>(j) + 1] = hnext;

      relres = lsq.push_column(
                   std::span<const real_t>(h.data(),
                                           static_cast<std::size_t>(j) + 2)) /
               beta0;
      ++result.iterations;
      result.history.push_back(relres);

      if (hnext <= 1e-14 * beta0) {  // lucky breakdown: exact solution
        breakdown = true;
        ++j;
        break;
      }
      la::copy(w, v[static_cast<std::size_t>(j) + 1]);
      la::scal(1.0 / hnext, v[static_cast<std::size_t>(j) + 1]);

      if (relres <= opts.tol) {
        ++j;
        break;
      }
    }

    // Update x with the flexible basis: x += Z y.
    if (j > 0) {
      const Vector y = lsq.solve();
      for (index_t i = 0; i < j; ++i)
        la::axpy(y[static_cast<std::size_t>(i)], z[static_cast<std::size_t>(i)],
                 x);
    }
    if (breakdown) {
      result.breakdown = true;  // terminal, but not convergence by itself
      break;
    }
    if (relres <= opts.tol) break;
  }

  // Final true residual — the only arbiter of convergence.
  a.apply(x, r);
  la::sub(b, r, r);
  result.final_relres = la::nrm2(r) / beta0;
  result.converged = result.final_relres <= opts.tol;
  return result;
}

SolveReport fgmres(const sparse::CsrMatrix& a, std::span<const real_t> b,
                   std::span<real_t> x, Preconditioner& precond,
                   const SolveOptions& opts) {
  return fgmres(LinearOp::from_csr(a), b, x, precond, opts);
}

}  // namespace pfem::core
