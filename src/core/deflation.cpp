#include "core/deflation.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pfem::core {

CoarseOperator::CoarseOperator(la::DenseMatrix e) : lu_([&] {
  const index_t n = e.rows();
  PFEM_CHECK(e.cols() == n);
  for (index_t i = 0; i < n; ++i) {
    bool empty = true;
    for (index_t j = 0; j < n && empty; ++j)
      empty = e(i, j) == 0.0 && e(j, i) == 0.0;
    if (empty) e(i, i) = 1.0;
  }
  return la::LuFactorization(std::move(e));
}()) {}

DeflationRank::DeflationRank(const partition::EddSubdomain& sub, int rank,
                             int nparts, const DeflationOptions& opts,
                             std::span<const real_t> dof_weights)
    : sub_(&sub) {
  const auto q = static_cast<index_t>(opts.vectors_per_subdomain);
  const auto nc = static_cast<index_t>(opts.components);
  PFEM_CHECK_MSG(q >= 1, "deflation: vectors_per_subdomain must be >= 1");
  PFEM_CHECK_MSG(nc >= 1, "deflation: components must be >= 1");
  PFEM_CHECK(rank >= 0 && rank < nparts);
  const auto dim = static_cast<index_t>(opts.coord_dim);
  const bool have_coords = dim > 0 && !opts.dof_coords.empty();
  nbasis_ = static_cast<int>(std::clamp(
      q / nc, index_t{1}, have_coords ? 1 + dim : index_t{1}));
  comps_ = nc;
  ncoarse_ = static_cast<index_t>(nparts) * nbasis_ * nc;

  const std::size_t nl = sub.local_to_global.size();
  PFEM_CHECK(dof_weights.size() == nl);

  // Owner of each local dof: the lowest rank sharing it.  Every sharer
  // computes the same minimum from its own neighbor lists, so the patch
  // assignment is globally consistent without communication.
  std::vector<int> owner(nl, rank);
  for (const auto& nb : sub.neighbors)
    if (nb.rank < rank)
      for (const index_t l : nb.shared_local_dofs)
        owner[static_cast<std::size_t>(l)] =
            std::min(owner[static_cast<std::size_t>(l)], nb.rank);

  col0_.resize(nl);
  val_.resize(nl * static_cast<std::size_t>(nbasis_));
  const auto nb_stride = static_cast<index_t>(nbasis_) * nc;
  for (std::size_t l = 0; l < nl; ++l) {
    const index_t g = sub.local_to_global[l];
    col0_[l] = static_cast<index_t>(owner[l]) * nb_stride + g % nc;
    val_[l * static_cast<std::size_t>(nbasis_)] = dof_weights[l];
    for (int b = 1; b < nbasis_; ++b) {
      const auto ci = static_cast<std::size_t>(g) *
                          static_cast<std::size_t>(dim) +
                      static_cast<std::size_t>(b - 1);
      PFEM_CHECK_MSG(ci < opts.dof_coords.size(),
                     "deflation: dof_coords too short for the partition");
      val_[l * static_cast<std::size_t>(nbasis_) +
           static_cast<std::size_t>(b)] = dof_weights[l] * opts.dof_coords[ci];
    }
  }
}

void DeflationRank::accumulate_e(const sparse::CsrMatrix& k,
                                 std::span<const real_t> d,
                                 la::DenseMatrix& e) const {
  PFEM_CHECK(e.rows() == ncoarse_ && e.cols() == ncoarse_);
  const auto rp = k.row_ptr();
  const auto ci = k.col_idx();
  const auto vals = k.values();
  const auto nb = static_cast<std::size_t>(nbasis_);
  for (index_t i = 0; i < k.rows(); ++i) {
    const auto si = static_cast<std::size_t>(i);
    const index_t ci0 = col0_[si];
    for (index_t nz = rp[si]; nz < rp[si + 1]; ++nz) {
      const auto j = static_cast<std::size_t>(ci[static_cast<std::size_t>(nz)]);
      const real_t a_ij =
          d[si] * vals[static_cast<std::size_t>(nz)] * d[j];
      const index_t cj0 = col0_[j];
      for (std::size_t b1 = 0; b1 < nb; ++b1)
        for (std::size_t b2 = 0; b2 < nb; ++b2)
          e(ci0 + static_cast<index_t>(b1) * comps_,
            cj0 + static_cast<index_t>(b2) * comps_) +=
              val_[si * nb + b1] * a_ij * val_[j * nb + b2];
    }
  }
}

void DeflationRank::accumulate_e_scaled(const sparse::CsrMatrix& a_scaled,
                                        la::DenseMatrix& e) const {
  PFEM_CHECK(e.rows() == ncoarse_ && e.cols() == ncoarse_);
  const auto rp = a_scaled.row_ptr();
  const auto ci = a_scaled.col_idx();
  const auto vals = a_scaled.values();
  const auto nb = static_cast<std::size_t>(nbasis_);
  for (index_t i = 0; i < a_scaled.rows(); ++i) {
    const auto si = static_cast<std::size_t>(i);
    const index_t ci0 = col0_[si];
    for (index_t nz = rp[si]; nz < rp[si + 1]; ++nz) {
      const auto j = static_cast<std::size_t>(ci[static_cast<std::size_t>(nz)]);
      const real_t a_ij = vals[static_cast<std::size_t>(nz)];
      const index_t cj0 = col0_[j];
      for (std::size_t b1 = 0; b1 < nb; ++b1)
        for (std::size_t b2 = 0; b2 < nb; ++b2)
          e(ci0 + static_cast<index_t>(b1) * comps_,
            cj0 + static_cast<index_t>(b2) * comps_) +=
              val_[si * nb + b1] * a_ij * val_[j * nb + b2];
    }
  }
}

void DeflationRank::restrict_local(std::span<const real_t> v_loc,
                                   std::span<real_t> c) const {
  PFEM_CHECK(v_loc.size() == col0_.size());
  PFEM_CHECK(c.size() == static_cast<std::size_t>(ncoarse_));
  const auto nb = static_cast<std::size_t>(nbasis_);
  for (std::size_t l = 0; l < col0_.size(); ++l)
    for (std::size_t b = 0; b < nb; ++b)
      c[static_cast<std::size_t>(col0_[l] +
                                 static_cast<index_t>(b) * comps_)] +=
          val_[l * nb + b] * v_loc[l];
}

void DeflationRank::restrict_global(std::span<const real_t> v_glob,
                                    std::span<real_t> c) const {
  PFEM_CHECK(v_glob.size() == col0_.size());
  PFEM_CHECK(c.size() == static_cast<std::size_t>(ncoarse_));
  const auto nb = static_cast<std::size_t>(nbasis_);
  for (std::size_t l = 0; l < col0_.size(); ++l) {
    const real_t v = v_glob[l] / static_cast<real_t>(sub_->multiplicity[l]);
    for (std::size_t b = 0; b < nb; ++b)
      c[static_cast<std::size_t>(col0_[l] +
                                 static_cast<index_t>(b) * comps_)] +=
          val_[l * nb + b] * v;
  }
}

void DeflationRank::prolong_global(std::span<const real_t> y,
                                   std::span<real_t> z) const {
  PFEM_CHECK(y.size() == static_cast<std::size_t>(ncoarse_));
  PFEM_CHECK(z.size() == col0_.size());
  const auto nb = static_cast<std::size_t>(nbasis_);
  for (std::size_t l = 0; l < col0_.size(); ++l) {
    real_t acc = 0.0;
    for (std::size_t b = 0; b < nb; ++b)
      acc += val_[l * nb + b] *
             y[static_cast<std::size_t>(col0_[l] +
                                        static_cast<index_t>(b) * comps_)];
    z[l] = acc;
  }
}

void DeflationRank::prolong_local(std::span<const real_t> y,
                                  std::span<real_t> z) const {
  PFEM_CHECK(y.size() == static_cast<std::size_t>(ncoarse_));
  PFEM_CHECK(z.size() == col0_.size());
  const auto nb = static_cast<std::size_t>(nbasis_);
  for (std::size_t l = 0; l < col0_.size(); ++l) {
    real_t acc = 0.0;
    for (std::size_t b = 0; b < nb; ++b)
      acc += val_[l * nb + b] *
             y[static_cast<std::size_t>(col0_[l] +
                                        static_cast<index_t>(b) * comps_)];
    z[l] = acc / static_cast<real_t>(sub_->multiplicity[l]);
  }
}

}  // namespace pfem::core
