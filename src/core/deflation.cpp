#include "core/deflation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.hpp"

namespace pfem::core {

namespace {

[[noreturn]] void bad_deflation(const std::ostringstream& os) {
  throw BadOperatorError("deflation options do not match the operator: " +
                         os.str());
}

}  // namespace

void validate_deflation(const DeflationOptions& opts, index_t n_global) {
  if (!opts.enabled) return;
  std::ostringstream os;
  if (opts.vectors_per_subdomain < 1 || opts.components < 1) {
    os << "vectors_per_subdomain and components must be >= 1 (got "
       << opts.vectors_per_subdomain << ", " << opts.components << ")";
    bad_deflation(os);
  }
  if (n_global % static_cast<index_t>(opts.components) != 0) {
    os << "components = " << opts.components << " does not divide the "
       << n_global << " free dofs — wrong problem family for this "
       << "coarse space (scalar diffusion is 1, plane elasticity 2, "
       << "3-D elasticity 3)";
    bad_deflation(os);
  }
  if (opts.coord_dim < 0 || opts.coord_dim > 3) {
    os << "coord_dim must be in [0, 3] (got " << opts.coord_dim << ")";
    bad_deflation(os);
  }
  const auto want_coords = static_cast<std::size_t>(n_global) *
                           static_cast<std::size_t>(opts.coord_dim);
  if (opts.coord_dim > 0 && opts.dof_coords.size() != want_coords) {
    os << "dof_coords holds " << opts.dof_coords.size() << " entries, but "
       << n_global << " free dofs x coord_dim " << opts.coord_dim
       << " needs " << want_coords
       << " — the coordinate table was built for a different mesh or "
       << "dimension";
    bad_deflation(os);
  }
  if (opts.coord_dim == 0 && !opts.dof_coords.empty()) {
    os << "dof_coords supplied without coord_dim — the per-dof layout is "
       << "ambiguous";
    bad_deflation(os);
  }
  if (opts.jump_aware) {
    if (opts.dof_coeff.size() != static_cast<std::size_t>(n_global)) {
      os << "jump_aware needs one coefficient per free dof: dof_coeff "
         << "holds " << opts.dof_coeff.size() << " entries for " << n_global
         << " dofs";
      bad_deflation(os);
    }
    for (std::size_t g = 0; g < opts.dof_coeff.size(); ++g)
      if (!(opts.dof_coeff[g] > 0.0) || !std::isfinite(opts.dof_coeff[g])) {
        os << "dof_coeff[" << g << "] = " << opts.dof_coeff[g]
           << " — coefficient magnitudes must be positive and finite";
        bad_deflation(os);
      }
  }
}

CoarseOperator::CoarseOperator(la::DenseMatrix e) : lu_([&] {
  const index_t n = e.rows();
  PFEM_CHECK(e.cols() == n);
  for (index_t i = 0; i < n; ++i) {
    bool empty = true;
    for (index_t j = 0; j < n && empty; ++j)
      empty = e(i, j) == 0.0 && e(j, i) == 0.0;
    if (empty) e(i, i) = 1.0;
  }
  return la::LuFactorization(std::move(e));
}()) {}

DeflationRank::DeflationRank(const partition::EddSubdomain& sub, int rank,
                             int nparts, const DeflationOptions& opts,
                             std::span<const real_t> dof_weights)
    : sub_(&sub) {
  const auto q = static_cast<index_t>(opts.vectors_per_subdomain);
  const auto nc = static_cast<index_t>(opts.components);
  PFEM_CHECK_MSG(q >= 1, "deflation: vectors_per_subdomain must be >= 1");
  PFEM_CHECK_MSG(nc >= 1, "deflation: components must be >= 1");
  PFEM_CHECK(rank >= 0 && rank < nparts);
  const auto dim = static_cast<index_t>(opts.coord_dim);
  const bool have_coords = dim > 0 && !opts.dof_coords.empty();
  nbasis_ = static_cast<int>(std::clamp(
      q / nc, index_t{1}, have_coords ? 1 + dim : index_t{1}));
  const bool jump = opts.jump_aware && !opts.dof_coeff.empty();
  nclasses_ = jump ? 2 : 1;
  comps_ = nc;
  ncoarse_ = static_cast<index_t>(nparts) * nclasses_ * nbasis_ * nc;

  // Jump-aware class pivot: the geometric mean of the coefficient
  // range.  Computed from the globally replicated table, so every rank
  // derives the identical pivot — the class of a dof stays a pure
  // function of its global id (the exchange-free consistency invariant).
  real_t pivot = 0.0;
  if (jump) {
    real_t lo = std::numeric_limits<real_t>::infinity();
    real_t hi = 0.0;
    for (const real_t c : opts.dof_coeff) {
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    pivot = std::sqrt(lo * hi);
  }

  const std::size_t nl = sub.local_to_global.size();
  PFEM_CHECK(dof_weights.size() == nl);

  // Owner of each local dof: the lowest rank sharing it.  Every sharer
  // computes the same minimum from its own neighbor lists, so the patch
  // assignment is globally consistent without communication.
  std::vector<int> owner(nl, rank);
  for (const auto& nb : sub.neighbors)
    if (nb.rank < rank)
      for (const index_t l : nb.shared_local_dofs)
        owner[static_cast<std::size_t>(l)] =
            std::min(owner[static_cast<std::size_t>(l)], nb.rank);

  col0_.resize(nl);
  val_.resize(nl * static_cast<std::size_t>(nbasis_));
  const auto nb_stride = static_cast<index_t>(nbasis_) * nc;
  for (std::size_t l = 0; l < nl; ++l) {
    const index_t g = sub.local_to_global[l];
    index_t patch = static_cast<index_t>(owner[l]) *
                    static_cast<index_t>(nclasses_);
    if (jump) {
      PFEM_CHECK_MSG(static_cast<std::size_t>(g) < opts.dof_coeff.size(),
                     "deflation: dof_coeff too short for the partition");
      if (opts.dof_coeff[static_cast<std::size_t>(g)] >= pivot) ++patch;
    }
    col0_[l] = patch * nb_stride + g % nc;
    val_[l * static_cast<std::size_t>(nbasis_)] = dof_weights[l];
    for (int b = 1; b < nbasis_; ++b) {
      const auto ci = static_cast<std::size_t>(g) *
                          static_cast<std::size_t>(dim) +
                      static_cast<std::size_t>(b - 1);
      PFEM_CHECK_MSG(ci < opts.dof_coords.size(),
                     "deflation: dof_coords too short for the partition");
      val_[l * static_cast<std::size_t>(nbasis_) +
           static_cast<std::size_t>(b)] = dof_weights[l] * opts.dof_coords[ci];
    }
  }
}

void DeflationRank::accumulate_e(const sparse::CsrMatrix& k,
                                 std::span<const real_t> d,
                                 la::DenseMatrix& e) const {
  PFEM_CHECK(e.rows() == ncoarse_ && e.cols() == ncoarse_);
  const auto rp = k.row_ptr();
  const auto ci = k.col_idx();
  const auto vals = k.values();
  const auto nb = static_cast<std::size_t>(nbasis_);
  for (index_t i = 0; i < k.rows(); ++i) {
    const auto si = static_cast<std::size_t>(i);
    const index_t ci0 = col0_[si];
    for (index_t nz = rp[si]; nz < rp[si + 1]; ++nz) {
      const auto j = static_cast<std::size_t>(ci[static_cast<std::size_t>(nz)]);
      const real_t a_ij =
          d[si] * vals[static_cast<std::size_t>(nz)] * d[j];
      const index_t cj0 = col0_[j];
      for (std::size_t b1 = 0; b1 < nb; ++b1)
        for (std::size_t b2 = 0; b2 < nb; ++b2)
          e(ci0 + static_cast<index_t>(b1) * comps_,
            cj0 + static_cast<index_t>(b2) * comps_) +=
              val_[si * nb + b1] * a_ij * val_[j * nb + b2];
    }
  }
}

void DeflationRank::accumulate_e_scaled(const sparse::CsrMatrix& a_scaled,
                                        la::DenseMatrix& e) const {
  PFEM_CHECK(e.rows() == ncoarse_ && e.cols() == ncoarse_);
  const auto rp = a_scaled.row_ptr();
  const auto ci = a_scaled.col_idx();
  const auto vals = a_scaled.values();
  const auto nb = static_cast<std::size_t>(nbasis_);
  for (index_t i = 0; i < a_scaled.rows(); ++i) {
    const auto si = static_cast<std::size_t>(i);
    const index_t ci0 = col0_[si];
    for (index_t nz = rp[si]; nz < rp[si + 1]; ++nz) {
      const auto j = static_cast<std::size_t>(ci[static_cast<std::size_t>(nz)]);
      const real_t a_ij = vals[static_cast<std::size_t>(nz)];
      const index_t cj0 = col0_[j];
      for (std::size_t b1 = 0; b1 < nb; ++b1)
        for (std::size_t b2 = 0; b2 < nb; ++b2)
          e(ci0 + static_cast<index_t>(b1) * comps_,
            cj0 + static_cast<index_t>(b2) * comps_) +=
              val_[si * nb + b1] * a_ij * val_[j * nb + b2];
    }
  }
}

void DeflationRank::restrict_local(std::span<const real_t> v_loc,
                                   std::span<real_t> c) const {
  PFEM_CHECK(v_loc.size() == col0_.size());
  PFEM_CHECK(c.size() == static_cast<std::size_t>(ncoarse_));
  const auto nb = static_cast<std::size_t>(nbasis_);
  for (std::size_t l = 0; l < col0_.size(); ++l)
    for (std::size_t b = 0; b < nb; ++b)
      c[static_cast<std::size_t>(col0_[l] +
                                 static_cast<index_t>(b) * comps_)] +=
          val_[l * nb + b] * v_loc[l];
}

void DeflationRank::restrict_global(std::span<const real_t> v_glob,
                                    std::span<real_t> c) const {
  PFEM_CHECK(v_glob.size() == col0_.size());
  PFEM_CHECK(c.size() == static_cast<std::size_t>(ncoarse_));
  const auto nb = static_cast<std::size_t>(nbasis_);
  for (std::size_t l = 0; l < col0_.size(); ++l) {
    const real_t v = v_glob[l] / static_cast<real_t>(sub_->multiplicity[l]);
    for (std::size_t b = 0; b < nb; ++b)
      c[static_cast<std::size_t>(col0_[l] +
                                 static_cast<index_t>(b) * comps_)] +=
          val_[l * nb + b] * v;
  }
}

void DeflationRank::prolong_global(std::span<const real_t> y,
                                   std::span<real_t> z) const {
  PFEM_CHECK(y.size() == static_cast<std::size_t>(ncoarse_));
  PFEM_CHECK(z.size() == col0_.size());
  const auto nb = static_cast<std::size_t>(nbasis_);
  for (std::size_t l = 0; l < col0_.size(); ++l) {
    real_t acc = 0.0;
    for (std::size_t b = 0; b < nb; ++b)
      acc += val_[l * nb + b] *
             y[static_cast<std::size_t>(col0_[l] +
                                        static_cast<index_t>(b) * comps_)];
    z[l] = acc;
  }
}

void DeflationRank::prolong_local(std::span<const real_t> y,
                                  std::span<real_t> z) const {
  PFEM_CHECK(y.size() == static_cast<std::size_t>(ncoarse_));
  PFEM_CHECK(z.size() == col0_.size());
  const auto nb = static_cast<std::size_t>(nbasis_);
  for (std::size_t l = 0; l < col0_.size(); ++l) {
    real_t acc = 0.0;
    for (std::size_t b = 0; b < nb; ++b)
      acc += val_[l * nb + b] *
             y[static_cast<std::size_t>(col0_[l] +
                                        static_cast<index_t>(b) * comps_)];
    z[l] = acc / static_cast<real_t>(sub_->multiplicity[l]);
  }
}

}  // namespace pfem::core
