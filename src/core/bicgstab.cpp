#include "core/bicgstab.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/edd_kernels.hpp"
#include "la/vector_ops.hpp"

namespace pfem::core {

SolveReport bicgstab(const LinearOp& a, std::span<const real_t> b,
                     std::span<real_t> x, Preconditioner& precond,
                     const SolveOptions& opts) {
  const std::size_t n = b.size();
  PFEM_CHECK(x.size() == n);
  PFEM_CHECK(a.size() == as_index(n));

  SolveReport result;
  // ‖b‖ = 0: x = 0 solves exactly and any relative residual is 0/0 —
  // return it in 0 iterations instead of iterating on NaNs.
  if (la::nrm2(b) == 0.0) {
    la::fill(x, 0.0);
    result.converged = true;
    return result;
  }

  Vector r(n), rhat(n), p(n, 0.0), v(n, 0.0), phat(n), shat(n), s(n), t(n);
  a.apply(x, r);
  la::sub(b, r, r);
  const real_t beta0 = la::nrm2(r);
  if (beta0 == 0.0) {
    result.converged = true;
    return result;
  }
  la::copy(r, rhat);
  real_t rho = 1.0, alpha = 1.0, omega = 1.0;

  while (result.iterations < opts.max_iters) {
    const real_t rho_new = la::dot(rhat, r);
    PFEM_CHECK_MSG(std::abs(rho_new) > 1e-300 * beta0 * beta0,
                   "BiCGSTAB breakdown: <rhat, r> ~ 0");
    const real_t beta = (rho_new / rho) * (alpha / omega);
    rho = rho_new;
    for (std::size_t i = 0; i < n; ++i)
      p[i] = r[i] + beta * (p[i] - omega * v[i]);

    precond.apply(p, phat);
    a.apply(phat, v);
    alpha = rho / la::dot(rhat, v);
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];
    ++result.iterations;

    if (la::nrm2(s) / beta0 <= opts.tol) {
      la::axpy(alpha, phat, x);
      result.history.push_back(la::nrm2(s) / beta0);
      result.converged = true;
      break;
    }

    precond.apply(s, shat);
    a.apply(shat, t);
    const real_t tt = la::dot(t, t);
    PFEM_CHECK_MSG(tt > 0.0, "BiCGSTAB breakdown: ||t|| = 0");
    omega = la::dot(t, s) / tt;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * phat[i] + omega * shat[i];
      r[i] = s[i] - omega * t[i];
    }
    const real_t relres = la::nrm2(r) / beta0;
    result.history.push_back(relres);
    if (relres <= opts.tol) {
      result.converged = true;
      break;
    }
    PFEM_CHECK_MSG(std::abs(omega) > 1e-300, "BiCGSTAB breakdown: omega ~ 0");
  }

  a.apply(x, r);
  la::sub(b, r, r);
  result.final_relres = la::nrm2(r) / beta0;
  if (result.final_relres <= opts.tol) result.converged = true;
  return result;
}

SolveReport bicgstab(const sparse::CsrMatrix& a, std::span<const real_t> b,
                     std::span<real_t> x, Preconditioner& precond,
                     const SolveOptions& opts) {
  return bicgstab(LinearOp::from_csr(a), b, x, precond, opts);
}

namespace {

using detail::DistPoly;
using detail::EddRank;
using detail::spmv_exchange;
using detail::sqrt_nonneg;
using partition::EddPartition;
using partition::EddSubdomain;
using sparse::CsrMatrix;

struct SharedOut {
  std::vector<Vector> solutions;
  bool converged = false;
  index_t iterations = 0;
  real_t final_relres = 0.0;
  std::vector<real_t> history;
  std::vector<par::PerfCounters> setup_counters;
};

void edd_bicgstab_rank(const EddPartition& part, const CsrMatrix& k_in,
                       std::span<const real_t> f_global, const PolySpec& spec,
                       const SolveOptions& opts, par::Comm& comm,
                       SharedOut& out) {
  const int rank = comm.rank();
  const EddSubdomain& sub = part.subs[static_cast<std::size_t>(rank)];
  EddRank r(sub, comm);
  const std::size_t nl = r.nl();

  // Setup: identical to the other EDD solvers (Algorithms 3/4).
  Vector f_loc(nl);
  for (std::size_t l = 0; l < nl; ++l)
    f_loc[l] =
        f_global[static_cast<std::size_t>(sub.local_to_global[l])] /
        static_cast<real_t>(sub.multiplicity[l]);
  Vector d = k_in.row_norms1();
  r.counters().flops += static_cast<std::uint64_t>(k_in.nnz());
  r.exchange(d);
  for (std::size_t l = 0; l < nl; ++l) {
    PFEM_CHECK_MSG(d[l] > 0.0, "norm-1 scaling: zero row");
    d[l] = 1.0 / std::sqrt(d[l]);
  }
  const RankKernel a(k_in, Vector(d), sub.interface_local_dofs, opts.kernels);
  r.counters().flops += 2ull * static_cast<std::uint64_t>(k_in.nnz());
  Vector b_glob(nl);
  for (std::size_t l = 0; l < nl; ++l) b_glob[l] = d[l] * f_loc[l];
  r.exchange(b_glob);  // rhs in global format once and for all

  DistPoly poly(spec, nl, &r.counters());
  out.setup_counters[static_cast<std::size_t>(rank)] = comm.counters();

  // Distributed mat-vec: global -> global (one exchange, overlapped with
  // the interior block when the kernel is split).
  auto matvec = [&](std::span<const real_t> in, std::span<real_t> res) {
    spmv_exchange(r, a, in, res);
  };

  // All vectors in global distributed format.
  Vector x(nl, 0.0), rr(nl), rhat(nl), p(nl, 0.0), v(nl, 0.0);
  Vector phat(nl), shat(nl), s(nl), t(nl);
  matvec(x, rr);
  for (std::size_t l = 0; l < nl; ++l) rr[l] = b_glob[l] - rr[l];
  const real_t beta0 = sqrt_nonneg(r.norm2_sq_global(rr));

  bool converged = false;
  index_t iterations = 0;
  real_t relres = beta0 == 0.0 ? 0.0 : 1.0;
  std::vector<real_t> history;

  if (beta0 == 0.0) {
    converged = true;
  } else {
    la::copy(rr, rhat);
    real_t rho = 1.0, alpha = 1.0, omega = 1.0;
    while (iterations < opts.max_iters) {
      const real_t rho_new = r.dot_gg(rhat, rr);
      PFEM_CHECK_MSG(std::abs(rho_new) > 1e-300 * beta0 * beta0,
                     "EDD-BiCGSTAB breakdown: <rhat, r> ~ 0");
      const real_t beta = (rho_new / rho) * (alpha / omega);
      rho = rho_new;
      for (std::size_t l = 0; l < nl; ++l)
        p[l] = rr[l] + beta * (p[l] - omega * v[l]);
      r.counters().flops += 4 * nl;
      r.counters().vector_updates += 1;

      poly.apply_global(r, a, p, phat);
      matvec(phat, v);
      alpha = rho / r.dot_gg(rhat, v);
      for (std::size_t l = 0; l < nl; ++l) s[l] = rr[l] - alpha * v[l];
      r.counters().flops += 2 * nl;
      ++iterations;

      relres = sqrt_nonneg(r.norm2_sq_global(s)) / beta0;
      if (relres <= opts.tol) {
        la::axpy(alpha, phat, x);
        history.push_back(relres);
        converged = true;
        break;
      }

      poly.apply_global(r, a, s, shat);
      matvec(shat, t);
      const real_t tt = r.norm2_sq_global(t);
      PFEM_CHECK_MSG(tt > 0.0, "EDD-BiCGSTAB breakdown: ||t|| = 0");
      omega = r.dot_gg(t, s) / tt;
      for (std::size_t l = 0; l < nl; ++l) {
        x[l] += alpha * phat[l] + omega * shat[l];
        rr[l] = s[l] - omega * t[l];
      }
      r.counters().flops += 6 * nl;
      r.counters().vector_updates += 2;
      relres = sqrt_nonneg(r.norm2_sq_global(rr)) / beta0;
      history.push_back(relres);
      if (relres <= opts.tol) {
        converged = true;
        break;
      }
    }
  }

  // Final true residual, physical solution.
  matvec(x, rr);
  for (std::size_t l = 0; l < nl; ++l) rr[l] = b_glob[l] - rr[l];
  const real_t final_relres =
      beta0 > 0.0 ? sqrt_nonneg(r.norm2_sq_global(rr)) / beta0 : 0.0;
  Vector u(nl);
  for (std::size_t l = 0; l < nl; ++l) u[l] = d[l] * x[l];
  out.solutions[static_cast<std::size_t>(rank)] = std::move(u);

  if (rank == 0) {
    out.converged = converged || final_relres <= opts.tol;
    out.iterations = iterations;
    out.final_relres = final_relres;
    out.history = std::move(history);
  }
}

}  // namespace

DistSolve solve_edd_bicgstab(
    const EddPartition& part, std::span<const real_t> f_global,
    const PolySpec& spec, const SolveOptions& opts,
    const std::vector<sparse::CsrMatrix>* local_matrices) {
  PFEM_CHECK(f_global.size() == static_cast<std::size_t>(part.n_global));
  PFEM_CHECK_MSG(opts.max_iters >= 1 && opts.tol > 0.0,
                 "solve_edd_bicgstab: need max_iters >= 1 and tol > 0");
  validate_poly_spec(spec);
  if (local_matrices != nullptr)
    PFEM_CHECK(local_matrices->size() == part.subs.size());
  const int p = part.nparts();

  SharedOut out;
  out.solutions.resize(static_cast<std::size_t>(p));
  out.setup_counters.resize(static_cast<std::size_t>(p));

  WallTimer timer;
  std::vector<par::PerfCounters> counters =
      par::run_spmd(p, [&](par::Comm& comm) {
        const auto s = static_cast<std::size_t>(comm.rank());
        const sparse::CsrMatrix& k =
            local_matrices ? (*local_matrices)[s] : part.subs[s].k_loc;
        edd_bicgstab_rank(part, k, f_global, spec, opts, comm, out);
      });

  DistSolve result;
  result.wall_seconds = timer.seconds();
  result.x = partition::edd_gather_global(part, out.solutions);
  result.converged = out.converged;
  result.iterations = out.iterations;
  result.final_relres = out.final_relres;
  result.history = std::move(out.history);
  result.rank_counters = std::move(counters);
  result.setup_counters = std::move(out.setup_counters);
  return result;
}

}  // namespace pfem::core
