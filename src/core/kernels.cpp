#include "core/kernels.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace pfem::core {

namespace detail {

void CsrRowsBlock::spmv(std::span<const real_t> x,
                        std::span<real_t> y) const {
  const auto nr = static_cast<index_t>(rows.size());
  for (index_t i = 0; i < nr; ++i) {
    real_t s = 0.0;
    for (index_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      s += val[k] * x[col[k]];
    }
    y[rows[i]] = s;
  }
}

namespace {

CsrRowsBlock make_block(const sparse::CsrMatrix& a,
                        std::span<const index_t> keep) {
  CsrRowsBlock b;
  b.rows.assign(keep.begin(), keep.end());
  b.row_ptr.assign(keep.size() + 1, index_t{0});
  const auto rp = a.row_ptr();
  for (std::size_t i = 0; i < keep.size(); ++i) {
    b.row_ptr[i + 1] = b.row_ptr[i] + (rp[keep[i] + 1] - rp[keep[i]]);
  }
  b.col.resize(static_cast<std::size_t>(b.row_ptr.back()));
  b.val.resize(static_cast<std::size_t>(b.row_ptr.back()));
  const auto ci = a.col_idx();
  const auto av = a.values();
  for (std::size_t i = 0; i < keep.size(); ++i) {
    const index_t n = rp[keep[i] + 1] - rp[keep[i]];
    for (index_t j = 0; j < n; ++j) {
      b.col[b.row_ptr[i] + j] = ci[rp[keep[i]] + j];
      b.val[b.row_ptr[i] + j] = av[rp[keep[i]] + j];
    }
  }
  return b;
}

// interior = not an interface dof and coupled to no interface column;
// everything else is "coupled" and must wait for / feed the exchange.
void classify_rows(const sparse::CsrMatrix& a,
                   std::span<const index_t> interface_dofs,
                   IndexVector& interior, IndexVector& coupled) {
  std::vector<char> iface(static_cast<std::size_t>(a.rows()), 0);
  for (const index_t i : interface_dofs) iface[i] = 1;
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  for (index_t i = 0; i < a.rows(); ++i) {
    bool is_interior = iface[i] == 0;
    for (index_t k = rp[i]; is_interior && k < rp[i + 1]; ++k) {
      if (iface[ci[k]] != 0) is_interior = false;
    }
    (is_interior ? interior : coupled).push_back(i);
  }
}

}  // namespace
}  // namespace detail

RankKernel::RankKernel(const sparse::CsrMatrix& k, Vector d,
                       std::span<const index_t> interface_dofs,
                       const KernelOptions& opts,
                       const sparse::EbeStore* elems)
    : opts_(opts), n_(k.rows()), nnz_(static_cast<std::uint64_t>(k.nnz())) {
  PFEM_CHECK(k.rows() == k.cols());
  PFEM_CHECK(d.size() == static_cast<std::size_t>(k.rows()));
  for (const index_t i : interface_dofs) PFEM_CHECK(i >= 0 && i < k.rows());

  split_ = opts.overlap && !interface_dofs.empty();

  if (opts.format == KernelOptions::Format::Ebe) {
    PFEM_CHECK_MSG(elems != nullptr,
                   "Format::Ebe needs the subdomain's element store "
                   "(build_edd_partition provides it; hand-built "
                   "subdomains and matrix overrides do not)");
    PFEM_CHECK_MSG(elems->rows() == k.rows(),
                   "Format::Ebe: element store covers " << elems->rows()
                   << " dofs but the subdomain has " << k.rows());
    // Split ELEMENTS, not rows: interior = touches no interface dof, so
    // it neither reads nor writes an interface entry mid-exchange.
    // Stored [coupled | interior] so apply() == the Enhanced split
    // order bit for bit.
    std::vector<char> iface(static_cast<std::size_t>(k.rows()), 0);
    for (const index_t i : interface_dofs) iface[i] = 1;
    IndexVector order;
    order.reserve(static_cast<std::size_t>(elems->num_elems()));
    index_t ncoupled = 0;
    for (index_t e = 0; e < elems->num_elems(); ++e)
      if (elems->touches(e, iface)) {
        order.push_back(e);
        ++ncoupled;
      }
    for (index_t e = 0; e < elems->num_elems(); ++e)
      if (!elems->touches(e, iface)) order.push_back(e);
    ebe_ = elems->permuted(order);
    ebe_.scale_symmetric(d);  // fold D K D, CSR's rounding sequence
    ebe_split_ = ncoupled;
    return;
  }

  IndexVector interior;
  IndexVector coupled;
  if (split_) detail::classify_rows(k, interface_dofs, interior, coupled);

  if (opts.format == KernelOptions::Format::Sell) {
    // Fold D K D once at build: SpMV is gather-bound, and the apply-time
    // spmv_scaled fusion gathers d[col] next to every x[col], doubling
    // gather traffic on the hot path.  scale_symmetric uses the exact
    // rounding sequence spmv_scaled replays, so both routes stay
    // bit-identical; the build-time route just pays it once.
    sparse::CsrMatrix scaled = k;
    scaled.scale_symmetric(d);
    if (split_) {
      sell_coupled_ =
          sparse::SellMatrix::from_csr_rows(scaled, coupled, opts.chunk,
                                            opts.sigma);
      sell_interior_ =
          sparse::SellMatrix::from_csr_rows(scaled, interior, opts.chunk,
                                            opts.sigma);
    } else {
      sell_full_ =
          sparse::SellMatrix::from_csr(scaled, opts.chunk, opts.sigma);
    }
  } else {
    csr_own_ = k;
    csr_own_.scale_symmetric(d);
    if (split_) {
      csr_coupled_ = detail::make_block(csr_own_, coupled);
      csr_interior_ = detail::make_block(csr_own_, interior);
      csr_own_ = sparse::CsrMatrix();  // blocks cover every row
    }
  }
}

RankKernel RankKernel::from_scaled(const sparse::CsrMatrix* a,
                                   std::span<const index_t> interface_dofs,
                                   const KernelOptions& opts) {
  PFEM_CHECK(a != nullptr && a->rows() == a->cols());
  PFEM_CHECK_MSG(opts.format != KernelOptions::Format::Ebe,
                 "Format::Ebe cannot wrap an already-scaled assembled "
                 "matrix: the matrix-free kernel needs element data, and "
                 "re-deriving it from assembled rows is not possible");
  for (const index_t i : interface_dofs) {
    PFEM_CHECK(i >= 0 && i < a->rows());
  }
  RankKernel kn;
  kn.opts_ = opts;
  kn.n_ = a->rows();
  kn.nnz_ = static_cast<std::uint64_t>(a->nnz());
  kn.split_ = opts.overlap && !interface_dofs.empty();
  IndexVector interior;
  IndexVector coupled;
  if (kn.split_) detail::classify_rows(*a, interface_dofs, interior, coupled);

  if (opts.format == KernelOptions::Format::Sell) {
    if (kn.split_) {
      kn.sell_coupled_ =
          sparse::SellMatrix::from_csr_rows(*a, coupled, opts.chunk,
                                            opts.sigma);
      kn.sell_interior_ =
          sparse::SellMatrix::from_csr_rows(*a, interior, opts.chunk,
                                            opts.sigma);
    } else {
      kn.sell_full_ = sparse::SellMatrix::from_csr(*a, opts.chunk,
                                                   opts.sigma);
    }
  } else {
    if (kn.split_) {
      kn.csr_coupled_ = detail::make_block(*a, coupled);
      kn.csr_interior_ = detail::make_block(*a, interior);
    } else {
      kn.csr_ = a;
    }
  }
  return kn;
}

void RankKernel::apply(std::span<const real_t> x, std::span<real_t> y) const {
  PFEM_DEBUG_CHECK(x.size() == static_cast<std::size_t>(n_));
  PFEM_DEBUG_CHECK(y.size() == static_cast<std::size_t>(n_));
  if (opts_.format == KernelOptions::Format::Ebe) {
    std::fill(y.begin(), y.end(), real_t{0});
    // Element order is [coupled | interior] — the same scatter-add order
    // the Enhanced-discipline split replays, so apply() and that split
    // path are bit-identical.
    ebe_.apply_add(0, ebe_.num_elems(), x, y);
    return;
  }
  if (split_) {
    apply_coupled(x, y);
    apply_interior(x, y);
    return;
  }
  if (opts_.format == KernelOptions::Format::Sell) {
    sell_full_.spmv(x, y);
  } else {
    (csr_ != nullptr ? *csr_ : csr_own_).spmv(x, y);
  }
}

void RankKernel::apply_coupled(std::span<const real_t> x,
                               std::span<real_t> y) const {
  PFEM_DEBUG_CHECK(split_);
  if (opts_.format == KernelOptions::Format::Ebe) {
    ebe_.apply_add(0, ebe_split_, x, y);
  } else if (opts_.format == KernelOptions::Format::Sell) {
    sell_coupled_.spmv(x, y);
  } else {
    csr_coupled_.spmv(x, y);
  }
}

void RankKernel::apply_interior(std::span<const real_t> x,
                                std::span<real_t> y) const {
  PFEM_DEBUG_CHECK(split_);
  if (opts_.format == KernelOptions::Format::Ebe) {
    ebe_.apply_add(ebe_split_, ebe_.num_elems(), x, y);
  } else if (opts_.format == KernelOptions::Format::Sell) {
    sell_interior_.spmv(x, y);
  } else {
    csr_interior_.spmv(x, y);
  }
}

void RankKernel::apply_many(std::span<const Vector* const> xs,
                            std::span<Vector* const> ys) const {
  PFEM_DEBUG_CHECK(xs.size() == ys.size());
  if (opts_.format == KernelOptions::Format::Ebe) {
    for (Vector* y : ys) std::fill(y->begin(), y->end(), real_t{0});
    ebe_.apply_add_many(0, ebe_.num_elems(), xs, ys);
    return;
  }
  for (std::size_t l = 0; l < xs.size(); ++l) apply(*xs[l], *ys[l]);
}

void RankKernel::apply_coupled_many(std::span<const Vector* const> xs,
                                    std::span<Vector* const> ys) const {
  PFEM_DEBUG_CHECK(xs.size() == ys.size());
  if (opts_.format == KernelOptions::Format::Ebe) {
    ebe_.apply_add_many(0, ebe_split_, xs, ys);
    return;
  }
  for (std::size_t l = 0; l < xs.size(); ++l) apply_coupled(*xs[l], *ys[l]);
}

void RankKernel::apply_interior_many(std::span<const Vector* const> xs,
                                     std::span<Vector* const> ys) const {
  PFEM_DEBUG_CHECK(xs.size() == ys.size());
  if (opts_.format == KernelOptions::Format::Ebe) {
    ebe_.apply_add_many(ebe_split_, ebe_.num_elems(), xs, ys);
    return;
  }
  for (std::size_t l = 0; l < xs.size(); ++l) apply_interior(*xs[l], *ys[l]);
}

}  // namespace pfem::core
