#include "core/kernels.hpp"

#include <utility>

#include "common/error.hpp"

namespace pfem::core {

namespace detail {

void CsrRowsBlock::spmv(std::span<const real_t> x,
                        std::span<real_t> y) const {
  const auto nr = static_cast<index_t>(rows.size());
  for (index_t i = 0; i < nr; ++i) {
    real_t s = 0.0;
    for (index_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      s += val[k] * x[col[k]];
    }
    y[rows[i]] = s;
  }
}

namespace {

CsrRowsBlock make_block(const sparse::CsrMatrix& a,
                        std::span<const index_t> keep) {
  CsrRowsBlock b;
  b.rows.assign(keep.begin(), keep.end());
  b.row_ptr.assign(keep.size() + 1, index_t{0});
  const auto rp = a.row_ptr();
  for (std::size_t i = 0; i < keep.size(); ++i) {
    b.row_ptr[i + 1] = b.row_ptr[i] + (rp[keep[i] + 1] - rp[keep[i]]);
  }
  b.col.resize(static_cast<std::size_t>(b.row_ptr.back()));
  b.val.resize(static_cast<std::size_t>(b.row_ptr.back()));
  const auto ci = a.col_idx();
  const auto av = a.values();
  for (std::size_t i = 0; i < keep.size(); ++i) {
    const index_t n = rp[keep[i] + 1] - rp[keep[i]];
    for (index_t j = 0; j < n; ++j) {
      b.col[b.row_ptr[i] + j] = ci[rp[keep[i]] + j];
      b.val[b.row_ptr[i] + j] = av[rp[keep[i]] + j];
    }
  }
  return b;
}

// interior = not an interface dof and coupled to no interface column;
// everything else is "coupled" and must wait for / feed the exchange.
void classify_rows(const sparse::CsrMatrix& a,
                   std::span<const index_t> interface_dofs,
                   IndexVector& interior, IndexVector& coupled) {
  std::vector<char> iface(static_cast<std::size_t>(a.rows()), 0);
  for (const index_t i : interface_dofs) iface[i] = 1;
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  for (index_t i = 0; i < a.rows(); ++i) {
    bool is_interior = iface[i] == 0;
    for (index_t k = rp[i]; is_interior && k < rp[i + 1]; ++k) {
      if (iface[ci[k]] != 0) is_interior = false;
    }
    (is_interior ? interior : coupled).push_back(i);
  }
}

}  // namespace
}  // namespace detail

RankKernel::RankKernel(const sparse::CsrMatrix& k, Vector d,
                       std::span<const index_t> interface_dofs,
                       const KernelOptions& opts)
    : opts_(opts), n_(k.rows()), nnz_(static_cast<std::uint64_t>(k.nnz())) {
  PFEM_CHECK(k.rows() == k.cols());
  PFEM_CHECK(d.size() == static_cast<std::size_t>(k.rows()));
  for (const index_t i : interface_dofs) PFEM_CHECK(i >= 0 && i < k.rows());

  split_ = opts.overlap && !interface_dofs.empty();
  IndexVector interior;
  IndexVector coupled;
  if (split_) detail::classify_rows(k, interface_dofs, interior, coupled);

  if (opts.format == KernelOptions::Format::Sell) {
    // Fold D K D once at build: SpMV is gather-bound, and the apply-time
    // spmv_scaled fusion gathers d[col] next to every x[col], doubling
    // gather traffic on the hot path.  scale_symmetric uses the exact
    // rounding sequence spmv_scaled replays, so both routes stay
    // bit-identical; the build-time route just pays it once.
    sparse::CsrMatrix scaled = k;
    scaled.scale_symmetric(d);
    if (split_) {
      sell_coupled_ =
          sparse::SellMatrix::from_csr_rows(scaled, coupled, opts.chunk,
                                            opts.sigma);
      sell_interior_ =
          sparse::SellMatrix::from_csr_rows(scaled, interior, opts.chunk,
                                            opts.sigma);
    } else {
      sell_full_ =
          sparse::SellMatrix::from_csr(scaled, opts.chunk, opts.sigma);
    }
  } else {
    csr_own_ = k;
    csr_own_.scale_symmetric(d);
    if (split_) {
      csr_coupled_ = detail::make_block(csr_own_, coupled);
      csr_interior_ = detail::make_block(csr_own_, interior);
      csr_own_ = sparse::CsrMatrix();  // blocks cover every row
    }
  }
}

RankKernel RankKernel::from_scaled(const sparse::CsrMatrix* a,
                                   std::span<const index_t> interface_dofs,
                                   const KernelOptions& opts) {
  PFEM_CHECK(a != nullptr && a->rows() == a->cols());
  for (const index_t i : interface_dofs) {
    PFEM_CHECK(i >= 0 && i < a->rows());
  }
  RankKernel kn;
  kn.opts_ = opts;
  kn.n_ = a->rows();
  kn.nnz_ = static_cast<std::uint64_t>(a->nnz());
  kn.split_ = opts.overlap && !interface_dofs.empty();
  IndexVector interior;
  IndexVector coupled;
  if (kn.split_) detail::classify_rows(*a, interface_dofs, interior, coupled);

  if (opts.format == KernelOptions::Format::Sell) {
    if (kn.split_) {
      kn.sell_coupled_ =
          sparse::SellMatrix::from_csr_rows(*a, coupled, opts.chunk,
                                            opts.sigma);
      kn.sell_interior_ =
          sparse::SellMatrix::from_csr_rows(*a, interior, opts.chunk,
                                            opts.sigma);
    } else {
      kn.sell_full_ = sparse::SellMatrix::from_csr(*a, opts.chunk,
                                                   opts.sigma);
    }
  } else {
    if (kn.split_) {
      kn.csr_coupled_ = detail::make_block(*a, coupled);
      kn.csr_interior_ = detail::make_block(*a, interior);
    } else {
      kn.csr_ = a;
    }
  }
  return kn;
}

void RankKernel::apply(std::span<const real_t> x, std::span<real_t> y) const {
  PFEM_DEBUG_CHECK(x.size() == static_cast<std::size_t>(n_));
  PFEM_DEBUG_CHECK(y.size() == static_cast<std::size_t>(n_));
  if (split_) {
    apply_coupled(x, y);
    apply_interior(x, y);
    return;
  }
  if (opts_.format == KernelOptions::Format::Sell) {
    sell_full_.spmv(x, y);
  } else {
    (csr_ != nullptr ? *csr_ : csr_own_).spmv(x, y);
  }
}

void RankKernel::apply_coupled(std::span<const real_t> x,
                               std::span<real_t> y) const {
  PFEM_DEBUG_CHECK(split_);
  if (opts_.format == KernelOptions::Format::Sell) {
    sell_coupled_.spmv(x, y);
  } else {
    csr_coupled_.spmv(x, y);
  }
}

void RankKernel::apply_interior(std::span<const real_t> x,
                                std::span<real_t> y) const {
  PFEM_DEBUG_CHECK(split_);
  if (opts_.format == KernelOptions::Format::Sell) {
    sell_interior_.spmv(x, y);
  } else {
    csr_interior_.spmv(x, y);
  }
}

}  // namespace pfem::core
