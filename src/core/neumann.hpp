// Neumann-series polynomial preconditioner (§2.1.2, Algorithm 7).
//
// P_m(A) = ω (I + G + G² + ... + G^m),  G = I − ωA,
// valid whenever ρ(G) < 1 (Theorem 2) — guaranteed with ω = 1 after the
// norm-1 diagonal scaling maps σ(A) into (0,1).  Application is m
// mat-vecs through the abstract LinearOp, so the same code runs
// sequentially and on the EDD/RDD distributed operators (where each
// mat-vec embeds one nearest-neighbor exchange, giving the paper's
// per-iteration exchange count).
#pragma once

#include <span>

#include "common/types.hpp"
#include "core/operator.hpp"

namespace pfem::core {

class NeumannPolynomial {
 public:
  /// @param degree m >= 0; degree 0 is ω·I.
  /// @param omega  series scaling; must satisfy ρ(I − ωA) < 1.
  explicit NeumannPolynomial(int degree, real_t omega = 1.0);

  [[nodiscard]] int degree() const noexcept { return m_; }
  [[nodiscard]] real_t omega() const noexcept { return omega_; }

  /// z <- P_m(A) v via Algorithm 7 (m applications of A).
  void apply(const LinearOp& a, std::span<const real_t> v,
             std::span<real_t> z) const;

  /// Scalar evaluation P_m(λ) (for the Fig. 1 residual plots).
  [[nodiscard]] real_t eval(real_t lambda) const;

  /// Residual polynomial 1 − λ P_m(λ).
  [[nodiscard]] real_t residual(real_t lambda) const;

  /// Coefficients a_0..a_m of P_m in the power basis (Eq. 23) — input to
  /// the Fig. 3 stability bound m·ε·Σ|a_i| (Eq. 24).
  [[nodiscard]] Vector power_coeffs() const;

  /// Σ|a_i| of the power-basis coefficients.
  [[nodiscard]] real_t coeff_abs_sum() const;

 private:
  int m_;
  real_t omega_;
};

/// Eq. 24: upper bound on the floating-point error of P_m(A)v.
[[nodiscard]] real_t polynomial_stability_bound(int degree,
                                                real_t coeff_abs_sum);

}  // namespace pfem::core
