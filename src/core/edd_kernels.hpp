// Internal rank-local kernels shared by the EDD solvers (FGMRES and CG):
// the nearest-neighbor exchange (monolithic and split into start/finish
// halves for compute overlap), distributed inner products in the two
// vector formats, and the distributed polynomial application
// (Algorithm 7 generalized to Neumann and GLS, in both the local- and
// global-format disciplines).  Not part of the public API.
#pragma once

#include <cmath>
#include <optional>
#include <span>

#include "common/error.hpp"
#include "core/chebyshev.hpp"
#include "core/edd_solver.hpp"
#include "core/gls_poly.hpp"
#include "core/kernels.hpp"
#include "core/neumann.hpp"
#include "la/vector_ops.hpp"
#include "par/comm.hpp"
#include "partition/edd.hpp"
#include "sparse/csr.hpp"

namespace pfem::core::detail {

using partition::EddPartition;
using partition::EddSubdomain;
using sparse::CsrMatrix;



inline constexpr int kExchangeTag = 0;

/// sqrt clamped at zero: distributed ⟨x_loc, x_glob⟩ equals ‖x‖² only in
/// exact arithmetic — near convergence the cross-format partial sums can
/// round to a tiny negative value.  Callers must treat an exactly-zero
/// result as a zero vector (happy breakdown), never divide by it.
inline real_t sqrt_nonneg(real_t v) { return v > 0.0 ? std::sqrt(v) : 0.0; }

/// Rank-local helper: exchange, distributed inner products, counting.
class EddRank {
 public:
  /// `max_batch` is the widest fused exchange this rank will run (the
  /// solver's RHS batch width); buffers are preposted for it so the
  /// per-iteration resizes below never allocate.
  EddRank(const EddSubdomain& sub, par::Comm& comm, std::size_t max_batch = 1)
      : sub_(sub),
        comm_(comm),
        nl_(static_cast<std::size_t>(sub.n_local())),
        max_batch_(std::max<std::size_t>(max_batch, 1)) {
    // Prepost the exchange buffers: capacities are fixed by the neighbor
    // lists TIMES the configured batch width, so neither the single-RHS
    // nor the fused multi-RHS exchange ever allocates per iteration.
    std::size_t max_shared = 0;
    for (const auto& nb : sub_.neighbors)
      max_shared = std::max(max_shared, nb.shared_local_dofs.size());
    send_buf_.reserve(max_shared * max_batch_);
    recv_buf_.reserve(max_shared * max_batch_);
    buf_.reserve(sub_.interface_local_dofs.size());
    fused_buf_.reserve(sub_.interface_local_dofs.size() * max_batch_);
  }

  [[nodiscard]] std::size_t nl() const noexcept { return nl_; }
  [[nodiscard]] par::Comm& comm() noexcept { return comm_; }
  [[nodiscard]] par::PerfCounters& counters() noexcept {
    return comm_.counters();
  }

  /// û_glob = ⊕Σ_{∂Ω_s} û_loc (Eq. 28): in-place sum of neighbors'
  /// shared-dof contributions.  One logical nearest-neighbor exchange.
  ///
  /// Determinism: contributions are folded in ascending *rank* order
  /// (own contribution inserted at this rank's position), so every
  /// sharer of a dof computes the bit-identical sum even when three or
  /// more subdomains meet at a point.  Without this, the per-rank
  /// "global format" copies drift apart by ulps — harmless for restarted
  /// FGMRES but fatal for CG's recursively updated residual.
  void exchange(std::span<real_t> v) {
    PFEM_DEBUG_CHECK(v.size() == nl_);
    // The "exchange" span and neighbor_exchanges count the same logical
    // event, so a trace is an exact cross-check of the counters (and of
    // the paper's Table 1 per-iteration exchange counts).
    OBS_SPAN(comm_.tracer(), "exchange", obs::Cat::Exchange);
    counters().neighbor_exchanges += 1;
    post_sends(v);
    stash_and_zero(v);
    fold(v);
  }

  /// First half of exchange(): post the sends and stash-and-zero the
  /// interface entries of v, then return with the messages in flight.
  /// The caller may do any work that neither reads nor writes v's
  /// interface entries — in particular the interior-row block of the
  /// split operator — before calling exchange_finish(v).  The
  /// neighbor_exchanges counter is charged here (the exchange logically
  /// begins now); the matching "exchange" span is emitted by the finish
  /// half, so a trace still carries exactly one per logical exchange.
  void exchange_start(std::span<real_t> v) {
    PFEM_DEBUG_CHECK(v.size() == nl_);
    counters().neighbor_exchanges += 1;
    post_sends(v);
    stash_and_zero(v);
  }

  /// Second half: drain the receives and fold all contributions in the
  /// same ascending-rank order as the monolithic exchange — the result
  /// is bit-identical regardless of how much compute ran in between.
  void exchange_finish(std::span<real_t> v) {
    PFEM_DEBUG_CHECK(v.size() == nl_);
    OBS_SPAN(comm_.tracer(), "exchange", obs::Cat::Exchange);
    fold(v);
  }

  /// Fused form of exchange(): one ⊕Σ round for `vs.size()` vectors at
  /// once — each neighbor gets ONE message carrying every vector's
  /// shared-dof section, so the per-message latency (the cost model's
  /// alpha term) is amortized across the batch.  Counted as one logical
  /// neighbor exchange.  The per-dof fold order is identical to
  /// exchange()'s (ascending sharer rank), so each vector's result is
  /// bit-identical to what a standalone exchange would produce.
  void exchange_many(std::span<Vector* const> vs) {
    const std::size_t nb = vs.size();
    if (nb == 0) return;
    if (nb == 1) {
      exchange(*vs[0]);
      return;
    }
    OBS_SPAN(comm_.tracer(), "exchange", obs::Cat::Exchange,
             static_cast<std::uint32_t>(nb));
    counters().neighbor_exchanges += 1;
    post_sends_many(vs);
    stash_and_zero_many(vs);
    fold_many(vs);
  }

  /// Split halves of exchange_many(), same contract as exchange_start/
  /// exchange_finish but for a fused batch.
  void exchange_many_start(std::span<Vector* const> vs) {
    const std::size_t nb = vs.size();
    if (nb == 0) return;
    if (nb == 1) {
      exchange_start(*vs[0]);
      return;
    }
    counters().neighbor_exchanges += 1;
    post_sends_many(vs);
    stash_and_zero_many(vs);
  }

  void exchange_many_finish(std::span<Vector* const> vs) {
    const std::size_t nb = vs.size();
    if (nb == 0) return;
    if (nb == 1) {
      exchange_finish(*vs[0]);
      return;
    }
    OBS_SPAN(comm_.tracer(), "exchange", obs::Cat::Exchange,
             static_cast<std::uint32_t>(nb));
    fold_many(vs);
  }

  /// ⟨x, y⟩ with x local-distributed and y global-distributed (Eq. 33):
  /// local partial + allreduce.
  [[nodiscard]] real_t dot_lg(std::span<const real_t> x_loc,
                              std::span<const real_t> y_glob) {
    counters().inner_products += 1;
    counters().flops += 2 * nl_;
    return comm_.allreduce_sum(la::dot(x_loc, y_glob));
  }

  /// Local partial of ⟨x_loc, y_glob⟩ without the reduction — used when
  /// the caller batches several coefficients into one allreduce.
  [[nodiscard]] real_t dot_lg_partial(std::span<const real_t> x_loc,
                                      std::span<const real_t> y_glob) {
    counters().inner_products += 1;
    counters().flops += 2 * nl_;
    return la::dot(x_loc, y_glob);
  }

  /// ‖x‖² for a global-distributed x via the partition-of-unity weights
  /// 1/mult (each global dof counted exactly once across ranks).
  [[nodiscard]] real_t norm2_sq_global(std::span<const real_t> x_glob) {
    return comm_.allreduce_sum(dot_gg_partial(x_glob, x_glob));
  }

  /// ⟨x, y⟩ with both operands in global-distributed format (weighted by
  /// 1/mult), allreduced.
  [[nodiscard]] real_t dot_gg(std::span<const real_t> x_glob,
                              std::span<const real_t> y_glob) {
    return comm_.allreduce_sum(dot_gg_partial(x_glob, y_glob));
  }

  /// Local partial of the weighted global-format inner product.
  [[nodiscard]] real_t dot_gg_partial(std::span<const real_t> x_glob,
                                      std::span<const real_t> y_glob) {
    counters().inner_products += 1;
    counters().flops += 3 * nl_;
    real_t s = 0.0;
    for (std::size_t l = 0; l < nl_; ++l)
      s += x_glob[l] * y_glob[l] /
           static_cast<real_t>(sub_.multiplicity[l]);
    return s;
  }

  /// Local SpMV ŷ_loc = Â x̂_glob (Eq. 37) with counting.
  void spmv(const CsrMatrix& a, std::span<const real_t> x_glob,
            std::span<real_t> y_loc) {
    OBS_SPAN(comm_.tracer(), "spmv", obs::Cat::Matvec);
    a.spmv(x_glob, y_loc);
    counters().matvecs += 1;
    counters().flops += a.spmv_flops();
  }

  /// Same through the kernel layer (format chosen by KernelOptions).
  void spmv(const RankKernel& a, std::span<const real_t> x_glob,
            std::span<real_t> y_loc) {
    OBS_SPAN(comm_.tracer(), "spmv", obs::Cat::Matvec);
    a.apply(x_glob, y_loc);
    counters().matvecs += 1;
    counters().flops += a.apply_flops();
  }

  const EddSubdomain& sub() const noexcept { return sub_; }

 private:
  // The exchange decomposed into its three phases, shared by the
  // monolithic and the split form so the message pattern, the stash/fold
  // arithmetic and the deterministic ordering cannot drift apart.

  void post_sends(std::span<const real_t> v) {
    for (const auto& nb : sub_.neighbors) {
      const std::size_t ns = nb.shared_local_dofs.size();
      PFEM_DEBUG_CHECK(ns <= send_buf_.capacity());
      send_buf_.resize(ns);
      for (std::size_t k = 0; k < ns; ++k)
        send_buf_[k] = v[static_cast<std::size_t>(nb.shared_local_dofs[k])];
      comm_.exchange_start(nb.rank, kExchangeTag, send_buf_);
    }
  }

  /// Stash own interface contributions into buf_ and zero them in v, so
  /// the folds (own and neighbors') can land in pure ascending order.
  void stash_and_zero(std::span<real_t> v) {
    buf_.resize(sub_.interface_local_dofs.size());
    for (std::size_t k = 0; k < sub_.interface_local_dofs.size(); ++k) {
      const auto l = static_cast<std::size_t>(sub_.interface_local_dofs[k]);
      buf_[k] = v[l];
      v[l] = 0.0;
    }
  }

  /// Fold all sharers' contributions in ascending rank order (own
  /// contribution inserted at this rank's position).
  void fold(std::span<real_t> v) {
    bool own_added = sub_.neighbors.empty();
    auto add_own = [&] {
      // The own-contribution fold is the same work as a neighbor fold —
      // account its flops symmetrically.
      for (std::size_t k = 0; k < sub_.interface_local_dofs.size(); ++k)
        v[static_cast<std::size_t>(sub_.interface_local_dofs[k])] += buf_[k];
      counters().flops += sub_.interface_local_dofs.size();
      own_added = true;
    };
    if (own_added) add_own();
    for (const auto& nb : sub_.neighbors) {  // sorted by rank
      if (!own_added && nb.rank > comm_.rank()) add_own();
      const std::size_t ns = nb.shared_local_dofs.size();
      PFEM_DEBUG_CHECK(ns <= recv_buf_.capacity());
      recv_buf_.resize(ns);
      comm_.exchange_finish(nb.rank, kExchangeTag,
                            std::span<real_t>(recv_buf_.data(), ns));
      for (std::size_t k = 0; k < ns; ++k)
        v[static_cast<std::size_t>(nb.shared_local_dofs[k])] += recv_buf_[k];
      counters().flops += ns;
    }
    if (!own_added) add_own();
  }

  void post_sends_many(std::span<Vector* const> vs) {
    const std::size_t nb = vs.size();
    PFEM_DEBUG_CHECK(nb <= max_batch_);
    for (const auto& nb_it : sub_.neighbors) {
      const std::size_t ns = nb_it.shared_local_dofs.size();
      PFEM_DEBUG_CHECK(nb * ns <= send_buf_.capacity());
      send_buf_.resize(nb * ns);
      for (std::size_t b = 0; b < nb; ++b) {
        const Vector& v = *vs[b];
        for (std::size_t k = 0; k < ns; ++k)
          send_buf_[b * ns + k] =
              v[static_cast<std::size_t>(nb_it.shared_local_dofs[k])];
      }
      comm_.exchange_start(nb_it.rank, kExchangeTag, send_buf_);
    }
  }

  void stash_and_zero_many(std::span<Vector* const> vs) {
    const std::size_t nb = vs.size();
    const std::size_t ni = sub_.interface_local_dofs.size();
    PFEM_DEBUG_CHECK(nb * ni <= fused_buf_.capacity());
    fused_buf_.resize(nb * ni);
    for (std::size_t b = 0; b < nb; ++b) {
      Vector& v = *vs[b];
      for (std::size_t k = 0; k < ni; ++k) {
        const auto l = static_cast<std::size_t>(sub_.interface_local_dofs[k]);
        fused_buf_[b * ni + k] = v[l];
        v[l] = 0.0;
      }
    }
  }

  void fold_many(std::span<Vector* const> vs) {
    const std::size_t nb = vs.size();
    const std::size_t ni = sub_.interface_local_dofs.size();
    bool own_added = sub_.neighbors.empty();
    auto add_own = [&] {
      for (std::size_t b = 0; b < nb; ++b) {
        Vector& v = *vs[b];
        for (std::size_t k = 0; k < ni; ++k)
          v[static_cast<std::size_t>(sub_.interface_local_dofs[k])] +=
              fused_buf_[b * ni + k];
      }
      counters().flops += nb * ni;
      own_added = true;
    };
    if (own_added) add_own();
    for (const auto& nb_it : sub_.neighbors) {  // sorted by rank
      if (!own_added && nb_it.rank > comm_.rank()) add_own();
      const std::size_t ns = nb_it.shared_local_dofs.size();
      PFEM_DEBUG_CHECK(nb * ns <= recv_buf_.capacity());
      recv_buf_.resize(nb * ns);
      comm_.exchange_finish(nb_it.rank, kExchangeTag,
                            std::span<real_t>(recv_buf_.data(), nb * ns));
      for (std::size_t b = 0; b < nb; ++b) {
        Vector& v = *vs[b];
        for (std::size_t k = 0; k < ns; ++k)
          v[static_cast<std::size_t>(nb_it.shared_local_dofs[k])] +=
              recv_buf_[b * ns + k];
      }
      counters().flops += nb * ns;
    }
    if (!own_added) add_own();
  }

  const EddSubdomain& sub_;
  par::Comm& comm_;
  std::size_t nl_;
  std::size_t max_batch_;  ///< widest fused exchange ever issued
  Vector buf_, send_buf_, recv_buf_;
  Vector fused_buf_;  ///< interface stash of exchange_many (nb x ni)
};

/// One Enhanced-discipline recursion step: ŷ = Â x̂ immediately
/// globalized by one exchange.  With a split kernel the exchange
/// overlaps the interior block: the interface-coupled rows are computed
/// first, the sends go out while the interior rows (disjoint from every
/// stashed interface dof) fill in, and the folds land last.  Exactly one
/// matvec and one exchange either way — the overlapped "exchange" span
/// nests inside the "spmv" span instead of following it, but per-event
/// counts (what pfem_trace cross-checks against Table 1) are unchanged.
inline void spmv_exchange(EddRank& r, const RankKernel& a,
                          std::span<const real_t> x_glob,
                          std::span<real_t> y) {
  if (a.split()) {
    OBS_SPAN(r.comm().tracer(), "spmv", obs::Cat::Matvec);
    // Additive halves (Ebe) scatter-add into shared rows — start clean.
    if (a.additive()) la::fill(y, 0.0);
    a.apply_coupled(x_glob, y);
    r.exchange_start(y);
    a.apply_interior(x_glob, y);
    r.counters().matvecs += 1;
    r.counters().flops += a.apply_flops();
    r.exchange_finish(y);
  } else {
    r.spmv(a, x_glob, y);
    r.exchange(y);
  }
}

/// One Basic-discipline recursion step: globalize ŵ in place (the caller
/// passes a copy it can spare), then ŷ_loc = Â ŵ_glob.  With a split
/// kernel the sends go out first; the interior rows — which read no
/// interface column, so the mid-flight zeroed entries of ŵ are invisible
/// to them — compute while messages fly; the folds land; the coupled
/// rows finish against the fully globalized ŵ.
inline void exchange_spmv(EddRank& r, const RankKernel& a,
                          std::span<real_t> w_glob,
                          std::span<real_t> y_loc) {
  if (a.split()) {
    r.exchange_start(w_glob);
    OBS_SPAN(r.comm().tracer(), "spmv", obs::Cat::Matvec);
    // Additive halves (Ebe) scatter-add into shared rows — start clean.
    if (a.additive()) la::fill(y_loc, 0.0);
    a.apply_interior(w_glob, y_loc);
    r.exchange_finish(w_glob);
    a.apply_coupled(w_glob, y_loc);
    r.counters().matvecs += 1;
    r.counters().flops += a.apply_flops();
  } else {
    r.exchange(w_glob);
    r.spmv(a, w_glob, y_loc);
  }
}

/// Distributed polynomial preconditioner: the Algorithm-7 pattern for
/// both Neumann and GLS, in both vector-format disciplines.
class DistPoly {
 public:
  /// @param counters when non-null, construction work (the GLS Stieltjes
  ///        basis build) is charged here so setup accounting covers the
  ///        preconditioner, not just the scaling.
  DistPoly(const PolySpec& spec, std::size_t nl,
           par::PerfCounters* counters = nullptr)
      : spec_(spec) {
    if (spec.kind == PolyKind::Gls) {
      gls_.emplace(spec.theta, spec.degree);
      if (counters != nullptr) counters->flops += gls_build_flops(*gls_);
    } else if (spec.kind == PolyKind::Chebyshev) {
      PFEM_CHECK_MSG(!spec.theta.empty(),
                     "Chebyshev preconditioner needs an interval");
      cheb_.emplace(spec.theta.front(), spec.degree);
    }
    scratch_a_.resize(nl);
    scratch_b_.resize(nl);
    scratch_c_.resize(nl);
    scratch_d_.resize(nl);
  }

  /// Flop estimate of a GLS build: the Stieltjes three-term recursion and
  /// the mu fit each sweep every quadrature node per basis degree (~10
  /// flops per node-degree pair, counting the alpha/beta inner products).
  [[nodiscard]] static std::uint64_t gls_build_flops(const GlsPolynomial& g) {
    return 10ull * static_cast<std::uint64_t>(g.degree() + 1) *
           static_cast<std::uint64_t>(g.basis().num_nodes());
  }

  [[nodiscard]] int degree() const noexcept {
    return spec_.kind == PolyKind::None ? 0 : spec_.degree;
  }

  /// Enhanced discipline (Algorithm 6 line 10): v and z in *global*
  /// distributed format; exactly `degree` exchanges.
  void apply_global(EddRank& r, const RankKernel& a,
                    std::span<const real_t> v_glob, std::span<real_t> z_glob) {
    const std::size_t n = r.nl();
    switch (spec_.kind) {
      case PolyKind::None:
        la::copy(v_glob, z_glob);
        return;
      case PolyKind::Neumann: {
        // w_k = v + (I − ωA) w_{k−1}, all in global format.
        Vector& w = scratch_a_;
        Vector& aw = scratch_b_;
        la::copy(v_glob, w);
        for (int k = 0; k < spec_.degree; ++k) {
          spmv_exchange(r, a, w, aw);
          for (std::size_t i = 0; i < n; ++i)
            w[i] = v_glob[i] + w[i] - spec_.omega * aw[i];
          r.counters().flops += 3 * n;
          r.counters().vector_updates += 1;
        }
        for (std::size_t i = 0; i < n; ++i) z_glob[i] = spec_.omega * w[i];
        r.counters().flops += n;
        return;
      }
      case PolyKind::Gls: {
        const OrthoBasis& basis = gls_->basis();
        const auto mu = gls_->mu();
        Vector& u_prev = scratch_a_;
        Vector& u = scratch_b_;
        Vector& au = scratch_c_;
        la::fill(u_prev, 0.0);
        const real_t inv0 = 1.0 / basis.sqrt_beta(0);
        for (std::size_t i = 0; i < n; ++i) {
          u[i] = inv0 * v_glob[i];
          z_glob[i] = mu[0] * u[i];
        }
        r.counters().flops += 2 * n;
        for (int i = 0; i < spec_.degree; ++i) {
          spmv_exchange(r, a, u, au);
          const real_t ai = basis.alpha(i);
          const real_t sb_i = basis.sqrt_beta(i);
          const real_t sb_n = basis.sqrt_beta(i + 1);
          const real_t mu_next = mu[static_cast<std::size_t>(i) + 1];
          for (std::size_t k = 0; k < n; ++k) {
            const real_t t =
                (au[k] - ai * u[k] - (i > 0 ? sb_i * u_prev[k] : 0.0)) / sb_n;
            u_prev[k] = u[k];
            u[k] = t;
            z_glob[k] += mu_next * t;
          }
          r.counters().flops += 7 * n;
          r.counters().vector_updates += 1;
        }
        return;
      }
      case PolyKind::Chebyshev: {
        // Chebyshev semi-iteration, all vectors in global format; each
        // step's SpMV output is globalized by one exchange.
        const real_t theta = cheb_theta();
        const real_t delta = cheb_delta();
        const real_t sigma1 = theta / delta;
        Vector& res = scratch_a_;
        Vector& d = scratch_b_;
        Vector& ad = scratch_c_;
        la::copy(v_glob, res);
        real_t rho = 1.0 / sigma1;
        for (std::size_t i = 0; i < n; ++i) {
          d[i] = res[i] / theta;
          z_glob[i] = d[i];
        }
        r.counters().flops += 2 * n;
        for (int k = 1; k <= spec_.degree; ++k) {
          spmv_exchange(r, a, d, ad);
          const real_t rho_next = 1.0 / (2.0 * sigma1 - rho);
          const real_t c1 = rho_next * rho;
          const real_t c2 = 2.0 * rho_next / delta;
          for (std::size_t i = 0; i < n; ++i) {
            res[i] -= ad[i];
            d[i] = c1 * d[i] + c2 * res[i];
            z_glob[i] += d[i];
          }
          rho = rho_next;
          r.counters().flops += 6 * n;
          r.counters().vector_updates += 1;
        }
        return;
      }
    }
  }

  /// Basic discipline (Algorithm 5 line 12 via Algorithm 7): v and z in
  /// *local* distributed format; the recursion state is kept in both
  /// formats so the result needs no final exchange.  Exactly `degree`
  /// exchanges.
  void apply_local(EddRank& r, const RankKernel& a,
                   std::span<const real_t> v_loc, std::span<real_t> z_loc) {
    const std::size_t n = r.nl();
    switch (spec_.kind) {
      case PolyKind::None:
        la::copy(v_loc, z_loc);
        return;
      case PolyKind::Neumann: {
        // w_loc holds w_k in local format; each step exchanges a copy to
        // get the global format needed by the SpMV.
        Vector& w_loc = scratch_a_;
        Vector& w_glob = scratch_b_;
        Vector& aw = scratch_c_;
        la::copy(v_loc, w_loc);
        for (int k = 0; k < spec_.degree; ++k) {
          la::copy(w_loc, w_glob);
          exchange_spmv(r, a, w_glob, aw);
          for (std::size_t i = 0; i < n; ++i)
            w_loc[i] = v_loc[i] + w_loc[i] - spec_.omega * aw[i];
          r.counters().flops += 3 * n;
          r.counters().vector_updates += 1;
        }
        for (std::size_t i = 0; i < n; ++i) z_loc[i] = spec_.omega * w_loc[i];
        r.counters().flops += n;
        return;
      }
      case PolyKind::Gls: {
        const OrthoBasis& basis = gls_->basis();
        const auto mu = gls_->mu();
        Vector& u_prev = scratch_a_;
        Vector& u = scratch_b_;
        Vector& work = scratch_c_;  // globalized copy of u
        Vector& au = scratch_d_;
        la::fill(u_prev, 0.0);
        const real_t inv0 = 1.0 / basis.sqrt_beta(0);
        for (std::size_t i = 0; i < n; ++i) {
          u[i] = inv0 * v_loc[i];
          z_loc[i] = mu[0] * u[i];
        }
        r.counters().flops += 2 * n;
        for (int i = 0; i < spec_.degree; ++i) {
          la::copy(u, work);
          exchange_spmv(r, a, work, au);  // au back in local format
          const real_t ai = basis.alpha(i);
          const real_t sb_i = basis.sqrt_beta(i);
          const real_t sb_n = basis.sqrt_beta(i + 1);
          const real_t mu_next = mu[static_cast<std::size_t>(i) + 1];
          for (std::size_t k = 0; k < n; ++k) {
            const real_t t =
                (au[k] - ai * u[k] - (i > 0 ? sb_i * u_prev[k] : 0.0)) / sb_n;
            u_prev[k] = u[k];
            u[k] = t;
            z_loc[k] += mu_next * t;
          }
          r.counters().flops += 7 * n;
          r.counters().vector_updates += 1;
        }
        return;
      }
      case PolyKind::Chebyshev: {
        // Chebyshev semi-iteration with res/d/z in local format; each
        // step exchanges a copy of d to feed the SpMV.
        const real_t theta = cheb_theta();
        const real_t delta = cheb_delta();
        const real_t sigma1 = theta / delta;
        Vector& res = scratch_a_;
        Vector& d = scratch_b_;
        Vector& ad = scratch_c_;
        Vector& d_glob = scratch_d_;
        la::copy(v_loc, res);
        real_t rho = 1.0 / sigma1;
        for (std::size_t i = 0; i < n; ++i) {
          d[i] = res[i] / theta;
          z_loc[i] = d[i];
        }
        r.counters().flops += 2 * n;
        for (int k = 1; k <= spec_.degree; ++k) {
          la::copy(d, d_glob);
          exchange_spmv(r, a, d_glob, ad);  // local-format result
          const real_t rho_next = 1.0 / (2.0 * sigma1 - rho);
          const real_t c1 = rho_next * rho;
          const real_t c2 = 2.0 * rho_next / delta;
          for (std::size_t i = 0; i < n; ++i) {
            res[i] -= ad[i];
            d[i] = c1 * d[i] + c2 * res[i];
            z_loc[i] += d[i];
          }
          rho = rho_next;
          r.counters().flops += 6 * n;
          r.counters().vector_updates += 1;
        }
        return;
      }
    }
  }

 private:
  PolySpec spec_;
  std::optional<GlsPolynomial> gls_;
  std::optional<ChebyshevPolynomial> cheb_;
  Vector scratch_a_, scratch_b_, scratch_c_, scratch_d_;

  [[nodiscard]] real_t cheb_theta() const {
    return 0.5 * (cheb_->interval().lo + cheb_->interval().hi);
  }
  [[nodiscard]] real_t cheb_delta() const {
    return 0.5 * (cheb_->interval().hi - cheb_->interval().lo);
  }
};


}  // namespace pfem::core::detail
