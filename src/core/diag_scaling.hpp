// Norm-1 diagonal scaling (§2.1.1, Algorithms 3–4).
//
// D = diag(1/√d_i), d_i = ‖k_i‖₁, transforms K u = f into
// A x = b with A = DKD, b = Df, u = Dx, and — by Gershgorin (Theorem 1) —
// σ(A) ⊂ (−1, 1), in fact (0, 1) for SPD K.  This is the pre-processing
// step that lets the polynomial preconditioner always use Θ = (ε, 1)
// without estimating eigenvalues.
#pragma once

#include <span>

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace pfem::core {

/// The scaling diagonal: D_ii = 1/√(‖k_i‖₁).  Throws if a row is all zero.
[[nodiscard]] Vector norm1_scaling(const sparse::CsrMatrix& k);

/// A scaled system plus what is needed to map solutions back.
struct ScaledSystem {
  sparse::CsrMatrix a;  ///< A = D K D
  Vector b;             ///< b = D f
  Vector d;             ///< D diagonal

  /// u = D x.
  [[nodiscard]] Vector unscale(std::span<const real_t> x) const;
};

/// Apply Algorithm 4 to (K, f).
[[nodiscard]] ScaledSystem scale_system(const sparse::CsrMatrix& k,
                                        std::span<const real_t> f);

}  // namespace pfem::core
