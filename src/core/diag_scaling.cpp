#include "core/diag_scaling.hpp"

#include <cmath>
#include <string>

#include "common/error.hpp"

namespace pfem::core {

Vector norm1_scaling(const sparse::CsrMatrix& k) {
  Vector d = k.row_norms1();
  for (std::size_t i = 0; i < d.size(); ++i) {
    // A zero (or non-finite) row norm means d_i = 1/sqrt(||k_i||_1) does
    // not exist: the operator is degenerate, not the solver.  Typed so a
    // multi-tenant service can answer Failed{BadOperator} and keep
    // serving instead of treating it as an internal invariant violation.
    if (!(d[i] > 0.0) || !std::isfinite(d[i]))
      throw BadOperatorError("norm-1 scaling: zero/degenerate row " +
                             std::to_string(i));
    d[i] = 1.0 / std::sqrt(d[i]);
  }
  return d;
}

Vector ScaledSystem::unscale(std::span<const real_t> x) const {
  PFEM_CHECK(x.size() == d.size());
  Vector u(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) u[i] = d[i] * x[i];
  return u;
}

ScaledSystem scale_system(const sparse::CsrMatrix& k,
                          std::span<const real_t> f) {
  PFEM_CHECK(k.rows() == k.cols());
  PFEM_CHECK(f.size() == static_cast<std::size_t>(k.rows()));
  ScaledSystem s;
  s.d = norm1_scaling(k);
  s.a = k;
  s.a.scale_symmetric(s.d);
  s.b.resize(f.size());
  for (std::size_t i = 0; i < f.size(); ++i) s.b[i] = s.d[i] * f[i];
  return s;
}

}  // namespace pfem::core
