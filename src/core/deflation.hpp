// Two-level subdomain deflation for the EDD solvers.
//
// The polynomial preconditioners (Neumann/GLS/Chebyshev) act on the
// scaled operator Â with a fixed spectral window, so their quality — and
// with it the EDD-FGMRES iteration count — degrades as weak scaling
// grows the mesh with the subdomain count P.  The classical cure
// (AMGCL's subdomain deflation, SNIPPETS.md §1) is a coarse space with a
// handful of vectors per subdomain: the coarse operator E = ZᵀÂZ is tiny
// (~P·q × P·q), and a coarse-grid correction
//
//   Q v = Z E⁻¹ Zᵀ v,          B v = M (v − Â Q v) + Q v
//
// wrapped around the existing local preconditioner M ("A-DEF1" in the
// Tang/Nabben/Vuik/Erlangga taxonomy) removes the global low-frequency
// modes the polynomial cannot reach.  E is assembled once at setup from
// the sub-assembled local matrices (one allreduce of the dense E buffer)
// and LU-factorized redundantly — every rank holds the same bits, so the
// per-application coarse solve needs no broadcast: the only traffic is
// the ONE small allreduce that globalizes the coarse residual Zᵀv, plus
// the one extra mat-vec ÂZy (whose globalization rides the discipline's
// existing exchange pattern).  Each coarse solve bumps the
// PerfCounters::coarse_solves counter and stamps a "coarse_correct" span
// so pfem_trace --counters can cross-check the two pipelines rank by
// rank, exactly as it does for exchanges.
//
// Coarse space: each dof belongs to the patch of the LOWEST rank sharing
// it, and each (patch, component) pair carries up to 1 + dim columns —
// the indicator and its products with the node coordinates x, y(, z).
// Per-subdomain constants alone capture elasticity's smooth low modes
// (bending, rotation) too poorly to flatten weak scaling: the energy of
// a piecewise-constant approximation is dominated by its inter-patch
// jumps.  Adding the coordinate-linear columns lets the Galerkin
// minimizer assemble continuous piecewise-linear approximants, which is
// what actually bounds the deflated iteration growth (measured ≈1.3x
// from P=2 to P=8 where constants alone give ≈3x).
//
// Weighting: the solvers deflate the SCALED operator Â = D̂K̂D̂, whose
// near-null space is D̂⁻¹·(the near-null space of K), not the smooth
// vectors themselves — plain indicator columns aim at the wrong modes
// and can even slow convergence.  Z's entries at local dof l are
// therefore w_l·φ(x_node(l)) with the per-dof weight w_l = 1/d_l, so
// span(Z) = D̂⁻¹·span(φ's).
//
// Every ingredient of a dof's columns — owning rank (all sharers agree
// on the minimum), component (g mod components), coordinates (global
// table), weight (1/d̂, globally consistent) — is a pure function of the
// global dof id, so Zy is globally consistent across ranks with NO
// exchange: the property the whole traffic story rests on.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "la/dense.hpp"
#include "partition/edd.hpp"
#include "sparse/csr.hpp"

namespace pfem::core {

/// Deflation knobs, wired through SolveOptions (one-shot solves) and
/// ServiceConfig/build_edd_operator (warm batch path).  Mirrors the
/// KernelOptions pattern: plain data, defaults preserve today's
/// behavior.
struct DeflationOptions {
  /// Master switch.  Off by default (paper-faithful single-level
  /// preconditioning).
  bool enabled = false;

  /// q: coarse vectors per subdomain.  Each (subdomain, component) pair
  /// gets nbasis = clamp(q / components, 1, 1 + coord_dim) columns: the
  /// patch indicator, then its products with x, y(, z).  q = components
  /// is the classical one-constant-per-component space; the default
  /// (with 2-D coordinates supplied) enables the full {1, x, y} linear
  /// enrichment that flat weak scaling requires.
  int vectors_per_subdomain = 6;

  /// Dofs per node of the discretization (2 for 2-D elasticity, 3 for
  /// 3-D), used to keep displacement components in separate coarse
  /// vectors; 1 is the scalar-safe choice.
  int components = 2;

  /// Node coordinates per GLOBAL free dof, flattened
  /// [g * coord_dim + k]; both dofs of a node repeat its coordinates
  /// (fem::free_dof_coords builds this from a mesh + dofmap).  Empty =>
  /// no coordinate enrichment, patch constants only.
  std::vector<real_t> dof_coords;

  /// Spatial dimension of dof_coords (0 when none supplied).
  int coord_dim = 0;

  /// Jump-aware partition-of-unity variant (AMGCL-style coefficient
  /// splitting): every subdomain patch is split into TWO coefficient
  /// classes — dofs below / at-or-above the global pivot, the geometric
  /// mean of the coefficient range — and each class gets its own coarse
  /// columns.  With a strong jump the scaled operator's near-null space
  /// is no longer smooth ACROSS the jump; per-class columns let the
  /// Galerkin minimizer approximate each coefficient region separately,
  /// which is what keeps the deflated iteration count near the
  /// homogeneous one (bench/hetero_scaling's gate).  ncoarse doubles to
  /// P·2·nbasis·components; a subdomain lacking one class just yields
  /// structurally empty E rows, which CoarseOperator regularizes.
  bool jump_aware = false;

  /// Per-GLOBAL-free-dof coefficient magnitude [g] (all entries > 0),
  /// required when jump_aware (fem problem families fill it from the
  /// per-element coefficients).  Like dof_coords it is a globally
  /// replicated pure function of the global dof id, so the class
  /// assignment needs no communication.  Ignored when !jump_aware.
  std::vector<real_t> dof_coeff;
};

/// Validate deflation options against the operator's dof layout at
/// BUILD time.  Throws pfem::BadOperatorError (not a generic check
/// failure) on any mismatch — coord table of the wrong length for
/// n_global·coord_dim (e.g. 2-D coords on a 3-D brick), components that
/// do not divide n_global (diffusion's 1 vs elasticity's 2–3), or a
/// missing/degenerate coefficient table with jump_aware — so the
/// service surfaces a typed Failed{BadOperator} instead of silently
/// building a wrong coarse space.  No-op when !opts.enabled.
void validate_deflation(const DeflationOptions& opts, index_t n_global);

/// The replicated coarse operator: E = ZᵀÂZ, LU-factorized once.
/// solve() is const and allocation-free, so one instance may be shared
/// read-only by every rank (the batch path) or built redundantly per
/// rank from allreduced — hence bit-identical — E entries (the one-shot
/// path).
class CoarseOperator {
 public:
  /// Takes the fully assembled (allreduced) E.  Structurally empty rows
  /// — a subdomain owning no dof of some component — are regularized to
  /// identity so the factorization stays well-posed; the matching coarse
  /// residual entries are exactly zero, so the regularization never
  /// perturbs the correction.
  explicit CoarseOperator(la::DenseMatrix e);

  [[nodiscard]] index_t n() const noexcept { return lu_.n(); }

  /// c <- E⁻¹ c.
  void solve(std::span<real_t> c) const { lu_.solve(c); }

  /// Flops of one coarse solve, for PerfCounters accounting.
  [[nodiscard]] std::uint64_t solve_flops() const noexcept {
    return lu_.solve_flops();
  }

 private:
  la::LuFactorization lu_;
};

/// Per-rank view of the coarse space: every local dof belongs to nbasis
/// columns of Z (one per basis function), so restriction/prolongation
/// are short gather/scatter loops and E assembly is one sweep over the
/// local nnz.
class DeflationRank {
 public:
  /// @param rank     this subdomain's rank id (owner patches are keyed
  ///        by the minimum sharing rank, so each rank must know its own).
  /// @param nparts   the partition's P, sizing ncoarse = P·nbasis·comps.
  /// @param dof_weights Z's weight per local dof — pass 1/d̂ so the
  ///        coarse space matches the scaled operator (copied; must be
  ///        globally consistent across sharing ranks, as d̂ is).
  DeflationRank(const partition::EddSubdomain& sub, int rank, int nparts,
                const DeflationOptions& opts,
                std::span<const real_t> dof_weights);

  /// Total coarse dimension P·nclasses·nbasis·components.
  [[nodiscard]] index_t ncoarse() const noexcept { return ncoarse_; }

  /// Basis functions per (patch, component) pair actually in use
  /// (1 without coordinates, up to 1 + coord_dim with them).
  [[nodiscard]] int nbasis() const noexcept { return nbasis_; }

  /// Coefficient classes per patch: 2 with jump_aware, else 1.
  [[nodiscard]] int nclasses() const noexcept { return nclasses_; }

  /// e += ZᵀÂ_loc Z for this rank's sub-assembled K̂_loc and scaling d
  /// (Â = D̂K̂D̂ applied on the fly); allreducing e over ranks yields E
  /// by the local-format sum identity Â = Σ_s B_sᵀ Â_loc B_s.
  void accumulate_e(const sparse::CsrMatrix& k, std::span<const real_t> d,
                    la::DenseMatrix& e) const;

  /// Same, for a pre-scaled local matrix Â_loc (the batch path's op.a).
  void accumulate_e_scaled(const sparse::CsrMatrix& a_scaled,
                           la::DenseMatrix& e) const;

  /// c += partial of Zᵀv, v in LOCAL distributed format (partial sums;
  /// allreduce completes the restriction).
  void restrict_local(std::span<const real_t> v_loc,
                      std::span<real_t> c) const;

  /// c += partial of Zᵀv, v in GLOBAL format (1/mult weighting counts
  /// every global dof once; allreduce completes the restriction).
  void restrict_global(std::span<const real_t> v_glob,
                       std::span<real_t> c) const;

  /// z <- Zy in GLOBAL format — consistent across sharing ranks without
  /// any exchange, because every column ingredient is a function of the
  /// global dof id alone.
  void prolong_global(std::span<const real_t> y, std::span<real_t> z) const;

  /// z <- Zy in LOCAL distributed format (entries divided by
  /// multiplicity so the cross-rank sum reproduces Zy).
  void prolong_local(std::span<const real_t> y, std::span<real_t> z) const;

 private:
  const partition::EddSubdomain* sub_;
  index_t ncoarse_ = 0;
  int nbasis_ = 1;
  int nclasses_ = 1;
  index_t comps_ = 1;
  IndexVector col0_;  ///< dof -> first column:
                      ///< (owner·nclasses + class)·nbasis·c + comp
  Vector val_;        ///< dof-major [l·nbasis + b]: w_l · φ_b(node(l))
};

}  // namespace pfem::core
