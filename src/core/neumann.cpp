#include "core/neumann.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "la/vector_ops.hpp"

namespace pfem::core {

NeumannPolynomial::NeumannPolynomial(int degree, real_t omega)
    : m_(degree), omega_(omega) {
  PFEM_CHECK(degree >= 0);
  PFEM_CHECK(omega != 0.0);
}

void NeumannPolynomial::apply(const LinearOp& a, std::span<const real_t> v,
                              std::span<real_t> z) const {
  const std::size_t n = v.size();
  PFEM_CHECK(z.size() == n);
  // w_0 = v;  w_k = v + G w_{k-1} = v + w_{k-1} - ω A w_{k-1};
  // after m steps  z = ω w_m = ω Σ_{i=0}^m G^i v.
  Vector w(v.begin(), v.end());
  Vector aw(n);
  for (int k = 0; k < m_; ++k) {
    a.apply(w, aw);                       // aw = A w
    for (std::size_t i = 0; i < n; ++i)   // w = v + w - ω aw
      w[i] = v[i] + w[i] - omega_ * aw[i];
  }
  for (std::size_t i = 0; i < n; ++i) z[i] = omega_ * w[i];
}

real_t NeumannPolynomial::eval(real_t lambda) const {
  const real_t g = 1.0 - omega_ * lambda;
  real_t acc = 1.0;  // Horner on Σ g^i
  for (int i = 0; i < m_; ++i) acc = 1.0 + g * acc;
  return omega_ * acc;
}

real_t NeumannPolynomial::residual(real_t lambda) const {
  return 1.0 - lambda * eval(lambda);
}

Vector NeumannPolynomial::power_coeffs() const {
  // g(λ) = 1 − ωλ.  acc = Σ_{i=0}^m g^i, built iteratively: gi holds g^i.
  Vector acc(static_cast<std::size_t>(m_) + 1, 0.0);
  Vector gi(static_cast<std::size_t>(m_) + 1, 0.0);
  gi[0] = 1.0;  // g^0
  acc[0] = 1.0;
  for (int i = 1; i <= m_; ++i) {
    // gi <- gi * (1 - ωλ): new[k] = old[k] - ω old[k-1].
    for (int k = i; k >= 1; --k)
      gi[static_cast<std::size_t>(k)] =
          gi[static_cast<std::size_t>(k)] -
          omega_ * gi[static_cast<std::size_t>(k) - 1];
    // k = 0 term unchanged.
    for (int k = 0; k <= i; ++k)
      acc[static_cast<std::size_t>(k)] += gi[static_cast<std::size_t>(k)];
  }
  for (real_t& c : acc) c *= omega_;
  return acc;
}

real_t NeumannPolynomial::coeff_abs_sum() const {
  real_t s = 0.0;
  for (real_t c : power_coeffs()) s += std::abs(c);
  return s;
}

real_t polynomial_stability_bound(int degree, real_t coeff_abs_sum) {
  return static_cast<real_t>(degree) *
         std::numeric_limits<real_t>::epsilon() * coeff_abs_sum;
}

}  // namespace pfem::core
