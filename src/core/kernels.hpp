// Per-subdomain operator kernels: format selection (scalar CSR vs
// vectorized SELL-C-σ), fused norm-1 scaling, and the interior/interface
// row split that lets the polynomial apply overlap the nearest-neighbor
// exchange with interior compute.
//
// RankKernel wraps one subdomain's scaled operator Â = D K D behind a
// uniform apply() so the distributed solvers never touch storage details:
//
//   - format Csr:  a prescaled CSR copy, scalar row loop — the exact
//     kernel the solvers ran before this layer existed (the fallback).
//   - format Sell: SELL-C-σ with D K D folded into the stored values at
//     build time, using scale_symmetric's exact rounding sequence — the
//     same sequence the apply-time spmv_scaled fusion replays (see
//     sparse/sell.hpp), so both routes are bit-identical.  Folding at
//     build wins because SpMV is gather-bound and apply-time fusion
//     gathers d[col] next to every x[col].
//
// With overlap on, rows are classified once at build time:
//   interior — not an interface dof AND coupled to no interface column;
//     safe to compute while an exchange is in flight in either
//     discipline (Basic's input vector has only its interface entries
//     zeroed mid-exchange, which interior rows never read; Enhanced's
//     output stash touches only interface dofs, which interior rows
//     never write).
//   coupled  — everything else (interface rows and their neighbors).
// Both blocks keep whole rows in original column order, so the split
// apply is bit-identical to the full one.
#pragma once

#include <cstdint>
#include <span>

#include "common/types.hpp"
#include "sparse/csr.hpp"
#include "sparse/sell.hpp"

namespace pfem::core {

/// Kernel knob carried by SolveOptions / ServiceConfig.  Defaults pick
/// the vectorized fused path with exchange overlap; {Format::Csr,
/// overlap=false} reproduces the pre-kernel-layer scalar behavior.
struct KernelOptions {
  enum class Format : std::uint8_t {
    Csr,   ///< scalar CSR, eagerly scaled (the legacy fallback)
    Sell,  ///< SELL-C-σ with the D K D scaling fused into the kernel
  };
  Format format = Format::Sell;
  /// Split interior/interface rows and overlap the neighbor exchange
  /// with interior compute inside the polynomial apply.
  bool overlap = true;
  int chunk = 0;  ///< SELL chunk width C; 0 = platform default (8)
  int sigma = 0;  ///< SELL sort window σ in rows; 0 = default (8C)
};

namespace detail {
/// A row subset of a CSR matrix with scatter to original row ids — the
/// scalar-CSR form of a split block.
struct CsrRowsBlock {
  IndexVector rows;     ///< original row id per compact row
  IndexVector row_ptr;  ///< compact, rows.size()+1
  IndexVector col;
  Vector val;
  void spmv(std::span<const real_t> x, std::span<real_t> y) const;
};
}  // namespace detail

class RankKernel {
 public:
  RankKernel() = default;

  /// Build from the UNSCALED subdomain matrix `k` and the norm-1 scaling
  /// diagonal `d` (already globalized and inverted-square-rooted).  Both
  /// formats fold the scaling in once at build time.
  RankKernel(const sparse::CsrMatrix& k, Vector d,
             std::span<const index_t> interface_dofs,
             const KernelOptions& opts);

  /// Wrap an ALREADY-SCALED matrix by reference (not owned; must outlive
  /// the kernel).  No fused scaling; Sell format converts the scaled
  /// entries.  Used where a prebuilt scaled operator is the input.
  [[nodiscard]] static RankKernel from_scaled(
      const sparse::CsrMatrix* a, std::span<const index_t> interface_dofs,
      const KernelOptions& opts);

  /// Split blocks were built — the overlapped exchange path is available.
  [[nodiscard]] bool split() const noexcept { return split_; }
  [[nodiscard]] index_t rows() const noexcept { return n_; }
  [[nodiscard]] const KernelOptions& options() const noexcept {
    return opts_;
  }

  /// y <- Â x over all rows.
  void apply(std::span<const real_t> x, std::span<real_t> y) const;
  /// y[r] <- (Â x)_r for interface-coupled rows only (requires split()).
  void apply_coupled(std::span<const real_t> x, std::span<real_t> y) const;
  /// y[r] <- (Â x)_r for interior rows only (requires split()).
  void apply_interior(std::span<const real_t> x, std::span<real_t> y) const;

  /// Flops of one full apply: 2*nnz (identical across formats/splits).
  [[nodiscard]] std::uint64_t apply_flops() const noexcept {
    return 2ull * nnz_;
  }

 private:
  KernelOptions opts_;
  bool split_ = false;
  index_t n_ = 0;
  std::uint64_t nnz_ = 0;
  sparse::CsrMatrix csr_own_;
  /// Non-owning view set ONLY by from_scaled() (external matrix, stable
  /// address).  The owning path always reads csr_own_ directly — a
  /// pointer into our own member would dangle after a move, and
  /// EddOperatorState moves its kernels around.
  const sparse::CsrMatrix* csr_ = nullptr;
  detail::CsrRowsBlock csr_coupled_, csr_interior_;
  sparse::SellMatrix sell_full_, sell_coupled_, sell_interior_;
};

}  // namespace pfem::core
