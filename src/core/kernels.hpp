// Per-subdomain operator kernels: format selection (scalar CSR vs
// vectorized SELL-C-σ), fused norm-1 scaling, and the interior/interface
// row split that lets the polynomial apply overlap the nearest-neighbor
// exchange with interior compute.
//
// RankKernel wraps one subdomain's scaled operator Â = D K D behind a
// uniform apply() so the distributed solvers never touch storage details:
//
//   - format Csr:  a prescaled CSR copy, scalar row loop — the exact
//     kernel the solvers ran before this layer existed (the fallback).
//   - format Sell: SELL-C-σ with D K D folded into the stored values at
//     build time, using scale_symmetric's exact rounding sequence — the
//     same sequence the apply-time spmv_scaled fusion replays (see
//     sparse/sell.hpp), so both routes are bit-identical.  Folding at
//     build wins because SpMV is gather-bound and apply-time fusion
//     gathers d[col] next to every x[col].
//   - format Ebe:  matrix-free element-by-element apply on the
//     subdomain's dense element matrices (sparse/ebe_store.hpp), the
//     scaling folded into every element entry at build time with the
//     same per-entry rounding sequence.  NOT bit-identical to the
//     assembled formats in general (summing per element reassociates
//     the row accumulation); the contract is instead identical
//     iteration counts, exchange counts, fault sites and span
//     structure, with apply results within a measured ulp bound
//     (DESIGN.md §14).  Requires element data — partitions built by
//     build_edd_partition carry it; anything else gets a typed error.
//
// With overlap on, rows are classified once at build time:
//   interior — not an interface dof AND coupled to no interface column;
//     safe to compute while an exchange is in flight in either
//     discipline (Basic's input vector has only its interface entries
//     zeroed mid-exchange, which interior rows never read; Enhanced's
//     output stash touches only interface dofs, which interior rows
//     never write).
//   coupled  — everything else (interface rows and their neighbors).
// Both blocks keep whole rows in original column order, so the split
// apply is bit-identical to the full one.
//
// The Ebe format splits ELEMENTS instead of rows: an element is
// interior iff it touches no interface dof, so interior elements never
// read (Basic) or write (Enhanced) an in-flight interface entry.  The
// halves scatter-ADD into shared rows — callers zero y first (see
// additive()) — and elements are stored [coupled | interior], so the
// whole apply() equals the Enhanced-order split bit for bit.
#pragma once

#include <cstdint>
#include <span>

#include "common/types.hpp"
#include "sparse/csr.hpp"
#include "sparse/ebe_store.hpp"
#include "sparse/sell.hpp"

namespace pfem::core {

/// Kernel knob carried by SolveOptions / ServiceConfig.  Defaults pick
/// the vectorized fused path with exchange overlap; {Format::Csr,
/// overlap=false} reproduces the pre-kernel-layer scalar behavior.
struct KernelOptions {
  enum class Format : std::uint8_t {
    Csr,   ///< scalar CSR, eagerly scaled (the legacy fallback)
    Sell,  ///< SELL-C-σ with the D K D scaling fused into the kernel
    Ebe,   ///< matrix-free element-by-element, scaling folded per entry
  };
  Format format = Format::Sell;
  /// Split interior/interface rows and overlap the neighbor exchange
  /// with interior compute inside the polynomial apply.
  bool overlap = true;
  int chunk = 0;  ///< SELL chunk width C; 0 = platform default (8)
  int sigma = 0;  ///< SELL sort window σ in rows; 0 = default (8C)
};

namespace detail {
/// A row subset of a CSR matrix with scatter to original row ids — the
/// scalar-CSR form of a split block.
struct CsrRowsBlock {
  IndexVector rows;     ///< original row id per compact row
  IndexVector row_ptr;  ///< compact, rows.size()+1
  IndexVector col;
  Vector val;
  void spmv(std::span<const real_t> x, std::span<real_t> y) const;
};
}  // namespace detail

class RankKernel {
 public:
  RankKernel() = default;

  /// Build from the UNSCALED subdomain matrix `k` and the norm-1 scaling
  /// diagonal `d` (already globalized and inverted-square-rooted).  All
  /// formats fold the scaling in once at build time.  `elems` is the
  /// subdomain's element store (local dof ids, unscaled entries) — the
  /// Ebe format requires it (typed error when null); the assembled
  /// formats ignore it.
  RankKernel(const sparse::CsrMatrix& k, Vector d,
             std::span<const index_t> interface_dofs,
             const KernelOptions& opts,
             const sparse::EbeStore* elems = nullptr);

  /// Wrap an ALREADY-SCALED matrix by reference (not owned; must outlive
  /// the kernel).  No fused scaling; Sell format converts the scaled
  /// entries.  Used where a prebuilt scaled operator is the input.
  [[nodiscard]] static RankKernel from_scaled(
      const sparse::CsrMatrix* a, std::span<const index_t> interface_dofs,
      const KernelOptions& opts);

  /// Split blocks were built — the overlapped exchange path is available.
  [[nodiscard]] bool split() const noexcept { return split_; }
  [[nodiscard]] index_t rows() const noexcept { return n_; }
  [[nodiscard]] const KernelOptions& options() const noexcept {
    return opts_;
  }
  /// The split halves scatter-ADD into shared rows instead of assigning
  /// disjoint whole rows (true for Ebe): callers must zero y before the
  /// first half.  apply() always handles its own initialization.
  [[nodiscard]] bool additive() const noexcept {
    return opts_.format == KernelOptions::Format::Ebe;
  }

  /// y <- Â x over all rows.
  void apply(std::span<const real_t> x, std::span<real_t> y) const;
  /// y[r] <- (Â x)_r for interface-coupled rows only (requires split()).
  /// Ebe: y += the coupled elements' contributions (additive()).
  void apply_coupled(std::span<const real_t> x, std::span<real_t> y) const;
  /// y[r] <- (Â x)_r for interior rows only (requires split()).
  /// Ebe: y += the interior elements' contributions (additive()).
  void apply_interior(std::span<const real_t> x, std::span<real_t> y) const;

  /// Multi-RHS forms for the batched service path: lane i of ys receives
  /// the apply of lane i of xs.  Csr/Sell delegate per lane
  /// (bit-identical to single applies); Ebe runs element-major so each
  /// dense element matrix is loaded once per batch, not once per lane.
  void apply_many(std::span<const Vector* const> xs,
                  std::span<Vector* const> ys) const;
  void apply_coupled_many(std::span<const Vector* const> xs,
                          std::span<Vector* const> ys) const;
  void apply_interior_many(std::span<const Vector* const> xs,
                           std::span<Vector* const> ys) const;

  /// Flops of one full apply: 2*nnz for the assembled formats, the
  /// gather/multiply/scatter cost for Ebe (duplicated interface work is
  /// real work — it is charged).
  [[nodiscard]] std::uint64_t apply_flops() const noexcept {
    return opts_.format == KernelOptions::Format::Ebe ? ebe_.apply_flops()
                                                      : 2ull * nnz_;
  }

 private:
  KernelOptions opts_;
  bool split_ = false;
  index_t n_ = 0;
  std::uint64_t nnz_ = 0;
  sparse::CsrMatrix csr_own_;
  /// Non-owning view set ONLY by from_scaled() (external matrix, stable
  /// address).  The owning path always reads csr_own_ directly — a
  /// pointer into our own member would dangle after a move, and
  /// EddOperatorState moves its kernels around.
  const sparse::CsrMatrix* csr_ = nullptr;
  detail::CsrRowsBlock csr_coupled_, csr_interior_;
  sparse::SellMatrix sell_full_, sell_coupled_, sell_interior_;
  /// Ebe only: the folded element store, elements permuted
  /// [coupled | interior]; ebe_split_ marks the boundary.
  sparse::EbeStore ebe_;
  index_t ebe_split_ = 0;  ///< elements [0, ebe_split_) are coupled
};

}  // namespace pfem::core
