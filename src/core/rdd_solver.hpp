// Row-based domain decomposition FGMRES (§4, Algorithm 8) — the
// comparison baseline representing PSPARSLIB/Aztec/pARMS-style solvers.
//
// Vectors live on owned rows only; the mat-vec is Eq. 48
// (scatter boundary values / gather externals / y = A_loc x + A_ext x_ext),
// inner products are local dots + allreduce (Eq. 47), and the norm-1
// diagonal scaling needs no communication for the row norms (the paper's
// remark in §4.1.2) but one exchange to obtain the scaling of external
// columns.  Preconditioning is either the same polynomial machinery
// (each application = m distributed mat-vecs, hence m exchanges) or the
// block-Jacobi local-ILU(0) kernel of Eq. 49's discussion.
#pragma once

#include <span>

#include "core/edd_solver.hpp"
#include "partition/rdd.hpp"

namespace pfem::core {

struct RddOptions {
  enum class Precond {
    Poly,            ///< polynomial (m distributed mat-vecs per apply)
    BlockJacobiIlu,  ///< local ILU(0) solve, no communication
    AdditiveSchwarz, ///< restricted additive Schwarz, overlap 1: ILU(0)
                     ///< on the owned∪external block, one exchange/apply
  };
  Precond precond = Precond::Poly;
  PolySpec poly;  ///< used when precond == Poly
};

/// Solve A u = f on an RDD (block-row) partition.
[[nodiscard]] DistSolve solve_rdd(const partition::RddPartition& part,
                                        std::span<const real_t> f_global,
                                        const RddOptions& rdd_opts = {},
                                        const SolveOptions& opts = {});

}  // namespace pfem::core
