// Orthogonal polynomial machinery for the GLS preconditioner (§2.1.3).
//
// The GLS least-squares problem min ‖1 − λP_m(λ)‖_w over Θ is solved, as
// in the paper (via Saad [15]), by constructing an orthogonal sequence
// {λφ_i(λ)} with the Stieltjes procedure and expanding
// P_m = Σ μ_i φ_i with μ_i = ⟨1, λφ_i⟩_w (Eqs. 20–21).
//
// Concretely: {λφ_i} orthonormal under w  ⇔  {φ_i} orthonormal under the
// modified weight λ²w(λ).  So we
//   1. lay a composite Gauss–Chebyshev rule over Θ (w = the Chebyshev
//      weight of each interval — the classical choice, [15]);
//   2. run Stieltjes three-term recursion on the *discrete* measure with
//      weights λ_j² w_j to get orthonormal φ_0..φ_m
//      (φ_{i+1} = ((λ−α_i)φ_i − √β_i φ_{i−1}) / √β_{i+1});
//   3. compute μ_i = Σ_j w_j λ_j φ_i(λ_j).
// The recursion coefficients are exactly what the vector-space
// application P_m(A)v runs on — m SpMVs, nothing else.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "core/intervals.hpp"

namespace pfem::core {

/// Discrete quadrature measure: Σ_j weights[j] · δ(nodes[j]).
struct QuadratureRule {
  Vector nodes;
  Vector weights;
};

/// Composite Gauss–Chebyshev rule over Θ: per interval (a,b), nodes
/// c + r·cos((j+½)π/K) with uniform weights π/K (exact for polynomial
/// integrands of degree ≤ 2K−1 against the interval's Chebyshev weight).
[[nodiscard]] QuadratureRule chebyshev_rule(const Theta& theta,
                                            int points_per_interval);

/// Orthonormal polynomials of a discrete measure via the Stieltjes
/// procedure.  Stores recursion coefficients and node values.
class OrthoBasis {
 public:
  /// Build φ_0..φ_max_degree orthonormal w.r.t. Σ w_j δ(x_j).
  /// Requires enough distinct nodes (> max_degree) and positive weights.
  OrthoBasis(const QuadratureRule& rule, int max_degree);

  [[nodiscard]] int max_degree() const noexcept { return m_; }

  /// Recursion coefficients: α_i (i = 0..m−1), √β_i (i = 1..m), and
  /// √β_0 = ‖1‖ so that φ_0 = 1/√β_0.
  [[nodiscard]] real_t alpha(int i) const;
  [[nodiscard]] real_t sqrt_beta(int i) const;  // i = 0..m

  /// Evaluate φ_0..φ_m at x by the recursion.
  [[nodiscard]] Vector eval_all(real_t x) const;

  /// Values of φ_i at the construction nodes (for computing inner
  /// products of the fit).
  [[nodiscard]] std::span<const real_t> node_values(int i) const;

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::span<const real_t> nodes() const { return nodes_; }

 private:
  int m_;
  Vector nodes_;
  Vector alpha_;      // m entries
  Vector sqrt_beta_;  // m+1 entries: [0] = ||1||, [i>=1] from recursion
  std::vector<Vector> phi_;  // (m+1) x nodes
};

}  // namespace pfem::core
