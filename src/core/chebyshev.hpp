// Chebyshev polynomial preconditioner — the classical min-max member of
// the polynomial family the paper surveys ("Neumann series,
// least-squares, Chebyshev etc.", §2.1.3).
//
// For SPD systems with σ(A) ⊂ [a, b], 0 < a < b, the degree-m polynomial
// minimizing max_{λ∈[a,b]} |1 − λp(λ)| satisfies
//   1 − λ p_m(λ) = T_{m+1}(t(λ)) / T_{m+1}(t(0)),
//   t(λ) = (b + a − 2λ)/(b − a),
// and p_m(A)v is exactly m steps of the Chebyshev semi-iteration
// (Golub–Varga three-term recurrence) applied to A z = v from z = 0 —
// i.e. m mat-vecs through the same abstract operator the other
// polynomials use.  Unlike GLS it requires a single positive interval;
// its min-max (∞-norm) optimality makes it the natural cross-check for
// the GLS least-squares (w-norm) fit on Θ = (ε, 1).
#pragma once

#include <span>

#include "common/types.hpp"
#include "core/intervals.hpp"
#include "core/operator.hpp"

namespace pfem::core {

class ChebyshevPolynomial {
 public:
  /// @param interval spectrum bound [a, b] with 0 < a < b
  /// @param degree   m >= 0 (degree 0 is the optimal constant 2/(a+b))
  ChebyshevPolynomial(Interval interval, int degree);

  [[nodiscard]] int degree() const noexcept { return m_; }
  [[nodiscard]] const Interval& interval() const noexcept { return iv_; }

  /// z <- p_m(A) v  (m applications of A).
  void apply(const LinearOp& a, std::span<const real_t> v,
             std::span<real_t> z) const;

  /// Scalar p_m(λ).
  [[nodiscard]] real_t eval(real_t lambda) const;

  /// Residual 1 − λ p_m(λ) = T_{m+1}(t(λ))/T_{m+1}(t0).
  [[nodiscard]] real_t residual(real_t lambda) const;

  /// The min-max value on [a,b]: 1/T_{m+1}(t0) (all |residual| <= this).
  [[nodiscard]] real_t minimax_bound() const;

  /// Power-basis coefficients a_0..a_m (Eq. 23 / Fig. 3 input).
  [[nodiscard]] Vector power_coeffs() const;

  [[nodiscard]] real_t coeff_abs_sum() const;

 private:
  Interval iv_;
  int m_;
  real_t theta_;   // (a+b)/2
  real_t delta_;   // (b-a)/2
  real_t sigma1_;  // theta/delta
};

}  // namespace pfem::core
