// Sequential flexible GMRES with restart (Algorithm 1).
//
// Right-preconditioned flavour: the solution update uses the
// preconditioned vectors z_j = C v_j instead of the basis v_j, which is
// what allows the preconditioner to vary between iterations ("flexible").
// Classical Gram–Schmidt orthogonalization (as in the paper's
// Algorithms 5/6/8), Givens-rotation incremental least squares, restart
// at m̃, convergence on ‖r_i‖₂/‖r₀‖₂ ≤ tol (§6.1).
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "core/deflation.hpp"
#include "core/kernels.hpp"
#include "core/operator.hpp"
#include "core/precond.hpp"
#include "core/solve_report.hpp"
#include "obs/trace.hpp"

namespace pfem::core {

struct SolveOptions {
  index_t restart = 25;     ///< m̃, the Krylov subspace dimension (paper: 25)
  index_t max_iters = 10000;  ///< cap on total inner iterations
  real_t tol = 1e-6;        ///< relative residual target (paper: 1e-6)

  /// Run classical Gram-Schmidt twice (CGS2).  The paper uses plain CGS;
  /// CGS2 restores orthogonality at tight tolerances for ~2x the
  /// inner-product cost.  Off by default (paper-faithful).
  bool reorthogonalize = false;

  /// Batch the j+1 Gram-Schmidt coefficients of an iteration into one
  /// allreduce instead of the paper's one-reduction-per-coefficient
  /// (distributed solvers only).  Off by default (paper-faithful); the
  /// ablation bench quantifies what this modern optimization buys.
  bool batched_reductions = false;

  /// Subdomain-operator kernel selection for the distributed solvers:
  /// storage format (vectorized SELL-C-σ with fused scaling vs the
  /// scalar-CSR fallback) and interior/interface exchange overlap.  Both
  /// choices are bit-neutral — results are identical across settings.
  KernelOptions kernels;

  /// Two-level subdomain deflation around the polynomial preconditioner
  /// (distributed EDD solvers only; the sequential path ignores it).
  /// Off by default — enabling it adds one small allreduce and one
  /// mat-vec per preconditioner application and keeps iteration counts
  /// flat under weak scaling.  The warm batch path takes its deflation
  /// setup from build_edd_operator instead (state cached with the
  /// operator).
  DeflationOptions deflation;

  /// Observability: span tracing and per-iteration progress callbacks.
  /// One knob struct shared by every solver entry point and the solve
  /// service, replacing per-tool flag plumbing.
  obs::ObserveOptions observe;
};

/// Solve A x = b with initial guess x (overwritten by the solution).
[[nodiscard]] SolveResult fgmres(const LinearOp& a, std::span<const real_t> b,
                                 std::span<real_t> x, Preconditioner& precond,
                                 const SolveOptions& opts = {});

/// Convenience overload for CSR systems.
[[nodiscard]] SolveResult fgmres(const sparse::CsrMatrix& a,
                                 std::span<const real_t> b,
                                 std::span<real_t> x, Preconditioner& precond,
                                 const SolveOptions& opts = {});

}  // namespace pfem::core
