// Sequential flexible GMRES with restart (Algorithm 1).
//
// Right-preconditioned flavour: the solution update uses the
// preconditioned vectors z_j = C v_j instead of the basis v_j, which is
// what allows the preconditioner to vary between iterations ("flexible").
// Classical Gram–Schmidt orthogonalization (as in the paper's
// Algorithms 5/6/8), Givens-rotation incremental least squares, restart
// at m̃, convergence on ‖r_i‖₂/‖r₀‖₂ ≤ tol (§6.1).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "core/deflation.hpp"
#include "core/kernels.hpp"
#include "core/operator.hpp"
#include "core/precond.hpp"
#include "core/solve_report.hpp"
#include "obs/trace.hpp"

namespace pfem::core {

/// Per-RHS warm-start / subspace-recycling input.  Vectors are in the
/// PHYSICAL global format — exactly the shape solvers return in
/// DistSolve::x / BatchSolveResult::x — so a caller can feed one solve's
/// output straight into the next solve's RecycleIn.
struct RecycleIn {
  /// Warm-start guess x₀ (empty = start cold from zero).
  Vector x0;
  /// Recycled search directions: the residual is projected out of
  /// span(directions) before iterating (small dense normal-equations
  /// solve, replicated on every rank).  Typically previous solves'
  /// solution increments / Arnoldi-cycle updates.
  std::vector<Vector> directions;

  [[nodiscard]] bool empty() const noexcept {
    return x0.empty() && directions.empty();
  }
};

/// Krylov recycling across solves (solve sessions).  Off by default;
/// when off, every solver path is bit-identical to the pre-session code
/// (same exchange counts, same reductions — the Table-1 contract).
///
/// When enabled, a solve (a) starts from RecycleIn::x0 instead of zero,
/// (b) projects the initial residual onto RecycleIn::directions (one
/// extra fused exchange + one allreduce for the whole batch), (c)
/// measures convergence against ‖b̂‖ instead of ‖r₀‖ so warm and cold
/// solves chase the SAME absolute target (a cold start has r₀ = b̂, so
/// the reference is unchanged there), and (d) when `harvest` is set,
/// returns the restart-cycle solution increments in
/// BatchSolveResult::recycled for the caller to feed forward.
struct RecycleOptions {
  bool enabled = false;

  /// Cap on directions used per RHS (oldest dropped first) and on
  /// directions harvested per RHS (most recent cycles kept).
  index_t max_directions = 8;

  /// Per-RHS input state, index-aligned with the solve's RHS batch;
  /// null, or a missing/empty entry, means that RHS starts cold.
  /// Shared (read-only) so a service can hand session state to a fused
  /// batch without copying.  The sequential fgmres() path uses entry 0.
  std::shared_ptr<const std::vector<RecycleIn>> in;

  /// Harvest this solve's cycle updates into BatchSolveResult::recycled
  /// (physical global format, ready to become the next RecycleIn).
  bool harvest = false;
};

/// The ONE canonical solver-option shape, used identically by the
/// library API (fgmres / solve_edd / solve_edd_batch), the solve
/// service (svc::SolveRequest::opts), and the wire protocol
/// (net::proto::SolveRequestMsg carries the convergence + session
/// fields; kernel/deflation/observe stay server-side policy):
///
///   convergence   restart, max_iters, tol, reorthogonalize,
///                 batched_reductions   — must match for requests to
///                 coalesce into one fused service batch;
///   kernels       KernelOptions        — bit-neutral storage/overlap;
///   deflation     DeflationOptions     — two-level coarse correction;
///   observe       obs::ObserveOptions  — tracing + progress callbacks;
///   recycle       RecycleOptions       — sessions: warm starts and
///                 subspace recycling (in/out hooks).
struct SolveOptions {
  index_t restart = 25;     ///< m̃, the Krylov subspace dimension (paper: 25)
  index_t max_iters = 10000;  ///< cap on total inner iterations
  real_t tol = 1e-6;        ///< relative residual target (paper: 1e-6)

  /// Run classical Gram-Schmidt twice (CGS2).  The paper uses plain CGS;
  /// CGS2 restores orthogonality at tight tolerances for ~2x the
  /// inner-product cost.  Off by default (paper-faithful).
  bool reorthogonalize = false;

  /// Batch the j+1 Gram-Schmidt coefficients of an iteration into one
  /// allreduce instead of the paper's one-reduction-per-coefficient
  /// (distributed solvers only).  Off by default (paper-faithful); the
  /// ablation bench quantifies what this modern optimization buys.
  bool batched_reductions = false;

  /// Subdomain-operator kernel selection for the distributed solvers:
  /// storage format (vectorized SELL-C-σ with fused scaling vs the
  /// scalar-CSR fallback) and interior/interface exchange overlap.  Both
  /// choices are bit-neutral — results are identical across settings.
  KernelOptions kernels;

  /// Two-level subdomain deflation around the polynomial preconditioner
  /// (distributed EDD solvers only; the sequential path ignores it).
  /// Off by default — enabling it adds one small allreduce and one
  /// mat-vec per preconditioner application and keeps iteration counts
  /// flat under weak scaling.  The warm batch path takes its deflation
  /// setup from build_edd_operator instead (state cached with the
  /// operator).
  DeflationOptions deflation;

  /// Observability: span tracing and per-iteration progress callbacks.
  /// One knob struct shared by every solver entry point and the solve
  /// service, replacing per-tool flag plumbing.
  obs::ObserveOptions observe;

  /// Solve sessions: warm-start x₀ and recycled-subspace in/out hooks.
  /// Off by default (every path bit-identical to stateless solves).
  RecycleOptions recycle;
};

/// Solve A x = b with initial guess x (overwritten by the solution).
[[nodiscard]] SolveReport fgmres(const LinearOp& a, std::span<const real_t> b,
                                 std::span<real_t> x, Preconditioner& precond,
                                 const SolveOptions& opts = {});

/// Convenience overload for CSR systems.
[[nodiscard]] SolveReport fgmres(const sparse::CsrMatrix& a,
                                 std::span<const real_t> b,
                                 std::span<real_t> x, Preconditioner& precond,
                                 const SolveOptions& opts = {});

}  // namespace pfem::core
