// Preconditioned conjugate gradients — sequential and EDD-distributed.
//
// The paper's framework (EDD data formats + polynomial preconditioning)
// is solver-agnostic for SPD systems; CG is the natural companion to
// FGMRES there (the paper positions GMRES as the general tool because
// FETI-class solvers are "mainly restricted to symmetric systems").
// The polynomial preconditioners are SPD on the scaled system
// (λP_m(λ) ∈ (0,2) on Θ ⊇ σ(A) ⟹ P_m(A) ≻ 0), so PCG is well posed.
//
// Per CG iteration the EDD variant needs m+1 nearest-neighbor exchanges
// (m inside the polynomial, 1 to globalize the updated residual) and
// 3 global reductions (ρ, pᵀAp, ‖r‖).
#pragma once

#include <span>

#include "core/edd_solver.hpp"
#include "core/fgmres.hpp"
#include "core/operator.hpp"
#include "core/precond.hpp"

namespace pfem::core {

/// Sequential PCG on A x = b (A SPD, C SPD).  The SolveOptions restart
/// field is ignored (CG does not restart).
[[nodiscard]] SolveReport pcg(const LinearOp& a, std::span<const real_t> b,
                              std::span<real_t> x, Preconditioner& precond,
                              const SolveOptions& opts = {});

[[nodiscard]] SolveReport pcg(const sparse::CsrMatrix& a,
                              std::span<const real_t> b, std::span<real_t> x,
                              Preconditioner& precond,
                              const SolveOptions& opts = {});

/// EDD-distributed PCG with polynomial preconditioning, on the same
/// partition structures and with the same norm-1 scaling as solve_edd().
[[nodiscard]] DistSolve solve_edd_cg(
    const partition::EddPartition& part, std::span<const real_t> f_global,
    const PolySpec& poly, const SolveOptions& opts = {},
    const std::vector<sparse::CsrMatrix>* local_matrices = nullptr);

}  // namespace pfem::core
