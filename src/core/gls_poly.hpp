// Generalized least-squares (GLS) polynomial preconditioner (§2.1.3).
//
// Given a spectrum estimate Θ = ∪(l_k, h_k), 0 ∉ Θ, construct
//   P_m = argmin_{p ∈ P_m[Θ]} ‖1 − λ p(λ)‖_w
// with w the per-interval Chebyshev weight, via the orthogonal sequence
// {λφ_i} built by the Stieltjes procedure (see orthopoly.hpp):
//   P_m(λ) = Σ_{i=0}^m μ_i φ_i(λ),   μ_i = ⟨1, λφ_i⟩_w    (Eqs. 20–21)
// Application P_m(A)v runs the φ recursion in vector space: m mat-vecs,
// no factorization, no assembled matrix — the property that makes this
// the preconditioner of choice for the EDD solver.
#pragma once

#include <span>

#include "common/types.hpp"
#include "core/intervals.hpp"
#include "core/operator.hpp"
#include "core/orthopoly.hpp"

namespace pfem::core {

class GlsPolynomial {
 public:
  /// @param theta   spectrum estimate (validated per Eq. 18)
  /// @param degree  m >= 0
  /// @param points_per_interval quadrature resolution; default scales
  ///        with the degree so all inner products are exact.
  GlsPolynomial(Theta theta, int degree, int points_per_interval = 0);

  [[nodiscard]] int degree() const noexcept { return m_; }
  [[nodiscard]] const Theta& theta() const noexcept { return theta_; }

  /// z <- P_m(A) v  (m applications of A through the recursion).
  void apply(const LinearOp& a, std::span<const real_t> v,
             std::span<real_t> z) const;

  /// Scalar P_m(λ) (Fig. 2 residual plots).
  [[nodiscard]] real_t eval(real_t lambda) const;

  /// Residual polynomial 1 − λ P_m(λ).
  [[nodiscard]] real_t residual(real_t lambda) const;

  /// max |1 − λP_m(λ)| sampled over Θ (convergence-quality metric).
  [[nodiscard]] real_t residual_sup_on_theta(int samples_per_interval = 512)
      const;

  /// Power-basis coefficients a_0..a_m of P_m (Eq. 23, Fig. 3 input).
  [[nodiscard]] Vector power_coeffs() const;

  /// Σ|a_i| over the power basis.
  [[nodiscard]] real_t coeff_abs_sum() const;

  /// Recursion data, exposed so distributed solvers can run the φ
  /// recursion on their own vector formats (Basic-variant EDD keeps the
  /// iterates in both local and global distributed form).
  [[nodiscard]] const OrthoBasis& basis() const noexcept { return basis_; }
  [[nodiscard]] std::span<const real_t> mu() const noexcept { return mu_; }

 private:
  Theta theta_;
  int m_;
  OrthoBasis basis_;   // orthonormal under λ²w
  Vector mu_;          // μ_0..μ_m

  [[nodiscard]] static OrthoBasis build_basis(const Theta& theta, int degree,
                                              int points_per_interval,
                                              QuadratureRule& w_rule_out);
};

}  // namespace pfem::core
