// Warm-path EDD solves: explicit setup/apply split and multi-RHS
// batching on a persistent rank team.
//
// solve_edd() pays the full setup on every call — a fresh thread team,
// the Algorithms-3/4 norm-1 scaling, and the redundant polynomial build —
// which is exactly the amortizable state for workloads that stream many
// solves against a slowly-changing operator (time stepping, a solve
// service).  This module splits the pipeline:
//
//   par::Team team(P);                                   // threads parked
//   EddOperatorState op = build_edd_operator(team, part, spec);  // once
//   BatchSolveResult r = solve_edd_batch(team, part, op, rhs_batch);
//
// The batch solve runs a loop-fused enhanced EDD-FGMRES (Algorithm 6)
// over all right-hand sides at once: each Arnoldi step still performs m
// polynomial-recursion exchanges plus 1 basis exchange *in total* — each
// fused message carries every RHS's shared-dof section — and the
// Gram-Schmidt coefficients and norms of the whole batch fold into one
// allreduce each.  Against B independent solves this divides the
// per-step message and reduction count (the alpha term of the cost
// model) by B, while the mat-vec flops stay the same.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/chebyshev.hpp"
#include "core/deflation.hpp"
#include "core/edd_solver.hpp"
#include "core/kernels.hpp"
#include "core/gls_poly.hpp"
#include "par/comm.hpp"

namespace pfem::core {

/// Prebuilt per-operator state: everything solve_edd recomputes per call
/// that only depends on (matrix, PolySpec).  Build once, solve many.
struct EddOperatorState {
  PolySpec poly;                   ///< the spec the preconditioner was built for
  std::vector<sparse::CsrMatrix> a;  ///< per-rank Â = D̂ K̂ D̂ (Eq. 44)
  std::vector<Vector> d;             ///< per-rank scaling 1/sqrt(d_i) (Eq. 43)
  KernelOptions kernels;             ///< format/overlap the kernels were built for
  /// Per-rank apply kernels (SELL-C-σ blocks or scalar CSR, interior/
  /// interface split per `kernels`).  A state without them (hand-built)
  /// falls back to a scalar-CSR view of `a` at solve time.
  std::vector<RankKernel> kern;
  /// Prebuilt polynomial recursion data (shared read-only by all ranks;
  /// null for kinds that need none).
  std::shared_ptr<const GlsPolynomial> gls;
  std::shared_ptr<const ChebyshevPolynomial> cheb;
  /// Deflation knobs the operator was built with, and the replicated
  /// factorized coarse operator E = ZᵀÂZ (null when deflation is off).
  /// Cached alongside the operator — a service cache hit reuses the
  /// coarse factorization together with the scaling and kernels.  The
  /// batch solve takes its deflation setup from HERE, not from
  /// SolveOptions (the correction is operator state, like the
  /// polynomial).
  DeflationOptions deflation;
  std::shared_ptr<const CoarseOperator> coarse;
  std::vector<par::PerfCounters> setup_counters;  ///< scaling exchange/flops
  double setup_seconds = 0.0;  ///< wall time of the whole build
};

/// Run the distributed norm-1 scaling and the polynomial build once on a
/// warm team.  @param local_matrices optional override of
/// part.subs[s].k_loc (same dof layout), e.g. a dynamic effective
/// stiffness — passing an updated set is how time stepping refreshes the
/// operator without repartitioning.
/// @param trace optional span trace (lanes == team size) for the build,
///        e.g. the solve service's long-lived trace.
/// @param deflation when enabled, additionally assembles and factorizes
///        the deflation coarse operator (one allreduce of the dense E
///        buffer on the team) so every later batch solve applies the
///        two-level correction with no extra setup.
[[nodiscard]] EddOperatorState build_edd_operator(
    par::Team& team, const partition::EddPartition& part,
    const PolySpec& spec,
    const std::vector<sparse::CsrMatrix>* local_matrices = nullptr,
    obs::Trace* trace = nullptr, const KernelOptions& kernels = {},
    const DeflationOptions& deflation = {});

/// Per-RHS outcome of a batch solve — the same unified report shape as
/// every other solver path (with per-iteration residual history, written
/// by rank 0).
using BatchItemResult = SolveReport;

struct BatchSolveResult {
  std::vector<Vector> x;  ///< per-RHS global solutions (scaling undone)
  std::vector<BatchItemResult> items;
  /// Per-RHS harvested recycle directions (physical global format,
  /// oldest → newest, at most opts.recycle.max_directions each): the
  /// restart-cycle solution increments Δx of this solve, ready to be fed
  /// into the next solve's RecycleIn::directions.  Empty unless
  /// opts.recycle.enabled && opts.recycle.harvest.
  std::vector<std::vector<Vector>> recycled;
  std::vector<par::PerfCounters> rank_counters;
  double wall_seconds = 0.0;
  /// Per-call trace when opts.observe.trace requested one (and no
  /// external trace was supplied); null otherwise.
  std::shared_ptr<const obs::Trace> trace;
  /// Non-empty when the batch died on a typed communication failure
  /// (channel timeout / injected crash): x is empty and every item
  /// carries the error plus whatever history it accumulated.  The
  /// service's retry policy keys off this field.
  std::string comm_error;

  [[nodiscard]] bool comm_failed() const noexcept {
    return !comm_error.empty();
  }
};

/// Solve K u = f_b for every RHS in `rhs` (each a full global vector) in
/// one loop-fused enhanced EDD-FGMRES sweep on the prebuilt operator.
/// Each RHS converges (or hits max_iters) independently; finished systems
/// drop out of the fused exchanges.  Team size must equal part.nparts().
///
/// Observability: opts.observe.progress is called per iteration per live
/// RHS with that RHS's batch index.  When `trace` is non-null the ranks
/// record spans into it (a service passes its own long-lived trace);
/// otherwise, when opts.observe.trace is set, a per-call trace is
/// created and returned in BatchSolveResult::trace.
[[nodiscard]] BatchSolveResult solve_edd_batch(
    par::Team& team, const partition::EddPartition& part,
    const EddOperatorState& op, std::span<const Vector> rhs,
    const SolveOptions& opts = {}, obs::Trace* trace = nullptr);

}  // namespace pfem::core
