// BiCGSTAB — the short-recurrence companion to GMRES for unsymmetric
// systems (the problem class the paper motivates GMRES with, §1).
// Right-preconditioned, so the same polynomial preconditioners plug in
// unchanged; the EDD variant keeps every vector in the global
// distributed format (weighted inner products, one exchange per
// mat-vec) — no recursive local-format residual to drift.
#pragma once

#include <span>

#include "core/edd_solver.hpp"
#include "core/fgmres.hpp"
#include "core/operator.hpp"
#include "core/precond.hpp"

namespace pfem::core {

/// Sequential right-preconditioned BiCGSTAB.  SolveOptions::restart is
/// ignored (short recurrence).  `iterations` counts full BiCGSTAB steps
/// (two mat-vecs and two preconditioner applications each).
[[nodiscard]] SolveReport bicgstab(const LinearOp& a,
                                   std::span<const real_t> b,
                                   std::span<real_t> x,
                                   Preconditioner& precond,
                                   const SolveOptions& opts = {});

[[nodiscard]] SolveReport bicgstab(const sparse::CsrMatrix& a,
                                   std::span<const real_t> b,
                                   std::span<real_t> x,
                                   Preconditioner& precond,
                                   const SolveOptions& opts = {});

/// EDD-distributed BiCGSTAB with polynomial preconditioning, on the same
/// partition structures and norm-1 scaling as solve_edd().
[[nodiscard]] DistSolve solve_edd_bicgstab(
    const partition::EddPartition& part, std::span<const real_t> f_global,
    const PolySpec& poly, const SolveOptions& opts = {},
    const std::vector<sparse::CsrMatrix>* local_matrices = nullptr);

}  // namespace pfem::core
