// The unified solver report (api_redesign of ISSUE 3).
//
// Before this header, the repo had four divergent result shapes:
// sequential `SolveReport`, distributed `DistSolve`, the batch
// path's per-RHS `BatchItemResult`, and whatever svc::Completed carried.
// Every consumer (benches, the convergence tables, the service) had to
// know which one it was holding.  Now there is one `SolveReport` with
// the convergence story every solve can tell — including the
// per-iteration residual history the sequential path always recorded —
// and one solution-carrying extension `DistSolve` for distributed
// solves.  The old names remain as aliases so existing call sites
// compile unchanged.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/trace.hpp"
#include "par/counters.hpp"

namespace pfem::core {

/// What every solve reports: convergence verdict, iteration counts, and
/// the per-iteration relative-residual history.
struct SolveReport {
  /// True only when the final TRUE relative residual met the tolerance.
  /// An Arnoldi breakdown no longer masquerades as convergence: a solve
  /// that broke down short of the tolerance reports converged = false
  /// with breakdown = true.
  bool converged = false;
  /// The Arnoldi recursion hit a (near-)zero next basis vector and the
  /// solve stopped early.  For a consistent system this means the exact
  /// solution was found in the Krylov space (converged will also be
  /// true); for a rank-deficient operator it is a genuine failure and
  /// converged stays false.
  bool breakdown = false;
  /// ‖b‖ = 0: x = 0 is exact and final_relres is reported as 0 by
  /// convention.  Stamped so svc/loadgen statistics can keep trivial
  /// solves out of iteration/latency percentiles.
  bool trivial_rhs = false;
  index_t iterations = 0;     ///< total inner (Arnoldi) iterations
  index_t restarts = 0;       ///< cycles that RE-started (0 if one cycle)
  real_t final_relres = 0.0;  ///< ‖r‖/‖r₀‖ at exit
  std::vector<real_t> history;  ///< rel. residual after each inner iteration
  /// Non-empty when the distributed run died on a typed communication
  /// failure (channel timeout or injected crash): the par::CommError
  /// message.  converged is false, history holds the iterations that
  /// completed before the failure, and any solution fields are empty —
  /// a typed partial report, never corrupt results.
  std::string comm_error;

  [[nodiscard]] bool comm_failed() const noexcept {
    return !comm_error.empty();
  }
};

/// A distributed solve's report: the convergence story plus the global
/// solution and the per-rank cost evidence.
struct DistSolve : SolveReport {
  Vector x;  ///< global solution u (scaling undone)
  std::vector<par::PerfCounters> rank_counters;  ///< full run
  /// Setup-phase slice of the counters: rhs localization, norm-1 scaling
  /// (Algorithms 3/4) *and* polynomial preconditioner construction —
  /// everything a warm-cache solve skips.  total_seconds here is the
  /// setup wall time of the rank, so cache-hit savings are measurable
  /// from counters alone.
  std::vector<par::PerfCounters> setup_counters;
  double wall_seconds = 0.0;
  /// Harvested recycle directions (physical global format, oldest →
  /// newest) when opts.recycle.enabled && opts.recycle.harvest: the
  /// restart-cycle solution increments, ready to feed the next solve's
  /// RecycleIn::directions.  Empty otherwise.
  std::vector<Vector> recycled;
  /// Span trace of the run when ObserveOptions::trace was set (one lane
  /// per rank); null otherwise.  Shared so reports stay copyable.
  std::shared_ptr<const obs::Trace> trace;
};

}  // namespace pfem::core
