#include "core/orthopoly.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace pfem::core {

QuadratureRule chebyshev_rule(const Theta& theta, int points_per_interval) {
  validate_theta(theta);
  PFEM_CHECK(points_per_interval >= 1);
  QuadratureRule rule;
  const auto k = static_cast<std::size_t>(points_per_interval);
  rule.nodes.reserve(theta.size() * k);
  rule.weights.reserve(theta.size() * k);
  for (const Interval& iv : theta) {
    const real_t c = 0.5 * (iv.lo + iv.hi);
    const real_t r = 0.5 * (iv.hi - iv.lo);
    const real_t w = std::numbers::pi_v<real_t> /
                     static_cast<real_t>(points_per_interval);
    for (int j = 0; j < points_per_interval; ++j) {
      const real_t t = (static_cast<real_t>(j) + 0.5) * w;
      rule.nodes.push_back(c + r * std::cos(t));
      rule.weights.push_back(w);
    }
  }
  return rule;
}

OrthoBasis::OrthoBasis(const QuadratureRule& rule, int max_degree)
    : m_(max_degree), nodes_(rule.nodes) {
  PFEM_CHECK(max_degree >= 0);
  PFEM_CHECK(rule.nodes.size() == rule.weights.size());
  PFEM_CHECK_MSG(rule.nodes.size() > static_cast<std::size_t>(max_degree),
                 "need more quadrature nodes than the polynomial degree");
  const std::size_t nq = nodes_.size();
  const Vector& w = rule.weights;

  auto inner = [&](const Vector& f, const Vector& g) {
    real_t s = 0.0;
    for (std::size_t j = 0; j < nq; ++j) s += w[j] * f[j] * g[j];
    return s;
  };

  alpha_.assign(static_cast<std::size_t>(m_), 0.0);
  sqrt_beta_.assign(static_cast<std::size_t>(m_) + 1, 0.0);
  phi_.assign(static_cast<std::size_t>(m_) + 1, Vector(nq, 0.0));

  // phi_0 = 1 / ||1||.
  Vector ones(nq, 1.0);
  const real_t norm0 = std::sqrt(inner(ones, ones));
  PFEM_CHECK_MSG(norm0 > 0.0, "measure has zero mass");
  sqrt_beta_[0] = norm0;
  for (std::size_t j = 0; j < nq; ++j) phi_[0][j] = 1.0 / norm0;

  Vector t(nq);
  for (int i = 0; i < m_; ++i) {
    const Vector& cur = phi_[static_cast<std::size_t>(i)];
    // alpha_i = <x phi_i, phi_i>.
    real_t a = 0.0;
    for (std::size_t j = 0; j < nq; ++j)
      a += w[j] * nodes_[j] * cur[j] * cur[j];
    alpha_[static_cast<std::size_t>(i)] = a;

    for (std::size_t j = 0; j < nq; ++j) {
      t[j] = (nodes_[j] - a) * cur[j];
      if (i > 0)
        t[j] -= sqrt_beta_[static_cast<std::size_t>(i)] *
                phi_[static_cast<std::size_t>(i) - 1][j];
    }
    const real_t nb = std::sqrt(inner(t, t));
    PFEM_CHECK_MSG(nb > 1e-300,
                   "Stieltjes breakdown at degree "
                       << i + 1 << " (measure supports fewer polynomials)");
    sqrt_beta_[static_cast<std::size_t>(i) + 1] = nb;
    for (std::size_t j = 0; j < nq; ++j)
      phi_[static_cast<std::size_t>(i) + 1][j] = t[j] / nb;
  }
}

real_t OrthoBasis::alpha(int i) const {
  PFEM_CHECK(i >= 0 && i < m_);
  return alpha_[static_cast<std::size_t>(i)];
}

real_t OrthoBasis::sqrt_beta(int i) const {
  PFEM_CHECK(i >= 0 && i <= m_);
  return sqrt_beta_[static_cast<std::size_t>(i)];
}

Vector OrthoBasis::eval_all(real_t x) const {
  Vector v(static_cast<std::size_t>(m_) + 1, 0.0);
  v[0] = 1.0 / sqrt_beta_[0];
  for (int i = 0; i < m_; ++i) {
    real_t t = (x - alpha_[static_cast<std::size_t>(i)]) *
               v[static_cast<std::size_t>(i)];
    if (i > 0)
      t -= sqrt_beta_[static_cast<std::size_t>(i)] *
           v[static_cast<std::size_t>(i) - 1];
    v[static_cast<std::size_t>(i) + 1] =
        t / sqrt_beta_[static_cast<std::size_t>(i) + 1];
  }
  return v;
}

std::span<const real_t> OrthoBasis::node_values(int i) const {
  PFEM_CHECK(i >= 0 && i <= m_);
  return phi_[static_cast<std::size_t>(i)];
}

}  // namespace pfem::core
