#include "core/cg.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/edd_kernels.hpp"
#include "la/vector_ops.hpp"

namespace pfem::core {

SolveReport pcg(const LinearOp& a, std::span<const real_t> b,
                std::span<real_t> x, Preconditioner& precond,
                const SolveOptions& opts) {
  const std::size_t n = b.size();
  PFEM_CHECK(x.size() == n);
  PFEM_CHECK(a.size() == as_index(n));
  PFEM_CHECK(opts.max_iters >= 1 && opts.tol > 0.0);

  SolveReport result;
  // ‖b‖ = 0: x = 0 solves exactly and any relative residual is 0/0 —
  // return it in 0 iterations instead of iterating on NaNs.
  if (la::nrm2(b) == 0.0) {
    la::fill(x, 0.0);
    result.converged = true;
    return result;
  }

  Vector r(n), z(n), p(n), ap(n);
  a.apply(x, r);
  la::sub(b, r, r);
  const real_t beta0 = la::nrm2(r);
  if (beta0 == 0.0) {
    result.converged = true;
    return result;
  }

  precond.apply(r, z);
  la::copy(z, p);
  real_t rho = la::dot(r, z);

  while (result.iterations < opts.max_iters) {
    a.apply(p, ap);
    const real_t pap = la::dot(p, ap);
    PFEM_CHECK_MSG(pap > 0.0, "PCG: operator not positive definite "
                              "(p^T A p <= 0)");
    const real_t alpha = rho / pap;
    la::axpy(alpha, p, x);
    la::axpy(-alpha, ap, r);
    ++result.iterations;

    const real_t relres = la::nrm2(r) / beta0;
    result.history.push_back(relres);
    if (relres <= opts.tol) {
      result.converged = true;
      break;
    }

    precond.apply(r, z);
    const real_t rho_new = la::dot(r, z);
    if (rho == 0.0) break;  // <r,z> underflowed to zero: stagnated search
    const real_t beta = rho_new / rho;
    rho = rho_new;
    la::axpby(1.0, z, beta, p);  // p = z + beta p
  }
  Vector check(n);
  a.apply(x, check);
  la::sub(b, check, check);
  result.final_relres = la::nrm2(check) / beta0;
  if (result.final_relres <= opts.tol) result.converged = true;
  return result;
}

SolveReport pcg(const sparse::CsrMatrix& a, std::span<const real_t> b,
                std::span<real_t> x, Preconditioner& precond,
                const SolveOptions& opts) {
  return pcg(LinearOp::from_csr(a), b, x, precond, opts);
}

namespace {

using detail::DistPoly;
using detail::EddRank;
using detail::sqrt_nonneg;
using partition::EddPartition;
using partition::EddSubdomain;
using sparse::CsrMatrix;

struct SharedOut {
  std::vector<Vector> solutions;
  bool converged = false;
  index_t iterations = 0;
  real_t final_relres = 0.0;
  std::vector<real_t> history;
  std::vector<par::PerfCounters> setup_counters;
};

void edd_cg_rank_solve(const EddPartition& part, const CsrMatrix& k_in,
                       const sparse::EbeStore* elems,
                       std::span<const real_t> f_global, const PolySpec& spec,
                       const SolveOptions& opts, par::Comm& comm,
                       SharedOut& out) {
  const int s = comm.rank();
  const EddSubdomain& sub = part.subs[static_cast<std::size_t>(s)];
  EddRank r(sub, comm);
  const std::size_t nl = r.nl();

  // ---- Setup: identical to the FGMRES path (Algorithms 3/4).
  Vector f_loc(nl);
  for (std::size_t l = 0; l < nl; ++l)
    f_loc[l] =
        f_global[static_cast<std::size_t>(sub.local_to_global[l])] /
        static_cast<real_t>(sub.multiplicity[l]);
  Vector d = k_in.row_norms1();
  r.counters().flops += static_cast<std::uint64_t>(k_in.nnz());
  r.exchange(d);
  for (std::size_t l = 0; l < nl; ++l) {
    PFEM_CHECK_MSG(d[l] > 0.0, "norm-1 scaling: zero row");
    d[l] = 1.0 / std::sqrt(d[l]);
  }
  const RankKernel a(k_in, Vector(d), sub.interface_local_dofs, opts.kernels,
                     elems);
  r.counters().flops += 2ull * static_cast<std::uint64_t>(k_in.nnz());
  Vector b_loc(nl);
  for (std::size_t l = 0; l < nl; ++l) b_loc[l] = d[l] * f_loc[l];

  DistPoly poly(spec, nl, &r.counters());
  out.setup_counters[static_cast<std::size_t>(s)] = comm.counters();

  // ---- PCG.  x, p, z in global format; residual kept in both formats.
  Vector x(nl, 0.0), r_loc(nl), r_glob(nl), z(nl), p(nl), ap_loc(nl);
  la::copy(b_loc, r_loc);  // r = b - A*0
  la::copy(r_loc, r_glob);
  r.exchange(r_glob);
  const real_t beta0 = sqrt_nonneg(r.dot_lg(r_loc, r_glob));

  bool converged = false;
  index_t iterations = 0;
  real_t relres = 1.0;
  std::vector<real_t> history;

  if (beta0 == 0.0) {
    converged = true;
    relres = 0.0;
  } else {
    poly.apply_global(r, a, r_glob, z);  // z = P(A) r  (m exchanges)
    la::copy(z, p);
    real_t rho = r.dot_lg(r_loc, z);

    while (iterations < opts.max_iters) {
      r.spmv(a, p, ap_loc);  // Ap in local format; p is global
      const real_t pap = r.dot_lg(ap_loc, p);
      PFEM_CHECK_MSG(pap > 0.0, "EDD-PCG: p^T A p <= 0");
      const real_t alpha = rho / pap;
      la::axpy(alpha, p, x);
      // Update the residual in both formats: Ap_loc is local,
      // r_glob needs one exchange of the updated r_loc.
      la::axpy(-alpha, ap_loc, r_loc);
      la::copy(r_loc, r_glob);
      r.exchange(r_glob);  // the (+1) exchange of the iteration
      r.counters().flops += 4 * nl;
      r.counters().vector_updates += 2;
      ++iterations;

      relres = sqrt_nonneg(r.dot_lg(r_loc, r_glob)) / beta0;
      history.push_back(relres);
      if (relres <= opts.tol) {
        converged = true;
        break;
      }

      poly.apply_global(r, a, r_glob, z);  // m exchanges
      const real_t rho_new = r.dot_lg(r_loc, z);
      if (rho == 0.0) break;  // underflowed inner product: stagnated
      const real_t beta = rho_new / rho;
      rho = rho_new;
      la::axpby(1.0, z, beta, p);
      r.counters().flops += 2 * nl;
      r.counters().vector_updates += 1;
    }
  }

  // ---- Final residual and unscaled solution.
  Vector check_loc(nl);
  r.spmv(a, x, check_loc);
  for (std::size_t l = 0; l < nl; ++l) check_loc[l] = b_loc[l] - check_loc[l];
  Vector check_glob(check_loc);
  r.exchange(check_glob);
  const real_t final_res = sqrt_nonneg(r.dot_lg(check_loc, check_glob));
  const real_t final_relres = beta0 > 0.0 ? final_res / beta0 : 0.0;

  Vector u(nl);
  for (std::size_t l = 0; l < nl; ++l) u[l] = d[l] * x[l];
  out.solutions[static_cast<std::size_t>(s)] = std::move(u);

  if (s == 0) {
    out.converged = converged || final_relres <= opts.tol;
    out.iterations = iterations;
    out.final_relres = final_relres;
    out.history = std::move(history);
  }
}

}  // namespace

DistSolve solve_edd_cg(const EddPartition& part,
                             std::span<const real_t> f_global,
                             const PolySpec& spec, const SolveOptions& opts,
                             const std::vector<sparse::CsrMatrix>* local_matrices) {
  PFEM_CHECK(f_global.size() == static_cast<std::size_t>(part.n_global));
  PFEM_CHECK_MSG(opts.max_iters >= 1 && opts.tol > 0.0,
                 "solve_edd_cg: max_iters must be >= 1 and tol > 0");
  validate_poly_spec(spec);
  if (local_matrices != nullptr)
    PFEM_CHECK(local_matrices->size() == part.subs.size());
  // Matrix override + matrix-free kernel: the element store would be
  // stale — same guard as solve_edd.
  PFEM_CHECK_MSG(!(opts.kernels.format == KernelOptions::Format::Ebe &&
                   local_matrices != nullptr),
                 "Format::Ebe cannot be combined with a local-matrix "
                 "override: the partition's element store holds the "
                 "originally assembled operator, not the override");
  const int p = part.nparts();

  SharedOut out;
  out.solutions.resize(static_cast<std::size_t>(p));
  out.setup_counters.resize(static_cast<std::size_t>(p));

  WallTimer timer;
  std::vector<par::PerfCounters> counters =
      par::run_spmd(p, [&](par::Comm& comm) {
        const auto s = static_cast<std::size_t>(comm.rank());
        const sparse::CsrMatrix& k =
            local_matrices ? (*local_matrices)[s] : part.subs[s].k_loc;
        const sparse::EbeStore* const elems =
            local_matrices ? nullptr : part.subs[s].elem_store.get();
        edd_cg_rank_solve(part, k, elems, f_global, spec, opts, comm, out);
      });

  DistSolve result;
  result.wall_seconds = timer.seconds();
  result.x = partition::edd_gather_global(part, out.solutions);
  result.converged = out.converged;
  result.iterations = out.iterations;
  result.final_relres = out.final_relres;
  result.history = std::move(out.history);
  result.rank_counters = std::move(counters);
  result.setup_counters = std::move(out.setup_counters);
  return result;
}

}  // namespace pfem::core
