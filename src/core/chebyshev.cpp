#include "core/chebyshev.hpp"

#include <cmath>

#include "common/error.hpp"
#include "la/vector_ops.hpp"

namespace pfem::core {

ChebyshevPolynomial::ChebyshevPolynomial(Interval interval, int degree)
    : iv_(interval), m_(degree) {
  PFEM_CHECK_MSG(interval.lo > 0.0 && interval.lo < interval.hi,
                 "Chebyshev preconditioner needs 0 < a < b");
  PFEM_CHECK(degree >= 0);
  theta_ = 0.5 * (interval.lo + interval.hi);
  delta_ = 0.5 * (interval.hi - interval.lo);
  sigma1_ = theta_ / delta_;
}

void ChebyshevPolynomial::apply(const LinearOp& a, std::span<const real_t> v,
                                std::span<real_t> z) const {
  const std::size_t n = v.size();
  PFEM_CHECK(z.size() == n);
  // Chebyshev semi-iteration on A z = v from z = 0 (Saad Alg. 12.1):
  // after m+1 updates z = p_m(A) v with m mat-vecs.
  Vector r(v.begin(), v.end());  // r_0 = v
  Vector d(n), ad(n);
  real_t rho = 1.0 / sigma1_;
  for (std::size_t i = 0; i < n; ++i) {
    d[i] = r[i] / theta_;
    z[i] = d[i];
  }
  for (int k = 1; k <= m_; ++k) {
    a.apply(d, ad);
    for (std::size_t i = 0; i < n; ++i) r[i] -= ad[i];
    const real_t rho_next = 1.0 / (2.0 * sigma1_ - rho);
    const real_t c1 = rho_next * rho;
    const real_t c2 = 2.0 * rho_next / delta_;
    for (std::size_t i = 0; i < n; ++i) {
      d[i] = c1 * d[i] + c2 * r[i];
      z[i] += d[i];
    }
    rho = rho_next;
  }
}

real_t ChebyshevPolynomial::eval(real_t lambda) const {
  // Mirror the vector recurrence on scalars (A -> lambda, v -> 1); avoids
  // the 0/0 of (1 - residual)/lambda at lambda = 0.
  real_t r = 1.0, d = 1.0 / theta_, z = d;
  real_t rho = 1.0 / sigma1_;
  for (int k = 1; k <= m_; ++k) {
    r -= lambda * d;
    const real_t rho_next = 1.0 / (2.0 * sigma1_ - rho);
    d = rho_next * rho * d + (2.0 * rho_next / delta_) * r;
    z += d;
    rho = rho_next;
  }
  return z;
}

real_t ChebyshevPolynomial::residual(real_t lambda) const {
  return 1.0 - lambda * eval(lambda);
}

real_t ChebyshevPolynomial::minimax_bound() const {
  // 1 / T_{m+1}(t0), t0 = theta/delta > 1, via the stable cosh form.
  const real_t t0 = sigma1_;
  const real_t acosh_t0 = std::log(t0 + std::sqrt(t0 * t0 - 1.0));
  return 1.0 / std::cosh(static_cast<real_t>(m_ + 1) * acosh_t0);
}

Vector ChebyshevPolynomial::power_coeffs() const {
  // Run the scalar recurrence on power-basis coefficient vectors.
  const std::size_t sz = static_cast<std::size_t>(m_) + 1;
  Vector r(sz + 1, 0.0), d(sz, 0.0), z(sz, 0.0);
  r[0] = 1.0;
  d[0] = 1.0 / theta_;
  z[0] = d[0];
  real_t rho = 1.0 / sigma1_;
  for (int k = 1; k <= m_; ++k) {
    // r -= lambda * d  (shift d by one power).
    for (std::size_t i = 0; i + 1 < sz + 1 && i < sz; ++i)
      r[i + 1] -= d[i];
    const real_t rho_next = 1.0 / (2.0 * sigma1_ - rho);
    const real_t c1 = rho_next * rho;
    const real_t c2 = 2.0 * rho_next / delta_;
    for (std::size_t i = 0; i < sz; ++i) {
      d[i] = c1 * d[i] + c2 * r[i];
      z[i] += d[i];
    }
    rho = rho_next;
  }
  return z;
}

real_t ChebyshevPolynomial::coeff_abs_sum() const {
  real_t s = 0.0;
  for (real_t c : power_coeffs()) s += std::abs(c);
  return s;
}

}  // namespace pfem::core
