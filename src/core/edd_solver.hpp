// Parallel element-based domain decomposition FGMRES — the paper's core
// contribution (§3, Algorithms 5 and 6, with the distributed norm-1
// scaling of Algorithms 3/4 and the distributed polynomial application
// of Algorithm 7).
//
// Per-iteration nearest-neighbor exchange counts (paper Table 1), with m
// the polynomial degree:
//   Basic    (Algorithm 5): m + 3   (basis kept in local distributed form)
//   Enhanced (Algorithm 6): m + 1   (preconditioned vectors kept global)
// Both are implemented and their measured counts are reproduced by
// bench/table1_complexity.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/fgmres.hpp"
#include "core/intervals.hpp"
#include "par/comm.hpp"
#include "par/counters.hpp"
#include "partition/edd.hpp"

namespace pfem::core {

enum class EddVariant {
  Basic,     ///< Algorithm 5: 3 exchanges outside the preconditioner
  Enhanced,  ///< Algorithm 6: 1 exchange outside the preconditioner
};

enum class PolyKind { None, Neumann, Gls, Chebyshev };

/// Which polynomial preconditioner the distributed solvers build (each
/// rank constructs it redundantly — no communication, the paper's point).
struct PolySpec {
  PolyKind kind = PolyKind::Gls;
  int degree = 7;
  real_t omega = 1.0;  ///< Neumann scaling (1 is valid after norm-1 scaling)
  /// GLS spectrum estimate; Chebyshev uses theta.front() (single positive
  /// interval required).
  Theta theta = default_theta_after_scaling();

  [[nodiscard]] std::string name() const;
};

/// Validate a PolySpec at solve entry, throwing pfem::Error with a clear
/// message instead of letting a bad spec silently misbuild:
///   - any polynomial kind needs degree >= 1 (None ignores the degree);
///   - GLS needs a valid Eq.-18 Theta (non-empty, ordered, 0 excluded);
///   - Chebyshev needs exactly one strictly positive interval (the
///     semi-iteration has no multi-interval form).
void validate_poly_spec(const PolySpec& spec);

// The distributed result shape lives in core/solve_report.hpp as
// `DistSolve`: the unified SolveReport plus the solution, per-rank
// counters and optional span trace.

/// Solve K u = f on an EDD partition (K = the partition's k_loc
/// sub-assemblies).  Applies distributed norm-1 scaling, builds the
/// polynomial preconditioner per PolySpec, runs restarted FGMRES.
///
/// @param local_matrices optional override of part.subs[s].k_loc (same
///        dof layout), e.g. the dynamic effective stiffness K + a0*M.
[[nodiscard]] DistSolve solve_edd(
    const partition::EddPartition& part, std::span<const real_t> f_global,
    const PolySpec& poly, const SolveOptions& opts = {},
    EddVariant variant = EddVariant::Enhanced,
    const std::vector<sparse::CsrMatrix>* local_matrices = nullptr);

}  // namespace pfem::core
