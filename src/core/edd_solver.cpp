#include "core/edd_solver.hpp"

#include "core/edd_batch.hpp"
#include "core/edd_kernels.hpp"

#include <cmath>
#include <optional>
#include <string>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/deflation.hpp"
#include "core/gls_poly.hpp"
#include "core/neumann.hpp"
#include "la/hessenberg_lsq.hpp"
#include "la/vector_ops.hpp"

namespace pfem::core {

std::string PolySpec::name() const {
  switch (kind) {
    case PolyKind::None: return "none";
    case PolyKind::Neumann: return "Neumann(" + std::to_string(degree) + ")";
    case PolyKind::Gls: return "GLS(" + std::to_string(degree) + ")";
    case PolyKind::Chebyshev: return "Cheb(" + std::to_string(degree) + ")";
  }
  return "?";
}

void validate_poly_spec(const PolySpec& spec) {
  if (spec.kind == PolyKind::None) return;
  PFEM_CHECK_MSG(spec.degree >= 1,
                 "polynomial preconditioner " << spec.name()
                 << ": degree must be >= 1");
  if (spec.kind == PolyKind::Gls) validate_theta(spec.theta);
  if (spec.kind == PolyKind::Chebyshev) {
    PFEM_CHECK_MSG(!spec.theta.empty(),
                   "Chebyshev preconditioner needs a spectrum interval "
                   "(theta is empty)");
    PFEM_CHECK_MSG(spec.theta.size() == 1,
                   "Chebyshev preconditioner needs a single interval, got "
                   << spec.theta.size()
                   << " (the semi-iteration has no multi-interval form; "
                      "use GLS for indefinite spectra)");
    PFEM_CHECK_MSG(spec.theta.front().lo < spec.theta.front().hi,
                   "Chebyshev interval is empty or inverted");
    PFEM_CHECK_MSG(spec.theta.front().lo > 0.0,
                   "Chebyshev preconditioner needs a strictly positive "
                   "interval (lo > 0)");
  }
}

namespace {

using partition::EddPartition;
using partition::EddSubdomain;
using sparse::CsrMatrix;
using detail::DistPoly;
using detail::EddRank;
using detail::exchange_spmv;
using detail::sqrt_nonneg;

/// Shared output written by the ranks (join() publishes it).
struct SharedOut {
  std::vector<Vector> solutions;  // per-rank u in global distributed format
  bool converged = false;
  bool breakdown = false;
  bool trivial_rhs = false;
  index_t iterations = 0;
  index_t restarts = 0;
  real_t final_relres = 0.0;
  std::vector<real_t> history;
  std::vector<par::PerfCounters> setup_counters;
};

void edd_rank_solve(const EddPartition& part, const CsrMatrix& k_in,
                    const sparse::EbeStore* elems,
                    std::span<const real_t> f_global, const PolySpec& spec,
                    const SolveOptions& opts, EddVariant variant,
                    par::Comm& comm, SharedOut& out) {
  const int s = comm.rank();
  const EddSubdomain& sub = part.subs[static_cast<std::size_t>(s)];
  EddRank r(sub, comm);
  obs::Tracer* const tr = comm.tracer();
  const std::size_t nl = r.nl();
  const index_t m = opts.restart;
  const bool basic = (variant == EddVariant::Basic);
  OBS_SPAN(tr, "solve_edd", obs::Cat::Solve);

  // ---- Setup: rhs in local distributed format, distributed norm-1
  // scaling (Algorithms 3/4), redundant preconditioner construction.
  const WallTimer setup_timer;
  Vector d;
  Vector b_loc(nl);
  std::optional<RankKernel> kern;
  {
    OBS_SPAN(tr, "setup", obs::Cat::Setup);
    Vector f_loc(nl);
    for (std::size_t l = 0; l < nl; ++l)
      f_loc[l] =
          f_global[static_cast<std::size_t>(sub.local_to_global[l])] /
          static_cast<real_t>(sub.multiplicity[l]);

    d = k_in.row_norms1();  // partial row norms d_i^(s) (Eq. 43)
    r.counters().flops += static_cast<std::uint64_t>(k_in.nnz());
    r.exchange(d);              // d_i = Σ_s d_i^(s) (Eq. 42)
    for (std::size_t l = 0; l < nl; ++l) {
      // The exchange made d globally consistent, so a zero sum is a
      // degenerate ROW OF THE ASSEMBLED OPERATOR, not a partition
      // artifact — typed so the caller can answer Failed{BadOperator}.
      if (!(d[l] > 0.0))
        throw BadOperatorError(
            "norm-1 scaling: zero/degenerate row at global dof " +
            std::to_string(sub.local_to_global[l]));
      d[l] = 1.0 / std::sqrt(d[l]);
    }
    // Â = D̂ K̂ D̂ (Eq. 44): the Csr kernel scales a private copy
    // eagerly, the Sell kernel fuses D into every apply — the 2*nnz
    // scaling work is charged here either way so setup/iteration flop
    // accounting stays comparable across formats.
    kern.emplace(k_in, Vector(d), sub.interface_local_dofs, opts.kernels,
                 elems);
    r.counters().flops += 2ull * static_cast<std::uint64_t>(k_in.nnz());
    for (std::size_t l = 0; l < nl; ++l) b_loc[l] = d[l] * f_loc[l];
    r.counters().flops += nl;
  }
  const RankKernel& a = *kern;

  std::optional<DistPoly> poly_store;
  {
    OBS_SPAN(tr, "build_poly", obs::Cat::Setup);
    poly_store.emplace(spec, nl, &r.counters());
  }
  DistPoly& poly = *poly_store;

  // Two-level deflation setup: E = ZᵀÂZ assembled from the local
  // sub-matrices in one nnz sweep, completed by ONE allreduce of the
  // dense buffer, then LU-factorized redundantly — the allreduce makes E
  // bit-identical on every rank, so each rank's factor (and every later
  // coarse solve) is too, and no broadcast is ever needed.
  std::optional<DeflationRank> defl;
  std::optional<CoarseOperator> coarse;
  Vector cbuf, zy, vdef;
  if (opts.deflation.enabled) {
    OBS_SPAN(tr, "build_coarse", obs::Cat::Setup);
    Vector w(nl);  // Z weights 1/d̂: the scaled operator's near-null basis
    for (std::size_t l = 0; l < nl; ++l) w[l] = 1.0 / d[l];
    defl.emplace(sub, s, part.nparts(), opts.deflation, w);
    const index_t nc = defl->ncoarse();
    la::DenseMatrix e(nc, nc);
    defl->accumulate_e(k_in, d, e);
    r.counters().flops += 3ull * static_cast<std::uint64_t>(k_in.nnz());
    comm.allreduce_sum(e.data());
    coarse.emplace(std::move(e));
    const auto ncc = static_cast<std::uint64_t>(nc);
    r.counters().flops += 2 * ncc * ncc * ncc / 3;
    cbuf.resize(static_cast<std::size_t>(nc));
    zy.resize(nl);
    vdef.resize(nl);
  }

  // Deflated preconditioner application B v = M (v − ÂQv) + Qv with
  // Q = ZE⁻¹Zᵀ — "A-DEF1" in Tang/Nabben/Vuik/Erlangga's taxonomy, the
  // same variant the batch path applies.  (A-DEF2, the M-first order,
  // only matches it when started from the special x0 = Qb; from the
  // zero start used here it measurably degrades.)  Per application the
  // correction costs ONE small allreduce (the coarse residual) and one
  // extra mat-vec ÂZy.  Zy is globally consistent by construction —
  // col() and w() depend only on the global dof id — so Basic needs NO
  // extra exchange (the mat-vec's input is already global); Enhanced
  // globalizes the mat-vec's local-format result with one.
  const auto coarse_residual = [&](const Vector& vin, bool global_fmt) {
    la::fill(cbuf, 0.0);
    if (global_fmt)
      defl->restrict_global(vin, cbuf);  // Zᵀv, v in global format
    else
      defl->restrict_local(vin, cbuf);   // Zᵀv, v in local format
    r.counters().flops += 2 * nl;
    comm.allreduce_sum(cbuf);
    coarse->solve(cbuf);  // y = E⁻¹Zᵀv, bit-identical on every rank
    r.counters().coarse_solves += 1;
    r.counters().flops += coarse->solve_flops();
  };
  const auto precond_local = [&](const Vector& vin, Vector& zout) {
    if (defl) {
      OBS_SPAN(tr, "coarse_correct", obs::Cat::Precond);
      coarse_residual(vin, /*global_fmt=*/false);
      defl->prolong_global(cbuf, zy);  // Zy, globally consistent as-is
      r.spmv(a, zy, vdef);             // ÂZy in local format — no exchange
      for (std::size_t l = 0; l < nl; ++l) vdef[l] = vin[l] - vdef[l];
      r.counters().flops += nl;
      r.counters().vector_updates += 1;
    }
    {
      OBS_SPAN(tr, "poly_apply", obs::Cat::Precond);
      poly.apply_local(r, a, defl ? vdef : vin, zout);
    }
    if (defl) {
      defl->prolong_local(cbuf, zy);  // Zy in local format this time
      for (std::size_t l = 0; l < nl; ++l) zout[l] += zy[l];
      r.counters().flops += 3 * nl;
      r.counters().vector_updates += 1;
    }
  };
  const auto precond_global = [&](const Vector& vin, Vector& zout) {
    if (defl) {
      OBS_SPAN(tr, "coarse_correct", obs::Cat::Precond);
      coarse_residual(vin, /*global_fmt=*/true);
      defl->prolong_global(cbuf, zy);
      r.spmv(a, zy, vdef);  // ÂZy in local format
      r.exchange(vdef);     // the one extra exchange of a deflated iter
      for (std::size_t l = 0; l < nl; ++l) vdef[l] = vin[l] - vdef[l];
      r.counters().flops += nl;
      r.counters().vector_updates += 1;
    }
    {
      OBS_SPAN(tr, "poly_apply", obs::Cat::Precond);
      poly.apply_global(r, a, defl ? vdef : vin, zout);
    }
    if (defl) {
      for (std::size_t l = 0; l < nl; ++l) zout[l] += zy[l];
      r.counters().flops += nl;
      r.counters().vector_updates += 1;
    }
  };

  out.setup_counters[static_cast<std::size_t>(s)] = comm.counters();
  out.setup_counters[static_cast<std::size_t>(s)].total_seconds =
      setup_timer.seconds();

  // ---- FGMRES (Algorithm 5 when basic, Algorithm 6 otherwise).
  // Basic keeps x and the Arnoldi basis in local format; Enhanced keeps
  // them in global format.
  Vector x(nl, 0.0);
  Vector r_loc(nl), r_glob(nl), w_loc(nl), w_glob(nl), tmp(nl);
  std::vector<Vector> v(static_cast<std::size_t>(m) + 1, Vector(nl));
  std::vector<Vector> z(static_cast<std::size_t>(m), Vector(nl));
  Vector h(static_cast<std::size_t>(m) + 2);
  Vector h2(static_cast<std::size_t>(m) + 2);  // re-orthogonalization pass

  bool broke_down = false;
  index_t iterations = 0, restarts = 0;
  real_t beta0 = -1.0, relres = 1.0;

  while (iterations < opts.max_iters) {
    // Residual r = b − A x.
    if (basic) {
      la::copy(x, tmp);  // x must be global for the SpMV
      exchange_spmv(r, a, tmp, r_loc);
    } else {
      r.spmv(a, x, r_loc);
    }
    for (std::size_t l = 0; l < nl; ++l) r_loc[l] = b_loc[l] - r_loc[l];
    r.counters().flops += nl;
    la::copy(r_loc, r_glob);
    r.exchange(r_glob);
    const real_t beta = sqrt_nonneg(r.dot_lg(r_loc, r_glob));
    if (beta0 < 0.0) {
      beta0 = beta;
      if (beta0 == 0.0) {  // zero rhs: x = 0 is exact
        relres = 0.0;
        if (s == 0) out.trivial_rhs = true;
        break;
      }
    }
    relres = beta / beta0;
    if (relres <= opts.tol) break;

    if (iterations > 0) {
      // Re-entering Arnoldi after a completed cycle: only now has a
      // restart actually happened (a first-cycle convergence reports 0).
      ++restarts;
      if (s == 0) out.restarts = restarts;
    }

    // v_0 = r / beta in the variant's basis format.
    if (basic)
      for (std::size_t l = 0; l < nl; ++l) v[0][l] = r_loc[l] / beta;
    else
      for (std::size_t l = 0; l < nl; ++l) v[0][l] = r_glob[l] / beta;
    r.counters().flops += nl;
    r.counters().vector_updates += 1;

    la::HessenbergLsq lsq(m, beta);
    index_t j = 0;
    bool breakdown = false;
    for (; j < m && iterations < opts.max_iters; ++j) {
      OBS_SPAN(tr, "arnoldi", obs::Cat::Solve,
               static_cast<std::uint32_t>(iterations));
      auto& vj = v[static_cast<std::size_t>(j)];
      auto& zj = z[static_cast<std::size_t>(j)];

      const int gs_passes = opts.reorthogonalize ? 2 : 1;
      if (basic) {
        // -- Algorithm 5 inner step: m+3 exchanges total (deflation
        // adds an allreduce + a mat-vec but no exchange).
        precond_local(vj, zj);                 // m exchanges
        la::copy(zj, tmp);
        exchange_spmv(r, a, tmp, w_loc);       // (+1) ẑ -> global
        la::copy(w_loc, w_glob);
        r.exchange(w_glob);                    // (+1) ŵ -> global
        // h_i = <w, v_i> = ⊕Σ <ŵ_glob, v̂_i_loc> (Eq. 34) — one global
        // reduction per i, as in the paper's Algorithm 5 line 18 (its
        // Table 1 charges ~m̃+1 global communications per iteration),
        // unless batched_reductions folds them into one allreduce.
        {
          OBS_SPAN(tr, "gram_schmidt", obs::Cat::Ortho);
          for (int pass = 0; pass < gs_passes; ++pass) {
            if (pass > 0) {  // refresh the global copy of the updated w
              la::copy(w_loc, w_glob);
              r.exchange(w_glob);
            }
            Vector& coeff = pass == 0 ? h : h2;
            if (opts.batched_reductions) {
              for (index_t i = 0; i <= j; ++i)
                coeff[static_cast<std::size_t>(i)] = r.dot_lg_partial(
                    v[static_cast<std::size_t>(i)], w_glob);
              comm.allreduce_sum(std::span<real_t>(
                  coeff.data(), static_cast<std::size_t>(j) + 1));
            } else {
              for (index_t i = 0; i <= j; ++i)
                coeff[static_cast<std::size_t>(i)] =
                    r.dot_lg(v[static_cast<std::size_t>(i)], w_glob);
            }
            // w -= Σ coeff_i v_i, kept in local format.
            for (index_t i = 0; i <= j; ++i)
              la::axpy(-coeff[static_cast<std::size_t>(i)],
                       v[static_cast<std::size_t>(i)], w_loc);
            r.counters().flops += 2 * nl * static_cast<std::size_t>(j + 1);
            r.counters().vector_updates += static_cast<std::uint64_t>(j) + 1;
            if (pass > 0)
              for (index_t i = 0; i <= j; ++i)
                h[static_cast<std::size_t>(i)] +=
                    coeff[static_cast<std::size_t>(i)];
          }
        }
        la::copy(w_loc, w_glob);
        r.exchange(w_glob);                    // (+1) for the norm
        h[static_cast<std::size_t>(j) + 1] =
            sqrt_nonneg(r.dot_lg(w_loc, w_glob));
      } else {
        // -- Algorithm 6 inner step: m+1 exchanges total (m+2 when the
        // deflation correction globalizes its extra mat-vec).
        precond_global(vj, zj);                // m exchanges
        r.spmv(a, zj, w_loc);
        la::copy(w_loc, w_glob);
        r.exchange(w_glob);                    // (+1) the only extra one
        // h_i = ⊕Σ <ŵ_loc, v̂_i_glob> (Eq. 33) — one global reduction
        // per i (Algorithm 6 line 13 / Table 1), optionally batched.
        // The re-orthogonalization pass uses the 1/mult-weighted dot on
        // the updated global-format w (no extra exchange).
        {
          OBS_SPAN(tr, "gram_schmidt", obs::Cat::Ortho);
          for (int pass = 0; pass < gs_passes; ++pass) {
            Vector& coeff = pass == 0 ? h : h2;
            if (opts.batched_reductions) {
              for (index_t i = 0; i <= j; ++i)
                coeff[static_cast<std::size_t>(i)] =
                    pass == 0 ? r.dot_lg_partial(
                                    w_loc, v[static_cast<std::size_t>(i)])
                              : r.dot_gg_partial(
                                    w_glob, v[static_cast<std::size_t>(i)]);
              comm.allreduce_sum(std::span<real_t>(
                  coeff.data(), static_cast<std::size_t>(j) + 1));
            } else {
              for (index_t i = 0; i <= j; ++i)
                coeff[static_cast<std::size_t>(i)] =
                    pass == 0
                        ? r.dot_lg(w_loc, v[static_cast<std::size_t>(i)])
                        : r.dot_gg(w_glob, v[static_cast<std::size_t>(i)]);
            }
            for (index_t i = 0; i <= j; ++i)
              la::axpy(-coeff[static_cast<std::size_t>(i)],
                       v[static_cast<std::size_t>(i)], w_glob);
            r.counters().flops += 2 * nl * static_cast<std::size_t>(j + 1);
            r.counters().vector_updates += static_cast<std::uint64_t>(j) + 1;
            if (pass > 0)
              for (index_t i = 0; i <= j; ++i)
                h[static_cast<std::size_t>(i)] +=
                    coeff[static_cast<std::size_t>(i)];
          }
        }
        h[static_cast<std::size_t>(j) + 1] =
            std::sqrt(r.norm2_sq_global(w_glob));
      }

      const real_t hnext = h[static_cast<std::size_t>(j) + 1];
      relres = lsq.push_column(std::span<const real_t>(
                   h.data(), static_cast<std::size_t>(j) + 2)) /
               beta0;
      ++iterations;
      if (s == 0) {
        // Rank 0 writes the shared report incrementally (single writer,
        // published by the team join), so a comm failure mid-solve still
        // leaves a truthful partial history behind.
        out.history.push_back(relres);
        out.iterations = iterations;
        out.final_relres = relres;
        if (tr != nullptr) tr->counter("relres", obs::Cat::Solve, relres);
        if (opts.observe.progress)
          opts.observe.progress(iterations, relres, 0);
      }

      if (hnext == 0.0 || hnext <= 1e-14 * beta0) {
        breakdown = true;
        ++j;
        break;
      }
      auto& vnext = v[static_cast<std::size_t>(j) + 1];
      if (basic) {
        for (std::size_t l = 0; l < nl; ++l) vnext[l] = w_loc[l] / hnext;
      } else {
        for (std::size_t l = 0; l < nl; ++l) vnext[l] = w_glob[l] / hnext;
      }
      r.counters().flops += nl;
      r.counters().vector_updates += 1;

      if (relres <= opts.tol) {
        ++j;
        break;
      }
    }

    if (j > 0) {
      const Vector y = lsq.solve();
      for (index_t i = 0; i < j; ++i)
        la::axpy(y[static_cast<std::size_t>(i)], z[static_cast<std::size_t>(i)],
                 x);
      r.counters().flops += 2 * nl * static_cast<std::size_t>(j);
      r.counters().vector_updates += static_cast<std::uint64_t>(j);
    }
    if (breakdown) {
      // The basis cannot grow: stop, but do NOT claim convergence — the
      // final true residual below is the only arbiter of that.
      broke_down = true;
      break;
    }
    if (relres <= opts.tol) break;
  }

  // ---- Final true residual and solution in physical variables u = D x.
  if (basic) {
    la::copy(x, tmp);
    exchange_spmv(r, a, tmp, r_loc);
  } else {
    la::copy(x, tmp);  // x already global; tmp used for uniformity
    r.spmv(a, tmp, r_loc);
  }
  for (std::size_t l = 0; l < nl; ++l) r_loc[l] = b_loc[l] - r_loc[l];
  la::copy(r_loc, r_glob);
  r.exchange(r_glob);
  const real_t final_res = sqrt_nonneg(r.dot_lg(r_loc, r_glob));
  const real_t final_relres = beta0 > 0.0 ? final_res / beta0 : 0.0;

  Vector x_glob(nl);
  if (basic) {
    la::copy(x, x_glob);
    r.exchange(x_glob);
  } else {
    la::copy(x, x_glob);
  }
  Vector u(nl);
  for (std::size_t l = 0; l < nl; ++l) u[l] = d[l] * x_glob[l];
  out.solutions[static_cast<std::size_t>(s)] = std::move(u);

  if (s == 0) {
    // Convergence is claimed on the final TRUE relative residual alone;
    // breakdown and trivial-rhs exits are reported as what they are.
    out.converged = final_relres <= opts.tol;
    out.breakdown = broke_down;
    out.iterations = iterations;
    out.restarts = restarts;
    out.final_relres = final_relres;
  }
}

}  // namespace

DistSolve solve_edd(const EddPartition& part,
                          std::span<const real_t> f_global,
                          const PolySpec& spec, const SolveOptions& opts,
                          EddVariant variant,
                          const std::vector<sparse::CsrMatrix>* local_matrices) {
  PFEM_CHECK(f_global.size() == static_cast<std::size_t>(part.n_global));
  PFEM_CHECK_MSG(opts.restart >= 1 && opts.max_iters >= 1 && opts.tol > 0.0,
                 "solve_edd: restart/max_iters must be >= 1 and tol > 0");
  validate_poly_spec(spec);
  validate_deflation(opts.deflation, part.n_global);
  if (local_matrices != nullptr)
    PFEM_CHECK(local_matrices->size() == part.subs.size());
  // A matrix override (e.g. dynamics' K + a0 M) leaves the partition's
  // element matrices stale — the matrix-free kernel would silently apply
  // the wrong operator, so reject the combination up front.
  PFEM_CHECK_MSG(!(opts.kernels.format == KernelOptions::Format::Ebe &&
                   local_matrices != nullptr),
                 "Format::Ebe cannot be combined with a local-matrix "
                 "override: the partition's element store holds the "
                 "originally assembled operator, not the override");
  const int p = part.nparts();

  // Solve sessions (opts.recycle): the warm-start projection and the
  // direction harvest live on the fused batch machinery, so a recycling
  // one-shot solve routes through build_edd_operator + solve_edd_batch
  // (which runs the Enhanced discipline) on a one-shot team and reshapes
  // the single-RHS batch result.  Stateless solves — the default — take
  // the paper-faithful path below, bit-identically to before.
  if (opts.recycle.enabled) {
    WallTimer timer;
    par::Team team(p);
    if (opts.observe.fault_injector != nullptr)
      team.set_fault_injector(opts.observe.fault_injector);
    if (opts.observe.comm_timeout_seconds > 0.0)
      team.set_comm_timeout(opts.observe.comm_timeout_seconds);
    EddOperatorState op = build_edd_operator(
        team, part, spec, local_matrices, nullptr, opts.kernels,
        opts.deflation);
    const std::vector<Vector> rhs{Vector(f_global.begin(), f_global.end())};
    BatchSolveResult batch = solve_edd_batch(team, part, op, rhs, opts);
    DistSolve result;
    static_cast<SolveReport&>(result) = std::move(batch.items.front());
    if (!batch.comm_failed()) result.x = std::move(batch.x.front());
    if (!batch.recycled.empty())
      result.recycled = std::move(batch.recycled.front());
    result.rank_counters = std::move(batch.rank_counters);
    result.setup_counters = std::move(op.setup_counters);
    result.trace = std::move(batch.trace);
    result.wall_seconds = timer.seconds();
    return result;
  }

  SharedOut out;
  out.solutions.resize(static_cast<std::size_t>(p));
  out.setup_counters.resize(static_cast<std::size_t>(p));

  std::shared_ptr<obs::Trace> trace;
  if (opts.observe.trace)
    trace = std::make_shared<obs::Trace>(p, opts.observe.ring_capacity);

  WallTimer timer;
  std::vector<par::PerfCounters> counters;
  std::string comm_error;
  try {
    counters = par::run_spmd(
        p,
        [&](par::Comm& comm) {
          const auto s = static_cast<std::size_t>(comm.rank());
          const sparse::CsrMatrix& k =
              local_matrices ? (*local_matrices)[s] : part.subs[s].k_loc;
          const sparse::EbeStore* const elems =
              local_matrices ? nullptr : part.subs[s].elem_store.get();
          edd_rank_solve(part, k, elems, f_global, spec, opts, variant, comm,
                         out);
        },
        trace.get(), opts.observe.fault_injector,
        opts.observe.comm_timeout_seconds);
  } catch (const par::CommError& e) {
    // Typed communication failure (timeout / injected crash): every rank
    // has unwound and joined, so the partial history rank 0 wrote is
    // safe to report.  Any other exception still propagates — a rank's
    // own error is not a comm fault.
    comm_error = e.what();
  }

  if (!comm_error.empty()) {
    DistSolve result;
    result.wall_seconds = timer.seconds();
    result.converged = false;
    result.comm_error = std::move(comm_error);
    result.breakdown = out.breakdown;
    result.trivial_rhs = out.trivial_rhs;
    result.iterations = out.iterations;
    result.restarts = out.restarts;
    result.final_relres = out.final_relres;
    result.history = std::move(out.history);
    result.trace = std::move(trace);
    return result;
  }

  DistSolve result;
  result.wall_seconds = timer.seconds();
  result.x = partition::edd_gather_global(part, out.solutions);
  result.converged = out.converged;
  result.breakdown = out.breakdown;
  result.trivial_rhs = out.trivial_rhs;
  result.iterations = out.iterations;
  result.restarts = out.restarts;
  result.final_relres = out.final_relres;
  result.history = std::move(out.history);
  result.rank_counters = std::move(counters);
  result.setup_counters = std::move(out.setup_counters);
  result.trace = std::move(trace);
  return result;
}

}  // namespace pfem::core
