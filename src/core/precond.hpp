// Preconditioner interface and the standard implementations.
//
// FGMRES (flexible GMRES) only requires z = C v at each inner step and
// allows C to change between steps — which is what lets one interface
// cover identity/Jacobi, ILU(0) triangular solves, and the polynomial
// preconditioners whose application is a sequence of mat-vecs.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <utility>

#include "common/types.hpp"
#include "core/chebyshev.hpp"
#include "core/gls_poly.hpp"
#include "core/neumann.hpp"
#include "core/operator.hpp"
#include "sparse/csr.hpp"
#include "sparse/ilu0.hpp"
#include "sparse/iluk.hpp"

namespace pfem::core {

class Preconditioner {
 public:
  virtual ~Preconditioner() = default;

  /// z <- C v.  v and z must not alias.
  virtual void apply(std::span<const real_t> v, std::span<real_t> z) = 0;

  /// Human-readable name for experiment tables ("GLS(7)", "ILU(0)", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Mat-vec-equivalent applications of A per apply() (0 when none),
  /// used by the complexity accounting.
  [[nodiscard]] virtual int matvecs_per_apply() const { return 0; }
};

/// C = I.
class IdentityPrecond final : public Preconditioner {
 public:
  void apply(std::span<const real_t> v, std::span<real_t> z) override;
  [[nodiscard]] std::string name() const override { return "none"; }
};

/// C = diag(A)^{-1} (Jacobi).
class JacobiPrecond final : public Preconditioner {
 public:
  explicit JacobiPrecond(const sparse::CsrMatrix& a);
  void apply(std::span<const real_t> v, std::span<real_t> z) override;
  [[nodiscard]] std::string name() const override { return "Jacobi"; }

 private:
  Vector inv_diag_;
};

/// C ≈ A^{-1} by ILU(0) triangular solves.
class Ilu0Precond final : public Preconditioner {
 public:
  explicit Ilu0Precond(const sparse::CsrMatrix& a);
  void apply(std::span<const real_t> v, std::span<real_t> z) override;
  [[nodiscard]] std::string name() const override { return "ILU(0)"; }

 private:
  sparse::Ilu0 ilu_;
};

/// C ≈ A^{-1} by level-k incomplete factorization (the paper's ILU(k)).
class IlukPrecond final : public Preconditioner {
 public:
  IlukPrecond(const sparse::CsrMatrix& a, int level);
  void apply(std::span<const real_t> v, std::span<real_t> z) override;
  [[nodiscard]] std::string name() const override {
    return "ILU(" + std::to_string(iluk_.level()) + ")";
  }
  [[nodiscard]] const sparse::IluK& factorization() const noexcept {
    return iluk_;
  }

 private:
  sparse::IluK iluk_;
};

/// C = P_m(A) with the Neumann-series polynomial (Algorithm 7).
class NeumannPrecond final : public Preconditioner {
 public:
  NeumannPrecond(LinearOp a, NeumannPolynomial poly)
      : a_(std::move(a)), poly_(std::move(poly)) {}
  void apply(std::span<const real_t> v, std::span<real_t> z) override {
    poly_.apply(a_, v, z);
  }
  [[nodiscard]] std::string name() const override {
    return "Neumann(" + std::to_string(poly_.degree()) + ")";
  }
  [[nodiscard]] int matvecs_per_apply() const override {
    return poly_.degree();
  }

 private:
  LinearOp a_;
  NeumannPolynomial poly_;
};

/// C = P_m(A) with the GLS polynomial.
class GlsPrecond final : public Preconditioner {
 public:
  GlsPrecond(LinearOp a, GlsPolynomial poly)
      : a_(std::move(a)), poly_(std::move(poly)) {}
  void apply(std::span<const real_t> v, std::span<real_t> z) override {
    poly_.apply(a_, v, z);
  }
  [[nodiscard]] std::string name() const override {
    return "GLS(" + std::to_string(poly_.degree()) + ")";
  }
  [[nodiscard]] int matvecs_per_apply() const override {
    return poly_.degree();
  }

 private:
  LinearOp a_;
  GlsPolynomial poly_;
};

/// C = p_m(A) with the Chebyshev min-max polynomial.
class ChebyshevPrecond final : public Preconditioner {
 public:
  ChebyshevPrecond(LinearOp a, ChebyshevPolynomial poly)
      : a_(std::move(a)), poly_(std::move(poly)) {}
  void apply(std::span<const real_t> v, std::span<real_t> z) override {
    poly_.apply(a_, v, z);
  }
  [[nodiscard]] std::string name() const override {
    return "Cheb(" + std::to_string(poly_.degree()) + ")";
  }
  [[nodiscard]] int matvecs_per_apply() const override {
    return poly_.degree();
  }

 private:
  LinearOp a_;
  ChebyshevPolynomial poly_;
};

/// Adapter for ad-hoc preconditioners (distributed closures, tests).
class FunctionPrecond final : public Preconditioner {
 public:
  using Fn = std::function<void(std::span<const real_t>, std::span<real_t>)>;
  FunctionPrecond(std::string name, Fn fn, int matvecs = 0)
      : name_(std::move(name)), fn_(std::move(fn)), matvecs_(matvecs) {}
  void apply(std::span<const real_t> v, std::span<real_t> z) override {
    fn_(v, z);
  }
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] int matvecs_per_apply() const override { return matvecs_; }

 private:
  std::string name_;
  Fn fn_;
  int matvecs_;
};

}  // namespace pfem::core
