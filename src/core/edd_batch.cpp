#include "core/edd_batch.hpp"

#include <algorithm>
#include <optional>
#include <string>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/edd_kernels.hpp"
#include "la/dense.hpp"
#include "la/hessenberg_lsq.hpp"
#include "la/vector_ops.hpp"

namespace pfem::core {

namespace {

using partition::EddPartition;
using partition::EddSubdomain;
using sparse::CsrMatrix;
using detail::DistPoly;
using detail::EddRank;
using detail::sqrt_nonneg;

/// Fused analog of detail::spmv_exchange: ŷ_i = Â x̂_i for every RHS,
/// then ONE fused exchange globalizing the outputs.  With a split kernel
/// the coupled rows of every RHS are computed first, the fused sends go
/// out, the interior rows of every RHS fill in while messages fly, and
/// the folds land last — still exactly one logical exchange and one
/// matvec per RHS.
void batch_spmv_exchange(EddRank& r, const RankKernel& a,
                         std::span<Vector* const> xs,
                         std::span<Vector* const> ys) {
  const std::size_t nb = xs.size();
  const std::span<const Vector* const> cxs(
      const_cast<const Vector* const*>(xs.data()), xs.size());
  if (a.additive()) {
    // Matrix-free kernel: run the element sweep lane-fused (each dense
    // element matrix is loaded once per batch), halves scatter-ADD so
    // the outputs start zeroed.  One "spmv" span covering the batch;
    // matvec/flop counters are still charged per RHS.  (pfem_trace
    // cross-checks only "exchange" spans against the counters, so the
    // fused span shape is observable but not contract-bearing.)
    if (a.split()) {
      for (std::size_t i = 0; i < nb; ++i) la::fill(*ys[i], 0.0);
      a.apply_coupled_many(cxs, ys);
      r.exchange_many_start(ys);
      {
        OBS_SPAN(r.comm().tracer(), "spmv", obs::Cat::Matvec,
                 static_cast<std::uint32_t>(nb));
        a.apply_interior_many(cxs, ys);
        r.counters().matvecs += nb;
        r.counters().flops += nb * a.apply_flops();
      }
      r.exchange_many_finish(ys);
    } else {
      {
        OBS_SPAN(r.comm().tracer(), "spmv", obs::Cat::Matvec,
                 static_cast<std::uint32_t>(nb));
        a.apply_many(cxs, ys);  // zero-fills its outputs itself
        r.counters().matvecs += nb;
        r.counters().flops += nb * a.apply_flops();
      }
      r.exchange_many(ys);
    }
    return;
  }
  if (a.split()) {
    for (std::size_t i = 0; i < nb; ++i) a.apply_coupled(*xs[i], *ys[i]);
    r.exchange_many_start(ys);
    for (std::size_t i = 0; i < nb; ++i) {
      OBS_SPAN(r.comm().tracer(), "spmv", obs::Cat::Matvec);
      a.apply_interior(*xs[i], *ys[i]);
      r.counters().matvecs += 1;
      r.counters().flops += a.apply_flops();
    }
    r.exchange_many_finish(ys);
  } else {
    for (std::size_t i = 0; i < nb; ++i) r.spmv(a, *xs[i], *ys[i]);
    r.exchange_many(ys);
  }
}

/// Loop-fused polynomial application z_b = P_m(A) v_b for a set of RHS:
/// the recursions advance in lockstep so each of the m steps does one
/// SpMV per RHS but only ONE fused neighbor exchange (global-format
/// discipline, as in Algorithm 6 line 10 via Algorithm 7).
class BatchPoly {
 public:
  BatchPoly(const EddOperatorState& op, std::size_t nl, std::size_t nb)
      : spec_(op.poly), gls_(op.gls.get()), cheb_(op.cheb.get()) {
    wa_.assign(nb, Vector(nl));
    wb_.assign(nb, Vector(nl));
    wc_.assign(nb, Vector(nl));
    ex_.reserve(nb);
    exin_.reserve(nb);
  }

  /// vin[i] -> zout[i] for i in [0, count); scratch row i serves input i.
  void apply(EddRank& r, const RankKernel& a,
             std::span<const Vector* const> vin, std::span<Vector* const> zout) {
    const std::size_t nb = vin.size();
    const std::size_t n = r.nl();
    switch (spec_.kind) {
      case PolyKind::None:
        for (std::size_t i = 0; i < nb; ++i) la::copy(*vin[i], *zout[i]);
        return;
      case PolyKind::Neumann: {
        // w_k = v + (I - omega*A) w_{k-1}, all in global format.
        for (std::size_t i = 0; i < nb; ++i) la::copy(*vin[i], wa_[i]);
        for (int k = 0; k < spec_.degree; ++k) {
          ex_.clear();
          exin_.clear();
          for (std::size_t i = 0; i < nb; ++i) {
            exin_.push_back(&wa_[i]);
            ex_.push_back(&wb_[i]);
          }
          batch_spmv_exchange(r, a, exin_, ex_);
          for (std::size_t i = 0; i < nb; ++i) {
            const Vector& v = *vin[i];
            Vector& w = wa_[i];
            const Vector& aw = wb_[i];
            for (std::size_t l = 0; l < n; ++l)
              w[l] = v[l] + w[l] - spec_.omega * aw[l];
            r.counters().flops += 3 * n;
            r.counters().vector_updates += 1;
          }
        }
        for (std::size_t i = 0; i < nb; ++i) {
          Vector& z = *zout[i];
          for (std::size_t l = 0; l < n; ++l) z[l] = spec_.omega * wa_[i][l];
          r.counters().flops += n;
        }
        return;
      }
      case PolyKind::Gls: {
        const OrthoBasis& basis = gls_->basis();
        const auto mu = gls_->mu();
        const real_t inv0 = 1.0 / basis.sqrt_beta(0);
        for (std::size_t i = 0; i < nb; ++i) {
          la::fill(wa_[i], 0.0);  // u_prev
          Vector& u = wb_[i];
          Vector& z = *zout[i];
          const Vector& v = *vin[i];
          for (std::size_t l = 0; l < n; ++l) {
            u[l] = inv0 * v[l];
            z[l] = mu[0] * u[l];
          }
          r.counters().flops += 2 * n;
        }
        for (int s = 0; s < spec_.degree; ++s) {
          ex_.clear();
          exin_.clear();
          for (std::size_t i = 0; i < nb; ++i) {
            exin_.push_back(&wb_[i]);
            ex_.push_back(&wc_[i]);
          }
          batch_spmv_exchange(r, a, exin_, ex_);
          const real_t as = basis.alpha(s);
          const real_t sb_s = basis.sqrt_beta(s);
          const real_t sb_n = basis.sqrt_beta(s + 1);
          const real_t mu_next = mu[static_cast<std::size_t>(s) + 1];
          for (std::size_t i = 0; i < nb; ++i) {
            Vector& u_prev = wa_[i];
            Vector& u = wb_[i];
            const Vector& au = wc_[i];
            Vector& z = *zout[i];
            for (std::size_t l = 0; l < n; ++l) {
              const real_t t =
                  (au[l] - as * u[l] - (s > 0 ? sb_s * u_prev[l] : 0.0)) /
                  sb_n;
              u_prev[l] = u[l];
              u[l] = t;
              z[l] += mu_next * t;
            }
            r.counters().flops += 7 * n;
            r.counters().vector_updates += 1;
          }
        }
        return;
      }
      case PolyKind::Chebyshev: {
        const real_t theta =
            0.5 * (cheb_->interval().lo + cheb_->interval().hi);
        const real_t delta =
            0.5 * (cheb_->interval().hi - cheb_->interval().lo);
        const real_t sigma1 = theta / delta;
        real_t rho = 1.0 / sigma1;
        for (std::size_t i = 0; i < nb; ++i) {
          Vector& res = wa_[i];
          Vector& d = wb_[i];
          Vector& z = *zout[i];
          la::copy(*vin[i], res);
          for (std::size_t l = 0; l < n; ++l) {
            d[l] = res[l] / theta;
            z[l] = d[l];
          }
          r.counters().flops += 2 * n;
        }
        for (int k = 1; k <= spec_.degree; ++k) {
          ex_.clear();
          exin_.clear();
          for (std::size_t i = 0; i < nb; ++i) {
            exin_.push_back(&wb_[i]);
            ex_.push_back(&wc_[i]);
          }
          batch_spmv_exchange(r, a, exin_, ex_);
          const real_t rho_next = 1.0 / (2.0 * sigma1 - rho);
          const real_t c1 = rho_next * rho;
          const real_t c2 = 2.0 * rho_next / delta;
          for (std::size_t i = 0; i < nb; ++i) {
            Vector& res = wa_[i];
            Vector& d = wb_[i];
            const Vector& ad = wc_[i];
            Vector& z = *zout[i];
            for (std::size_t l = 0; l < n; ++l) {
              res[l] -= ad[l];
              d[l] = c1 * d[l] + c2 * res[l];
              z[l] += d[l];
            }
            r.counters().flops += 6 * n;
            r.counters().vector_updates += 1;
          }
          rho = rho_next;
        }
        return;
      }
    }
  }

 private:
  PolySpec spec_;
  const GlsPolynomial* gls_;
  const ChebyshevPolynomial* cheb_;
  std::vector<Vector> wa_, wb_, wc_;  // per-RHS recursion scratch
  std::vector<Vector*> ex_;           // fused-exchange view (outputs)
  std::vector<Vector*> exin_;         // fused-exchange view (inputs)
};

/// Shared output of a batch solve, written per rank / by the local leader.
struct BatchShared {
  std::vector<std::vector<Vector>> sol;  ///< [rhs][rank] u in global format
  std::vector<BatchItemResult> items;    ///< written by the local leader
  /// Harvested recycle directions, [rhs][ring slot][rank] pieces of the
  /// physical (scaling undone) cycle updates Δu.  Ring-bounded to
  /// max_directions slots; dir_count says how many cycles actually
  /// deposited (so the gather can order oldest → newest).  The slot
  /// index is a pure function of allreduced state, so every rank writes
  /// its own [rank] piece of the same slot.
  std::vector<std::vector<std::vector<Vector>>> dirs;
  std::vector<std::size_t> dir_count;  ///< written by the local leader
};

/// How many vectors the warm-setup phase of `opts.recycle` contributes
/// to its ONE fused exchange for RHS b: the globalized b̂ (for ‖b̂‖),
/// Âx̂₀ when a projection needs the warm residual, and one Âp_j per
/// recycled direction.  0 = this RHS starts cold.
std::size_t recycle_width(const SolveOptions& opts, std::size_t b,
                          std::size_t n_global) {
  if (!opts.recycle.enabled || opts.recycle.in == nullptr ||
      b >= opts.recycle.in->size())
    return 0;
  const RecycleIn& rin = (*opts.recycle.in)[b];
  if (rin.empty()) return 0;
  std::size_t k = 0;
  for (const Vector& p : rin.directions)
    if (p.size() == n_global) ++k;
  k = std::min(k, static_cast<std::size_t>(
                      std::max<index_t>(opts.recycle.max_directions, 0)));
  const bool has_x0 = rin.x0.size() == n_global;
  return 1 + k + (k > 0 && has_x0 ? 1 : 0);
}

void batch_rank_solve(const EddPartition& part, const EddOperatorState& op,
                      std::span<const Vector> rhs, const SolveOptions& opts,
                      par::Comm& comm, BatchShared& out) {
  const int s = comm.rank();
  // Shared per-process result state is written by the LOCAL leader (rank
  // 0 in-process; each process's lowest rank on a multi-process
  // transport).  Every value written under this guard derives from
  // allreduced scalars, so all leaders write bit-identical results and
  // every process ends up with a full copy of the per-RHS reports.
  const int leader = comm.local_leader();
  const EddSubdomain& sub = part.subs[static_cast<std::size_t>(s)];
  const std::size_t nb = rhs.size();
  // Widest fused exchange this solve will issue: the per-iteration batch
  // (nb), or the recycle warm-setup exchange when sessions are active.
  std::size_t prewidth = 0;
  for (std::size_t b = 0; b < nb; ++b)
    prewidth +=
        recycle_width(opts, b, static_cast<std::size_t>(part.n_global));
  EddRank r(sub, comm, std::max(nb, prewidth));
  obs::Tracer* const tr = comm.tracer();
  const std::size_t nl = r.nl();
  const index_t m = opts.restart;
  const Vector& d = op.d[static_cast<std::size_t>(s)];
  // Prebuilt kernels when the state came from build_edd_operator; a
  // hand-assembled state falls back to a scalar-CSR view of op.a.
  std::optional<RankKernel> fallback_kern;
  if (op.kern.size() != part.subs.size()) {
    KernelOptions fb;
    fb.format = KernelOptions::Format::Csr;
    fb.overlap = false;
    fallback_kern = RankKernel::from_scaled(
        &op.a[static_cast<std::size_t>(s)], sub.interface_local_dofs, fb);
  }
  const RankKernel& a = fallback_kern
                            ? *fallback_kern
                            : op.kern[static_cast<std::size_t>(s)];
  OBS_SPAN(tr, "solve_batch", obs::Cat::Solve,
           static_cast<std::uint32_t>(nb));

  // RHS in local distributed, scaled format: b = D̂ (f_loc / mult).
  std::vector<Vector> b_loc(nb, Vector(nl));
  for (std::size_t b = 0; b < nb; ++b)
    for (std::size_t l = 0; l < nl; ++l)
      b_loc[b][l] =
          d[l] * rhs[b][static_cast<std::size_t>(sub.local_to_global[l])] /
          static_cast<real_t>(sub.multiplicity[l]);
  r.counters().flops += 2 * nb * nl;

  // Per-RHS solver state.
  std::vector<Vector> x(nb, Vector(nl, 0.0));
  std::vector<Vector> r_loc(nb, Vector(nl)), r_glob(nb, Vector(nl));
  std::vector<Vector> w_loc(nb, Vector(nl)), w_glob(nb, Vector(nl));
  std::vector<std::vector<Vector>> v(nb), z(nb);
  for (std::size_t b = 0; b < nb; ++b) {
    v[b].assign(static_cast<std::size_t>(m) + 1, Vector(nl));
    z[b].assign(static_cast<std::size_t>(m), Vector(nl));
  }
  std::vector<Vector> h(nb, Vector(static_cast<std::size_t>(m) + 2));
  std::vector<Vector> h2(nb, Vector(static_cast<std::size_t>(m) + 2));
  std::vector<std::optional<la::HessenbergLsq>> lsq(nb);
  std::vector<char> done(nb, 0), frozen(nb, 0), brk(nb, 0);
  std::vector<index_t> iters(nb, 0), jcols(nb, 0);
  std::vector<real_t> beta0(nb, -1.0), relres(nb, 1.0);

  BatchPoly poly(op, nl, nb);

  // Two-level deflation, prebuilt by build_edd_operator and cached with
  // the operator: the fused A-DEF1 correction costs the whole batch ONE
  // small allreduce (every live RHS's coarse residual in one buffer) and
  // ONE fused exchange (globalizing the ÂZy corrections) per
  // preconditioner application.
  const CoarseOperator* const coarse = op.coarse.get();
  std::optional<DeflationRank> defl;
  std::vector<Vector> zy, vdef;
  Vector cbuf;
  if (coarse != nullptr) {
    Vector w(nl);  // Z weights 1/d̂: the scaled operator's near-null basis
    for (std::size_t l = 0; l < nl; ++l)
      w[l] = 1.0 / op.d[static_cast<std::size_t>(s)][l];
    defl.emplace(sub, s, part.nparts(), op.deflation, w);
    zy.assign(nb, Vector(nl));
    vdef.assign(nb, Vector(nl));
  }

  std::vector<Vector*> ex;         // fused-exchange view
  std::vector<const Vector*> pv;   // poly inputs
  std::vector<Vector*> pz;         // poly outputs
  Vector red;                      // batched-reduction buffer
  std::vector<std::size_t> cyc, live;
  ex.reserve(std::max(nb, prewidth));
  pv.reserve(nb);
  pz.reserve(nb);
  cyc.reserve(nb);
  live.reserve(nb);

  // ---- Solve-session warm setup (opts.recycle): warm-start guesses,
  // recycled-direction projection, and the ‖b̂‖ convergence reference.
  // ALL the extra session traffic is ONE fused exchange plus ONE
  // allreduce for the whole batch; stateless solves (prewidth == 0) skip
  // this block entirely and stay bit-identical — exchange count for
  // exchange count (the Table-1 contract) — with the pre-session code.
  const auto kmax = static_cast<std::size_t>(
      std::max<index_t>(opts.recycle.max_directions, 0));
  const bool harvest =
      opts.recycle.enabled && opts.recycle.harvest && kmax > 0;
  std::vector<std::size_t> harvested(nb, 0);
  if (prewidth > 0) {
    OBS_SPAN(tr, "recycle_setup", obs::Cat::Setup,
             static_cast<std::uint32_t>(prewidth));
    const auto ng = static_cast<std::size_t>(part.n_global);
    std::vector<std::vector<Vector>> pd(nb);  // scaled directions p̂_j
    std::vector<std::vector<Vector>> cd(nb);  // Â p̂_j, globalized
    std::vector<Vector> bg(nb), ax0(nb);
    std::vector<char> has_x0(nb, 0);
    ex.clear();
    for (std::size_t b = 0; b < nb; ++b) {
      if (recycle_width(opts, b, ng) == 0) continue;
      const RecycleIn& rin = (*opts.recycle.in)[b];
      // Warm start in the scaled variables: x̂ = D̂⁻¹u is globally
      // consistent because d̂ is consistent on shared dofs.
      if (rin.x0.size() == ng) {
        has_x0[b] = 1;
        for (std::size_t l = 0; l < nl; ++l)
          x[b][l] =
              rin.x0[static_cast<std::size_t>(sub.local_to_global[l])] / d[l];
        r.counters().flops += nl;
      }
      bg[b] = b_loc[b];  // globalized below, for ‖b̂‖ and r̂₀
      ex.push_back(&bg[b]);
      std::size_t k = 0;
      for (const Vector& dir : rin.directions)
        if (dir.size() == ng) ++k;
      std::size_t skip = k > kmax ? k - kmax : 0;  // keep the most recent
      for (const Vector& dir : rin.directions) {
        if (dir.size() != ng) continue;
        if (skip > 0) {
          --skip;
          continue;
        }
        Vector ps(nl);
        for (std::size_t l = 0; l < nl; ++l)
          ps[l] =
              dir[static_cast<std::size_t>(sub.local_to_global[l])] / d[l];
        r.counters().flops += nl;
        pd[b].push_back(std::move(ps));
      }
      cd[b].assign(pd[b].size(), Vector(nl));
      for (std::size_t j = 0; j < pd[b].size(); ++j) {
        r.spmv(a, pd[b][j], cd[b][j]);
        ex.push_back(&cd[b][j]);
      }
      if (!pd[b].empty() && has_x0[b]) {
        ax0[b].resize(nl);
        r.spmv(a, x[b], ax0[b]);
        ex.push_back(&ax0[b]);
      }
    }
    r.exchange_many(ex);  // the session's one fused exchange

    // Partial sums — ‖b̂‖² per warm RHS, then the normal-equation blocks
    // M = CᵀC and g = Cᵀr̂₀ per projecting RHS — fold into ONE allreduce.
    red.clear();
    for (std::size_t b = 0; b < nb; ++b) {
      if (bg[b].empty()) continue;
      red.push_back(r.dot_lg_partial(b_loc[b], bg[b]));
      const std::size_t k = pd[b].size();
      if (k == 0) continue;
      Vector r0(nl);
      for (std::size_t l = 0; l < nl; ++l)
        r0[l] = bg[b][l] - (has_x0[b] ? ax0[b][l] : 0.0);
      for (std::size_t i = 0; i < k; ++i)
        for (std::size_t j = 0; j < k; ++j)
          red.push_back(r.dot_gg_partial(cd[b][i], cd[b][j]));
      for (std::size_t i = 0; i < k; ++i)
        red.push_back(r.dot_gg_partial(cd[b][i], r0));
      r.counters().flops += 2 * nl * (k * k + 2 * k);
    }
    comm.allreduce_sum(red);

    // Consume the allreduced scalars: every decision below (trivial RHS,
    // projection coefficients, singular skip) is identical on all ranks.
    std::size_t off = 0;
    for (std::size_t b = 0; b < nb; ++b) {
      if (bg[b].empty()) continue;
      const real_t bnorm = sqrt_nonneg(red[off++]);
      const std::size_t k = pd[b].size();
      if (bnorm == 0.0) {
        // Trivial RHS: x = 0 is exact — same report as the cold path,
        // warm start discarded (the cold answer IS the answer).
        la::fill(x[b], 0.0);
        beta0[b] = 0.0;
        relres[b] = 0.0;
        done[b] = 1;
        if (s == leader) out.items[b].trivial_rhs = true;
        off += k * k + k;
        continue;
      }
      beta0[b] = bnorm;
      if (k == 0) continue;
      la::DenseMatrix nm(as_index(k), as_index(k));
      for (std::size_t i = 0; i < k; ++i)
        for (std::size_t j = 0; j < k; ++j)
          nm(as_index(i), as_index(j)) = red[off++];
      Vector g(k);
      for (std::size_t i = 0; i < k; ++i) g[i] = red[off++];
      // Mild Tikhonov floor so near-parallel recycled directions cannot
      // break the factorization; a singular system skips the projection
      // (the solve just starts less warm) — identically on every rank.
      real_t trace = 0.0;
      for (std::size_t i = 0; i < k; ++i) trace += nm(as_index(i), as_index(i));
      const real_t eps = 1e-12 * (trace / static_cast<real_t>(k));
      for (std::size_t i = 0; i < k; ++i) nm(as_index(i), as_index(i)) += eps;
      bool solved = true;
      try {
        la::lu_solve(nm, g);
      } catch (const Error&) {
        solved = false;
      }
      if (!solved) continue;
      for (std::size_t j = 0; j < k; ++j) la::axpy(g[j], pd[b][j], x[b]);
      r.counters().flops += 2 * nl * k;
      r.counters().vector_updates += k;
    }
  }

  // Every branch below depends only on allreduced scalars, so all ranks
  // take identical decisions — the fused-message layouts (who is in the
  // cycle, who is live) never diverge across ranks.
  for (;;) {
    // ---- Residuals r_b = b_b - A x_b for every unfinished RHS.
    cyc.clear();
    ex.clear();
    for (std::size_t b = 0; b < nb; ++b) {
      if (done[b]) continue;
      r.spmv(a, x[b], r_loc[b]);
      for (std::size_t l = 0; l < nl; ++l) r_loc[b][l] = b_loc[b][l] - r_loc[b][l];
      r.counters().flops += nl;
      la::copy(r_loc[b], r_glob[b]);
      ex.push_back(&r_glob[b]);
      cyc.push_back(b);
    }
    if (cyc.empty()) break;
    r.exchange_many(ex);

    red.resize(cyc.size());
    for (std::size_t i = 0; i < cyc.size(); ++i)
      red[i] = r.dot_lg_partial(r_loc[cyc[i]], r_glob[cyc[i]]);
    comm.allreduce_sum(red);

    std::vector<std::size_t> next_cyc;
    for (std::size_t i = 0; i < cyc.size(); ++i) {
      const std::size_t b = cyc[i];
      const real_t beta = sqrt_nonneg(red[i]);
      if (beta0[b] < 0.0) {
        beta0[b] = beta;
        if (beta == 0.0) {  // zero rhs: x = 0 is exact
          done[b] = 1;
          relres[b] = 0.0;
          if (s == leader) out.items[b].trivial_rhs = true;
          continue;
        }
      }
      relres[b] = beta / beta0[b];
      if (relres[b] <= opts.tol) {
        done[b] = 1;
        continue;
      }
      if (iters[b] >= opts.max_iters) {
        done[b] = 1;
        continue;
      }
      for (std::size_t l = 0; l < nl; ++l) v[b][0][l] = r_glob[b][l] / beta;
      r.counters().flops += nl;
      r.counters().vector_updates += 1;
      lsq[b].emplace(m, beta);
      if (iters[b] > 0 && s == leader) ++out.items[b].restarts;
      frozen[b] = 0;
      brk[b] = 0;
      jcols[b] = 0;
      next_cyc.push_back(b);
    }
    cyc.swap(next_cyc);
    if (cyc.empty()) continue;  // re-enter to terminate cleanly

    // ---- One fused Arnoldi cycle (Algorithm 6 inner loop).
    const int gs_passes = opts.reorthogonalize ? 2 : 1;
    for (index_t j = 0; j < m; ++j) {
      live.clear();
      for (const std::size_t b : cyc)
        if (!frozen[b] && iters[b] < opts.max_iters) live.push_back(b);
      if (live.empty()) break;
      const auto jj = static_cast<std::size_t>(j);

      OBS_SPAN(tr, "arnoldi", obs::Cat::Solve,
               static_cast<std::uint32_t>(live.size()));

      // z_b = P_m(A) v_b: m SpMVs per RHS, m fused exchanges in total.
      pv.clear();
      pz.clear();
      for (const std::size_t b : live) {
        pv.push_back(&v[b][jj]);
        pz.push_back(&z[b][jj]);
      }
      if (defl) {
        // Coarse correction first: v_b -> v_b − ÂZy_b with
        // y_b = E⁻¹Zᵀv_b, then the polynomial on the deflated vectors,
        // then z_b += Zy_b.
        const auto nc = static_cast<std::size_t>(defl->ncoarse());
        {
          OBS_SPAN(tr, "coarse_correct", obs::Cat::Precond,
                   static_cast<std::uint32_t>(live.size()));
          cbuf.assign(live.size() * nc, 0.0);
          const std::span<real_t> call(cbuf);
          for (std::size_t i = 0; i < live.size(); ++i) {
            defl->restrict_global(*pv[i], call.subspan(i * nc, nc));
            r.counters().flops += 2 * nl;
          }
          comm.allreduce_sum(call);
          ex.clear();
          for (std::size_t i = 0; i < live.size(); ++i) {
            const std::size_t b = live[i];
            const auto c = call.subspan(i * nc, nc);
            coarse->solve(c);
            r.counters().coarse_solves += 1;
            r.counters().flops += coarse->solve_flops();
            defl->prolong_global(c, zy[b]);
            r.counters().flops += nl;
            r.spmv(a, zy[b], vdef[b]);
            ex.push_back(&vdef[b]);
          }
          r.exchange_many(ex);  // one fused exchange globalizes every ÂZy
          for (std::size_t i = 0; i < live.size(); ++i) {
            const std::size_t b = live[i];
            const Vector& vin = *pv[i];
            for (std::size_t l = 0; l < nl; ++l)
              vdef[b][l] = vin[l] - vdef[b][l];
            r.counters().flops += nl;
            r.counters().vector_updates += 1;
          }
          pv.clear();
          for (const std::size_t b : live) pv.push_back(&vdef[b]);
        }
        {
          OBS_SPAN(tr, "poly_apply", obs::Cat::Precond);
          poly.apply(r, a, pv, pz);
        }
        for (std::size_t i = 0; i < live.size(); ++i) {
          const std::size_t b = live[i];
          Vector& zout = *pz[i];
          for (std::size_t l = 0; l < nl; ++l) zout[l] += zy[b][l];
          r.counters().flops += nl;
          r.counters().vector_updates += 1;
        }
      } else {
        OBS_SPAN(tr, "poly_apply", obs::Cat::Precond);
        poly.apply(r, a, pv, pz);
      }

      // w_b = A z_b, globalized by the cycle's ONE extra fused exchange.
      ex.clear();
      for (const std::size_t b : live) {
        r.spmv(a, z[b][jj], w_loc[b]);
        la::copy(w_loc[b], w_glob[b]);
        ex.push_back(&w_glob[b]);
      }
      r.exchange_many(ex);

      // Gram-Schmidt: the whole batch's j+1 coefficients fold into one
      // allreduce (the batched_reductions idea, across RHS as well).
      {
        OBS_SPAN(tr, "gram_schmidt", obs::Cat::Ortho);
        for (int pass = 0; pass < gs_passes; ++pass) {
          red.resize(live.size() * (jj + 1));
          for (std::size_t i = 0; i < live.size(); ++i) {
            const std::size_t b = live[i];
            for (std::size_t k = 0; k <= jj; ++k)
              red[i * (jj + 1) + k] =
                  pass == 0 ? r.dot_lg_partial(w_loc[b], v[b][k])
                            : r.dot_gg_partial(w_glob[b], v[b][k]);
          }
          comm.allreduce_sum(red);
          for (std::size_t i = 0; i < live.size(); ++i) {
            const std::size_t b = live[i];
            Vector& coeff = pass == 0 ? h[b] : h2[b];
            for (std::size_t k = 0; k <= jj; ++k) {
              coeff[k] = red[i * (jj + 1) + k];
              la::axpy(-coeff[k], v[b][k], w_glob[b]);
            }
            r.counters().flops += 2 * nl * (jj + 1);
            r.counters().vector_updates += jj + 1;
            if (pass > 0)
              for (std::size_t k = 0; k <= jj; ++k) h[b][k] += h2[b][k];
          }
        }
      }

      // ||w_b|| for the whole batch: one more allreduce.
      red.resize(live.size());
      for (std::size_t i = 0; i < live.size(); ++i)
        red[i] = r.dot_gg_partial(w_glob[live[i]], w_glob[live[i]]);
      comm.allreduce_sum(red);

      for (std::size_t i = 0; i < live.size(); ++i) {
        const std::size_t b = live[i];
        const real_t hnext = sqrt_nonneg(red[i]);
        h[b][jj + 1] = hnext;
        relres[b] =
            lsq[b]->push_column(std::span<const real_t>(h[b].data(), jj + 2)) /
            beta0[b];
        ++iters[b];
        if (s == leader) {
          out.items[b].history.push_back(relres[b]);
          if (tr != nullptr)
            tr->counter("relres", obs::Cat::Solve, relres[b],
                        static_cast<std::uint32_t>(b));
          if (opts.observe.progress)
            opts.observe.progress(iters[b], relres[b], b);
        }
        jcols[b] = j + 1;
        if (hnext == 0.0 || hnext <= 1e-14 * beta0[b]) {
          frozen[b] = 1;
          brk[b] = 1;
          continue;
        }
        if (relres[b] <= opts.tol) {
          frozen[b] = 1;  // converged: no next basis vector needed
          continue;
        }
        for (std::size_t l = 0; l < nl; ++l)
          v[b][jj + 1][l] = w_glob[b][l] / hnext;
        r.counters().flops += nl;
        r.counters().vector_updates += 1;
      }
    }

    // ---- Solution update x_b += Z_b y_b and cycle bookkeeping.
    for (const std::size_t b : cyc) {
      if (jcols[b] > 0) {
        const Vector y = lsq[b]->solve();
        for (index_t k = 0; k < jcols[b]; ++k)
          la::axpy(y[static_cast<std::size_t>(k)],
                   z[b][static_cast<std::size_t>(k)], x[b]);
        r.counters().flops += 2 * nl * static_cast<std::size_t>(jcols[b]);
        r.counters().vector_updates += static_cast<std::uint64_t>(jcols[b]);
        if (harvest) {
          // Deposit this cycle's physical update Δu = D̂·Z_b y_b into the
          // harvest ring.  The slot index derives from the deterministic
          // cycle count, so every rank writes its own piece of the SAME
          // slot and the ring keeps the most recent kmax cycles.
          const std::size_t slot = harvested[b] % kmax;
          Vector du(nl, 0.0);
          for (index_t k = 0; k < jcols[b]; ++k)
            la::axpy(y[static_cast<std::size_t>(k)],
                     z[b][static_cast<std::size_t>(k)], du);
          for (std::size_t l = 0; l < nl; ++l) du[l] *= d[l];
          out.dirs[b][slot][static_cast<std::size_t>(s)] = std::move(du);
          ++harvested[b];
        }
      }
      if (brk[b]) {
        // Terminal, but NOT convergence: the final true residual below
        // is the only arbiter of that (mirrors solve_edd).
        done[b] = 1;
        if (s == leader) out.items[b].breakdown = true;
      } else if (relres[b] <= opts.tol) {
        done[b] = 1;
      }
    }
  }

  // ---- Final true residuals (one fused exchange + one reduction) and
  // solutions in physical variables u = D x.
  ex.clear();
  for (std::size_t b = 0; b < nb; ++b) {
    r.spmv(a, x[b], r_loc[b]);
    for (std::size_t l = 0; l < nl; ++l) r_loc[b][l] = b_loc[b][l] - r_loc[b][l];
    la::copy(r_loc[b], r_glob[b]);
    ex.push_back(&r_glob[b]);
  }
  r.exchange_many(ex);
  red.resize(nb);
  for (std::size_t b = 0; b < nb; ++b)
    red[b] = r.dot_lg_partial(r_loc[b], r_glob[b]);
  comm.allreduce_sum(red);

  for (std::size_t b = 0; b < nb; ++b) {
    Vector u(nl);
    for (std::size_t l = 0; l < nl; ++l) u[l] = d[l] * x[b][l];
    out.sol[b][static_cast<std::size_t>(s)] = std::move(u);
  }
  if (s == leader) {
    for (std::size_t b = 0; b < nb; ++b) {
      BatchItemResult& item = out.items[b];
      const real_t final_res = sqrt_nonneg(red[b]);
      item.final_relres = beta0[b] > 0.0 ? final_res / beta0[b] : 0.0;
      // Convergence is claimed on the final TRUE relative residual alone
      // (a trivial RHS reports 0, which always meets a positive tol).
      item.converged = item.final_relres <= opts.tol;
      item.iterations = iters[b];
      if (harvest) out.dir_count[b] = harvested[b];
    }
  }
}

}  // namespace

EddOperatorState build_edd_operator(
    par::Team& team, const partition::EddPartition& part, const PolySpec& spec,
    const std::vector<sparse::CsrMatrix>* local_matrices, obs::Trace* trace,
    const KernelOptions& kernels, const DeflationOptions& deflation) {
  validate_poly_spec(spec);
  // Fail a mismatched coarse-space configuration HERE, on the calling
  // thread, as a typed BadOperatorError — not as a per-rank surprise
  // halfway through the team's build.
  validate_deflation(deflation, part.n_global);
  PFEM_CHECK_MSG(team.size() == part.nparts(),
                 "build_edd_operator: team size " << team.size()
                 << " != partition parts " << part.nparts());
  if (local_matrices != nullptr)
    PFEM_CHECK(local_matrices->size() == part.subs.size());
  // Matrix override + matrix-free kernel: the element store would be
  // stale — same guard as solve_edd.
  PFEM_CHECK_MSG(!(kernels.format == KernelOptions::Format::Ebe &&
                   local_matrices != nullptr),
                 "Format::Ebe cannot be combined with a local-matrix "
                 "override: the partition's element store holds the "
                 "originally assembled operator, not the override");
  const auto p = static_cast<std::size_t>(part.nparts());

  WallTimer timer;
  EddOperatorState op;
  op.poly = spec;
  op.kernels = kernels;
  op.deflation = deflation;
  op.a.resize(p);
  op.d.resize(p);
  op.kern.resize(p);
  la::DenseMatrix e_shared;  // allreduced E, identical bits on every rank
  op.setup_counters = team.run(
      [&](par::Comm& comm) {
        const auto s = static_cast<std::size_t>(comm.rank());
        const EddSubdomain& sub = part.subs[s];
        EddRank r(sub, comm);
        OBS_SPAN(comm.tracer(), "build_operator", obs::Cat::Setup);
        const std::size_t nl = r.nl();
        CsrMatrix a = local_matrices ? (*local_matrices)[s] : sub.k_loc;
        Vector d = a.row_norms1();  // partial row norms d_i^(s) (Eq. 43)
        r.counters().flops += static_cast<std::uint64_t>(a.nnz());
        r.exchange(d);              // d_i = Σ_s d_i^(s) (Eq. 42)
        for (std::size_t l = 0; l < nl; ++l) {
          // Globally-summed zero row => degenerate operator; typed so
          // the service maps it to Failed{BadOperator} (request-scoped,
          // the build is never cached) instead of a generic failure.
          if (!(d[l] > 0.0))
            throw BadOperatorError(
                "norm-1 scaling: zero/degenerate row at global dof " +
                std::to_string(sub.local_to_global[l]));
          d[l] = 1.0 / std::sqrt(d[l]);
        }
        // Kernels are built from the UNSCALED matrix: the Sell format
        // keeps the raw entries and fuses D into every apply, the Csr
        // format scales its private copy eagerly.  op.a keeps the
        // scaled CSR alongside for callers that inspect it.
        op.kern[s] = RankKernel(a, Vector(d), sub.interface_local_dofs,
                                kernels,
                                local_matrices ? nullptr
                                               : sub.elem_store.get());
        a.scale_symmetric(d);  // Â = D̂ K̂ D̂ (Eq. 44)
        r.counters().flops += 2ull * static_cast<std::uint64_t>(a.nnz());
        if (deflation.enabled) {
          // E = ZᵀÂZ from the local-format sum identity: one sweep over
          // the scaled nnz per rank, ONE allreduce of the dense buffer.
          OBS_SPAN(comm.tracer(), "build_coarse", obs::Cat::Setup);
          Vector w(nl);  // Z weights 1/d̂ (see core/deflation.hpp)
          for (std::size_t l = 0; l < nl; ++l) w[l] = 1.0 / d[l];
          DeflationRank dr(sub, static_cast<int>(s), part.nparts(),
                           deflation, w);
          la::DenseMatrix ep(dr.ncoarse(), dr.ncoarse());
          dr.accumulate_e_scaled(a, ep);
          r.counters().flops += static_cast<std::uint64_t>(a.nnz());
          comm.allreduce_sum(ep.data());
          // Local-leader guard (not rank 0): on a multi-process team
          // every process needs its own copy, and the allreduce made
          // ep bit-identical on every rank.
          if (static_cast<int>(s) == comm.local_leader())
            e_shared = std::move(ep);
        }
        op.a[s] = std::move(a);
        op.d[s] = std::move(d);
      },
      trace);
  if (deflation.enabled) {
    // One shared read-only factorization serves every rank (the
    // allreduce already replicated E bit-identically); the flops are
    // charged per rank, matching the redundant factorization a
    // distributed-memory run performs in place of a broadcast.
    op.coarse = std::make_shared<const CoarseOperator>(std::move(e_shared));
    const auto nc = static_cast<std::uint64_t>(op.coarse->n());
    for (auto& c : op.setup_counters) c.flops += 2 * nc * nc * nc / 3;
  }

  // The polynomial recursion data depends only on the spec (the paper
  // builds it redundantly per rank with zero communication); one shared
  // read-only build serves every rank of every later batch solve.
  if (spec.kind == PolyKind::Gls) {
    op.gls = std::make_shared<const GlsPolynomial>(spec.theta, spec.degree);
    const std::uint64_t build = DistPoly::gls_build_flops(*op.gls);
    for (auto& c : op.setup_counters) c.flops += build;
  } else if (spec.kind == PolyKind::Chebyshev) {
    op.cheb = std::make_shared<const ChebyshevPolynomial>(spec.theta.front(),
                                                          spec.degree);
  }
  op.setup_seconds = timer.seconds();
  for (auto& c : op.setup_counters) c.total_seconds = op.setup_seconds;
  return op;
}

BatchSolveResult solve_edd_batch(par::Team& team, const EddPartition& part,
                                 const EddOperatorState& op,
                                 std::span<const Vector> rhs,
                                 const SolveOptions& opts, obs::Trace* trace) {
  PFEM_CHECK_MSG(!rhs.empty(), "solve_edd_batch: empty RHS batch");
  PFEM_CHECK_MSG(opts.restart >= 1 && opts.max_iters >= 1 && opts.tol > 0.0,
                 "solve_edd_batch: restart/max_iters must be >= 1 and "
                 "tol > 0");
  PFEM_CHECK_MSG(team.size() == part.nparts(),
                 "solve_edd_batch: team size " << team.size()
                 << " != partition parts " << part.nparts());
  PFEM_CHECK(op.a.size() == part.subs.size());
  validate_poly_spec(op.poly);
  for (const Vector& f : rhs)
    PFEM_CHECK(f.size() == static_cast<std::size_t>(part.n_global));
  const auto p = static_cast<std::size_t>(part.nparts());
  const std::size_t nb = rhs.size();
  if (opts.recycle.enabled && opts.recycle.in != nullptr) {
    // Session inputs are physical global vectors, same shape as the
    // solutions this solver returns; anything else is a caller bug.
    const auto& in = *opts.recycle.in;
    for (std::size_t b = 0; b < std::min(in.size(), nb); ++b) {
      PFEM_CHECK_MSG(
          in[b].x0.empty() ||
              in[b].x0.size() == static_cast<std::size_t>(part.n_global),
          "solve_edd_batch: recycle x0 length mismatch for RHS " << b);
      for (const Vector& dir : in[b].directions)
        PFEM_CHECK_MSG(
            dir.size() == static_cast<std::size_t>(part.n_global),
            "solve_edd_batch: recycle direction length mismatch for RHS "
                << b);
    }
  }
  const auto kmax = static_cast<std::size_t>(
      std::max<index_t>(opts.recycle.max_directions, 0));
  const bool harvest =
      opts.recycle.enabled && opts.recycle.harvest && kmax > 0;

  BatchShared out;
  out.sol.assign(nb, std::vector<Vector>(p));
  out.items.assign(nb, BatchItemResult{});
  if (harvest) {
    out.dirs.assign(
        nb, std::vector<std::vector<Vector>>(kmax, std::vector<Vector>(p)));
    out.dir_count.assign(nb, 0);
  }

  // An external trace (the service's) wins; otherwise honor the per-call
  // observe knob with a trace owned by this result.
  std::shared_ptr<obs::Trace> own_trace;
  if (trace == nullptr && opts.observe.trace) {
    own_trace = std::make_shared<obs::Trace>(static_cast<int>(p),
                                             opts.observe.ring_capacity);
    trace = own_trace.get();
  }

  WallTimer timer;
  std::vector<par::PerfCounters> counters;
  std::string comm_error;
  try {
    counters = team.run(
        [&](par::Comm& comm) {
          batch_rank_solve(part, op, rhs, opts, comm, out);
        },
        trace);
  } catch (const par::CommError& e) {
    // Typed communication failure: all ranks have joined, so the partial
    // per-RHS histories rank 0 wrote incrementally are intact.  Return a
    // typed failed report; Cancelled and rank errors still propagate.
    comm_error = e.what();
  }

  BatchSolveResult result;
  result.wall_seconds = timer.seconds();
  result.trace = std::move(own_trace);
  result.items = std::move(out.items);
  if (!comm_error.empty()) {
    for (BatchItemResult& item : result.items) {
      item.converged = false;
      item.comm_error = comm_error;
    }
    result.comm_error = std::move(comm_error);
    return result;  // x stays empty: no corrupt solutions
  }
  // On a multi-process team only locally hosted subdomains deposited
  // their solution pieces; zero-fill the remote slots so the gather
  // assembles the dofs this process's ranks own (each process holds its
  // piece of the solution, as a distributed-memory run would — the
  // per-RHS convergence reports above are complete everywhere).
  for (std::size_t b = 0; b < nb; ++b)
    for (std::size_t q = 0; q < p; ++q) {
      Vector& slot = out.sol[b][q];
      const std::size_t want = part.subs[q].local_to_global.size();
      if (slot.size() != want) slot.assign(want, 0.0);
    }
  result.x.reserve(nb);
  for (std::size_t b = 0; b < nb; ++b)
    result.x.push_back(partition::edd_gather_global(part, out.sol[b]));
  if (harvest) {
    // Assemble the harvested ring slots oldest → newest; remote ranks'
    // pieces zero-fill exactly like the solution gather above.
    result.recycled.resize(nb);
    for (std::size_t b = 0; b < nb; ++b) {
      const std::size_t cnt = out.dir_count[b];
      const std::size_t h = std::min(cnt, kmax);
      for (std::size_t i = 0; i < h; ++i) {
        std::vector<Vector>& pieces = out.dirs[b][(cnt - h + i) % kmax];
        for (std::size_t q = 0; q < p; ++q) {
          Vector& piece = pieces[q];
          const std::size_t want = part.subs[q].local_to_global.size();
          if (piece.size() != want) piece.assign(want, 0.0);
        }
        result.recycled[b].push_back(
            partition::edd_gather_global(part, pieces));
      }
    }
  }
  result.rank_counters = std::move(counters);
  return result;
}

}  // namespace pfem::core
