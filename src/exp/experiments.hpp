// Shared experiment plumbing for the bench binaries: partition builders
// for cantilever problems and the speedup-study runner that evaluates
// the machine cost model on solver traces.
#pragma once

#include <vector>

#include "core/edd_solver.hpp"
#include "core/rdd_solver.hpp"
#include "fem/problems.hpp"
#include "par/cost_model.hpp"
#include "partition/edd.hpp"
#include "partition/rdd.hpp"

namespace pfem::exp {

enum class PartitionMethod { Strips, Rcb };

/// Element partition + EDD structures for a cantilever problem.
[[nodiscard]] partition::EddPartition make_edd(
    const fem::CantileverProblem& prob, int nparts,
    PartitionMethod method = PartitionMethod::Rcb);

/// Node partition + RDD structures for a cantilever problem.
[[nodiscard]] partition::RddPartition make_rdd(
    const fem::CantileverProblem& prob, int nparts,
    PartitionMethod method = PartitionMethod::Rcb);

/// One row of a speedup study.
struct SpeedupRow {
  int nprocs = 0;
  index_t iterations = 0;
  bool converged = false;
  double modeled_seconds = 0.0;  ///< on the selected machine
  double speedup = 0.0;          ///< vs the 1-proc modeled time
};

/// Run the EDD solver for each P in `procs` and model the time on
/// `machine`.  P = 1 must be included (speedup baseline); if absent it is
/// prepended.
[[nodiscard]] std::vector<SpeedupRow> edd_speedup_study(
    const fem::CantileverProblem& prob, const core::PolySpec& poly,
    std::vector<int> procs, const par::MachineModel& machine,
    const core::SolveOptions& opts = {},
    core::EddVariant variant = core::EddVariant::Enhanced,
    PartitionMethod method = PartitionMethod::Rcb);

/// Same study for the RDD baseline.
[[nodiscard]] std::vector<SpeedupRow> rdd_speedup_study(
    const fem::CantileverProblem& prob, const core::PolySpec& poly,
    std::vector<int> procs, const par::MachineModel& machine,
    const core::SolveOptions& opts = {},
    PartitionMethod method = PartitionMethod::Rcb);

}  // namespace pfem::exp
