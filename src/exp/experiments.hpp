// Shared experiment plumbing for the bench binaries: partition builders
// for cantilever problems and the speedup-study runner that evaluates
// the machine cost model on solver traces.
#pragma once

#include <vector>

#include "core/edd_solver.hpp"
#include "core/rdd_solver.hpp"
#include "fem/families.hpp"
#include "fem/problems.hpp"
#include "par/cost_model.hpp"
#include "partition/edd.hpp"
#include "partition/rdd.hpp"

namespace pfem::exp {

enum class PartitionMethod { Strips, Rcb };

/// Element partition + EDD structures for a cantilever problem.
[[nodiscard]] partition::EddPartition make_edd(
    const fem::CantileverProblem& prob, int nparts,
    PartitionMethod method = PartitionMethod::Rcb);

/// Same, for a problem-family instance: partitions by centroid like the
/// cantilever overload but assembles the family's own operator kind
/// (Poisson for hetero2d, Stiffness for the elasticity families).
[[nodiscard]] partition::EddPartition make_edd(
    const fem::FamilyProblem& fp, int nparts,
    PartitionMethod method = PartitionMethod::Rcb);

/// Deflation options matched to a family instance: components and
/// coordinate enrichment from the family metadata; with `jump_aware`
/// the coefficient table rides along so the coarse space splits every
/// owner patch by coefficient class (see core/deflation.hpp).
[[nodiscard]] core::DeflationOptions family_deflation(
    const fem::FamilyProblem& fp, bool jump_aware = false,
    int vectors_per_subdomain = 6);

/// Node partition + RDD structures for a cantilever problem.
[[nodiscard]] partition::RddPartition make_rdd(
    const fem::CantileverProblem& prob, int nparts,
    PartitionMethod method = PartitionMethod::Rcb);

/// One row of a speedup study.
struct SpeedupRow {
  int nprocs = 0;
  index_t iterations = 0;
  bool converged = false;
  double modeled_seconds = 0.0;  ///< on the selected machine
  double speedup = 0.0;          ///< vs the 1-proc modeled time
};

/// Run the EDD solver for each P in `procs` and model the time on
/// `machine`.  P = 1 must be included (speedup baseline); if absent it is
/// prepended.
[[nodiscard]] std::vector<SpeedupRow> edd_speedup_study(
    const fem::CantileverProblem& prob, const core::PolySpec& poly,
    std::vector<int> procs, const par::MachineModel& machine,
    const core::SolveOptions& opts = {},
    core::EddVariant variant = core::EddVariant::Enhanced,
    PartitionMethod method = PartitionMethod::Rcb);

/// Same study for the RDD baseline.
[[nodiscard]] std::vector<SpeedupRow> rdd_speedup_study(
    const fem::CantileverProblem& prob, const core::PolySpec& poly,
    std::vector<int> procs, const par::MachineModel& machine,
    const core::SolveOptions& opts = {},
    PartitionMethod method = PartitionMethod::Rcb);

}  // namespace pfem::exp
