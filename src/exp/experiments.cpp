#include "exp/experiments.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "partition/geom.hpp"

namespace pfem::exp {

namespace {

IndexVector partition_points(const std::vector<partition::Point>& pts,
                             int nparts, PartitionMethod method) {
  if (nparts == 1) return IndexVector(pts.size(), 0);
  return method == PartitionMethod::Strips
             ? partition::partition_strips(pts, nparts)
             : partition::partition_rcb(pts, nparts);
}

/// Element centroid as a 3-D point (z = 0 for 2-D meshes).
partition::Point3 centroid3(const fem::Mesh& mesh, index_t e) {
  partition::Point3 c{0.0, 0.0, 0.0};
  const auto nodes = mesh.elem_nodes(e);
  for (index_t n : nodes) {
    c[0] += mesh.x(n);
    c[1] += mesh.y(n);
    c[2] += mesh.z(n);
  }
  const real_t inv = 1.0 / static_cast<real_t>(nodes.size());
  for (real_t& v : c) v *= inv;
  return c;
}

/// Element partition by centroid (RCB in the mesh's dimension, strips
/// in 2-D) — shared by the operator-kind-aware make_edd overloads.
IndexVector make_elem_part(const fem::Mesh& mesh, int nparts,
                           PartitionMethod method) {
  if (mesh.dim() == 3 && method == PartitionMethod::Rcb && nparts > 1) {
    std::vector<partition::Point3> centroids;
    centroids.reserve(static_cast<std::size_t>(mesh.num_elems()));
    for (index_t e = 0; e < mesh.num_elems(); ++e)
      centroids.push_back(centroid3(mesh, e));
    return partition::partition_rcb3(centroids, nparts);
  }
  std::vector<partition::Point> centroids;
  centroids.reserve(static_cast<std::size_t>(mesh.num_elems()));
  for (index_t e = 0; e < mesh.num_elems(); ++e)
    centroids.push_back(mesh.elem_centroid(e));
  return partition_points(centroids, nparts, method);
}

}  // namespace

partition::EddPartition make_edd(const fem::CantileverProblem& prob,
                                 int nparts, PartitionMethod method) {
  return partition::build_edd_partition(
      prob.mesh, prob.dofs, prob.material, fem::Operator::Stiffness,
      make_elem_part(prob.mesh, nparts, method), nparts);
}

partition::EddPartition make_edd(const fem::FamilyProblem& fp, int nparts,
                                 PartitionMethod method) {
  return partition::build_edd_partition(
      fp.prob.mesh, fp.prob.dofs, fp.prob.material, fp.op,
      make_elem_part(fp.prob.mesh, nparts, method), nparts);
}

core::DeflationOptions family_deflation(const fem::FamilyProblem& fp,
                                        bool jump_aware,
                                        int vectors_per_subdomain) {
  core::DeflationOptions opts;
  opts.enabled = true;
  opts.vectors_per_subdomain = vectors_per_subdomain;
  opts.components = fp.components;
  opts.coord_dim = fp.coord_dim;
  opts.dof_coords = fp.dof_coords;
  if (jump_aware) {
    opts.jump_aware = true;
    opts.dof_coeff = fp.dof_coeff;
  }
  return opts;
}

partition::RddPartition make_rdd(const fem::CantileverProblem& prob,
                                 int nparts, PartitionMethod method) {
  IndexVector node_part;
  if (prob.mesh.dim() == 3 && method == PartitionMethod::Rcb && nparts > 1) {
    std::vector<partition::Point3> coords;
    coords.reserve(static_cast<std::size_t>(prob.mesh.num_nodes()));
    for (index_t n = 0; n < prob.mesh.num_nodes(); ++n)
      coords.push_back({prob.mesh.x(n), prob.mesh.y(n), prob.mesh.z(n)});
    node_part = partition::partition_rcb3(coords, nparts);
  } else {
    std::vector<partition::Point> coords;
    coords.reserve(static_cast<std::size_t>(prob.mesh.num_nodes()));
    for (index_t n = 0; n < prob.mesh.num_nodes(); ++n)
      coords.emplace_back(prob.mesh.x(n), prob.mesh.y(n));
    node_part = partition_points(coords, nparts, method);
  }
  const IndexVector dof_part =
      partition::node_part_to_dof_part(prob.dofs, node_part);
  partition::RddPartition part =
      partition::build_rdd_partition(prob.stiffness, dof_part, nparts);
  // Account the node-based FE layout's duplicated interface elements
  // (paper Fig. 8) in the cost model.
  partition::annotate_rdd_fe_duplication(part, prob.mesh, prob.dofs);
  return part;
}

namespace {

std::vector<int> with_baseline(std::vector<int> procs) {
  if (std::find(procs.begin(), procs.end(), 1) == procs.end())
    procs.insert(procs.begin(), 1);
  return procs;
}

}  // namespace

std::vector<SpeedupRow> edd_speedup_study(const fem::CantileverProblem& prob,
                                          const core::PolySpec& poly,
                                          std::vector<int> procs,
                                          const par::MachineModel& machine,
                                          const core::SolveOptions& opts,
                                          core::EddVariant variant,
                                          PartitionMethod method) {
  procs = with_baseline(std::move(procs));
  std::vector<SpeedupRow> rows;
  double t1 = 0.0;
  for (int p : procs) {
    const partition::EddPartition part = make_edd(prob, p, method);
    const core::DistSolve res =
        core::solve_edd(part, prob.load, poly, opts, variant);
    const double t =
        par::model_time(machine, res.rank_counters).total();
    if (p == 1) t1 = t;
    SpeedupRow row;
    row.nprocs = p;
    row.iterations = res.iterations;
    row.converged = res.converged;
    row.modeled_seconds = t;
    row.speedup = t > 0.0 ? t1 / t : 0.0;
    rows.push_back(row);
  }
  return rows;
}

std::vector<SpeedupRow> rdd_speedup_study(const fem::CantileverProblem& prob,
                                          const core::PolySpec& poly,
                                          std::vector<int> procs,
                                          const par::MachineModel& machine,
                                          const core::SolveOptions& opts,
                                          PartitionMethod method) {
  procs = with_baseline(std::move(procs));
  std::vector<SpeedupRow> rows;
  double t1 = 0.0;
  core::RddOptions rdd_opts;
  rdd_opts.poly = poly;
  for (int p : procs) {
    const partition::RddPartition part = make_rdd(prob, p, method);
    const core::DistSolve res =
        core::solve_rdd(part, prob.load, rdd_opts, opts);
    const double t =
        par::model_time(machine, res.rank_counters).total();
    if (p == 1) t1 = t;
    SpeedupRow row;
    row.nprocs = p;
    row.iterations = res.iterations;
    row.converged = res.converged;
    row.modeled_seconds = t;
    row.speedup = t > 0.0 ? t1 / t : 0.0;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace pfem::exp
