// Column-aligned plain-text tables for the benchmark harness output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace pfem::exp {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  /// Machine-readable CSV (header + rows), for plotting pipelines.
  void print_csv(std::ostream& os) const;

  /// Fixed-precision double formatting.
  [[nodiscard]] static std::string num(double v, int precision = 4);
  /// Scientific formatting (residuals).
  [[nodiscard]] static std::string sci(double v, int precision = 2);
  [[nodiscard]] static std::string integer(long long v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner ("== Fig. 11: ... ==").
void banner(std::ostream& os, const std::string& title);

}  // namespace pfem::exp
