// Shared command-line plumbing for the bench binaries and the service
// tools: `--name=value` flag parsing plus the observability dump flags
// every driver understands:
//
//   --counters-json=FILE   per-rank PerfCounters of the run
//   --trace-json=FILE      Chrome trace_event span timeline (obs::Trace)
//   --metrics-json=FILE    flat per-lane span/counter aggregates
//   --trace-ring=N         records per trace lane (0 = default)
//
// Binaries call observe_from_flags() to turn the flags into the
// solver-facing obs::ObserveOptions, and the dump_*_if_requested()
// helpers after the run.  bench/bench_common.hpp and tools/svc_cli.hpp
// forward here so the ~25 drivers share one implementation.
#pragma once

#include <cstring>
#include <iostream>
#include <span>
#include <string>

#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "par/counters.hpp"

namespace pfem::exp {

/// True when `name` appears as a bare argument (e.g. has_flag(..,"--full")).
inline bool has_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return true;
  return false;
}

/// Value of `--name=value` (pass name without the '='), or `fallback`.
inline std::string str_flag(int argc, char** argv, const char* name,
                            const std::string& fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return std::string(argv[i] + prefix.size());
  return fallback;
}

inline int int_flag(int argc, char** argv, const char* name, int fallback) {
  const std::string v = str_flag(argc, argv, name, "");
  return v.empty() ? fallback : std::stoi(v);
}

inline double double_flag(int argc, char** argv, const char* name,
                          double fallback) {
  const std::string v = str_flag(argc, argv, name, "");
  return v.empty() ? fallback : std::stod(v);
}

// ---- Observability flags --------------------------------------------------

inline std::string counters_json_path(int argc, char** argv) {
  return str_flag(argc, argv, "--counters-json", "");
}

inline std::string trace_json_path(int argc, char** argv) {
  return str_flag(argc, argv, "--trace-json", "");
}

inline std::string metrics_json_path(int argc, char** argv) {
  return str_flag(argc, argv, "--metrics-json", "");
}

/// True when any flag asks for span data — drivers use this to set
/// observe.trace so spans are recorded at all.
inline bool trace_requested(int argc, char** argv) {
  return !trace_json_path(argc, argv).empty() ||
         !metrics_json_path(argc, argv).empty();
}

/// The solver-facing observe knobs implied by the flags.
inline obs::ObserveOptions observe_from_flags(int argc, char** argv) {
  obs::ObserveOptions o;
  o.trace = trace_requested(argc, argv);
  o.ring_capacity =
      static_cast<std::size_t>(int_flag(argc, argv, "--trace-ring", 0));
  return o;
}

/// When --counters-json=FILE was passed, dump per-rank PerfCounters
/// (typically DistSolve::rank_counters / ::setup_counters) to FILE.
/// Returns false only when the dump was requested and failed, so callers
/// can surface it in the exit code.
inline bool dump_counters_if_requested(
    int argc, char** argv, std::span<const par::PerfCounters> ranks,
    std::span<const par::PerfCounters> setup = {}) {
  const std::string path = counters_json_path(argc, argv);
  if (path.empty()) return true;
  if (!par::dump_counters_json(path, ranks, setup)) {
    std::cerr << "error: could not write counters to " << path << "\n";
    return false;
  }
  std::cout << "per-rank counters written to " << path << "\n";
  return true;
}

/// When --trace-json / --metrics-json were passed, export `trace` to the
/// requested files.  A requested dump with a null trace (the run never
/// recorded spans) or a failed write returns false.
inline bool dump_trace_if_requested(int argc, char** argv,
                                    const obs::Trace* trace) {
  const std::string tpath = trace_json_path(argc, argv);
  const std::string mpath = metrics_json_path(argc, argv);
  if (tpath.empty() && mpath.empty()) return true;
  if (trace == nullptr) {
    std::cerr << "error: trace output requested but the run recorded no "
                 "spans\n";
    return false;
  }
  bool ok = true;
  if (!tpath.empty()) {
    if (obs::write_chrome_trace(tpath, *trace))
      std::cout << "trace written to " << tpath << "\n";
    else {
      std::cerr << "error: could not write trace to " << tpath << "\n";
      ok = false;
    }
  }
  if (!mpath.empty()) {
    if (obs::write_metrics_json(mpath, *trace))
      std::cout << "metrics written to " << mpath << "\n";
    else {
      std::cerr << "error: could not write metrics to " << mpath << "\n";
      ok = false;
    }
  }
  return ok;
}

}  // namespace pfem::exp
