// pfem::svc remote layer — the solve service spoken over a stream
// socket (net::proto), and the shard router that multiplexes many
// clients onto N independent service processes.
//
//   Server — owns a listening socket in front of an existing Service.
//            Per connection: Hello/HelloAck handshake, then SolveRequest
//            frames mapped onto Service::submit and answered in FIFO
//            order per connection.  Any malformed frame closes the
//            connection with a typed reason counted in Stats — the
//            service itself is never exposed to undecoded bytes.
//
//   Client — blocking request/response peer for drivers and tests
//            (pfem_loadgen --connect).  One outstanding request at a
//            time per client; run several clients for concurrency.
//
//   Router — accepts clients like a Server but owns no Service: each
//            SolveRequest frame is forwarded RAW to one of N shard
//            connections with only the req_id rewritten in place (it
//            sits at a fixed offset for exactly this purpose).  Shard
//            choice is operator-cache affinity — hash(operator_key)
//            mod nshards — so repeat keys land on the shard that has
//            the operator built and warm.  A saturated affine shard
//            (>= max_inflight_per_shard in flight) spills to the
//            least-loaded shard; when every shard is saturated the
//            router sheds load itself with a typed Rejected{QueueFull}
//            response, mirroring the service's own admission control.
//            Session traffic (SessionOpen/SessionClose, and any
//            SolveRequest carrying a session id) is PINNED to the
//            affine shard and never spills or sheds at the router: the
//            session's warm state lives in exactly one shard's
//            SessionTable, so sending its requests anywhere else would
//            silently run them cold.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/proto.hpp"
#include "svc/service.hpp"

namespace pfem::svc {

/// Map a wire request onto the in-process request type.  The relative
/// deadline_ns budget is re-anchored on this process's steady clock;
/// restart/max_iters/tol land in opts.  Exposed for tests.
[[nodiscard]] SolveRequest to_solve_request(net::proto::SolveRequestMsg&& m);

/// Map a resolved Outcome onto the wire response.  The solution payload
/// is included only when the request asked for it.  Exposed for tests.
[[nodiscard]] net::proto::SolveResponseMsg to_solve_response(
    std::uint64_t req_id, bool want_solution, Outcome&& outcome);

// ---- Server ---------------------------------------------------------------

class Server {
 public:
  struct Stats {
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;
    std::uint64_t responses = 0;
    std::uint64_t malformed = 0;  ///< connections closed on a bad frame
  };

  /// Listens on "unix:/path" or "tcp:host:port" immediately (throws
  /// pfem::Error when the address cannot be bound).  `svc` must outlive
  /// the server.
  Server(Service& svc, const std::string& listen_addr, std::string name);
  ~Server();  ///< stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Stop accepting, close every connection, join all threads.
  /// Outstanding submitted requests still resolve inside the Service;
  /// their responses are dropped.  Idempotent.
  void stop();

  [[nodiscard]] Stats stats() const;

 private:
  struct Conn;

  void accept_loop();
  void conn_reader(const std::shared_ptr<Conn>& c);
  void conn_harvester(const std::shared_ptr<Conn>& c);

  Service& svc_;
  std::string name_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};

  mutable std::mutex m_;
  std::vector<std::shared_ptr<Conn>> conns_;
  Stats stats_;

  std::thread acceptor_;
};

// ---- Client ---------------------------------------------------------------

class Client {
 public:
  /// Connect (with startup-race retry) and run the Hello handshake.
  /// Throws pfem::Error on connect failure or a malformed handshake.
  Client(const std::string& addr, const std::string& client_name,
         double connect_timeout_seconds = 10.0);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] const std::string& server_name() const noexcept {
    return server_name_;
  }
  [[nodiscard]] int server_nranks() const noexcept { return nranks_; }

  /// Blocking request/response.  Assigns a fresh req_id when req.req_id
  /// is 0.  Returns false when the connection dropped or the peer sent
  /// a malformed frame — the connection is unusable afterwards.
  [[nodiscard]] bool solve(net::proto::SolveRequestMsg& req,
                           net::proto::SolveResponseMsg& resp);

  /// Open a solve session pinned to `operator_key` (blocking).  Returns
  /// the server-assigned handle for SolveRequestMsg::session_id, or 0
  /// when refused (unknown operator) or on a connection error.
  [[nodiscard]] std::uint64_t open_session(const std::string& operator_key);

  /// Close a session (blocking).  The operator key rides along only for
  /// router affinity.  False on unknown session or connection error.
  bool close_session(const std::string& operator_key,
                     std::uint64_t session_id);

 private:
  int fd_ = -1;
  std::string server_name_;
  int nranks_ = 0;
  std::uint64_t next_id_ = 1;
};

// ---- Router ---------------------------------------------------------------

struct RouterConfig {
  std::string listen_addr;
  std::vector<std::string> shard_addrs;
  /// Per-shard in-flight cap before affinity spills to the least-loaded
  /// shard; with every shard at the cap the router rejects locally.
  std::size_t max_inflight_per_shard = 8;
  std::string name = "pfem-router";
  double connect_timeout_seconds = 10.0;
};

class Router {
 public:
  struct Stats {
    std::uint64_t forwarded = 0;  ///< solve requests sent to some shard
    std::uint64_t affinity = 0;   ///< ... to the hash-affine shard
    std::uint64_t spilled = 0;    ///< ... to another (affine saturated)
    std::uint64_t rejected_backpressure = 0;  ///< shed at the router
    std::uint64_t responses = 0;
    /// SessionOpen/SessionClose frames forwarded (always to the key's
    /// affine shard — that is where the session lives).
    std::uint64_t session_frames = 0;
    /// Solve requests carrying a session id: pinned to the affine shard,
    /// bypassing the spill/shed path (the shard's own admission control
    /// is the backstop) so warm per-session state is never stranded on
    /// the wrong shard.
    std::uint64_t session_pinned = 0;
  };

  /// Connects to every shard (handshaking as a client) and starts
  /// listening.  Throws pfem::Error when a shard is unreachable.
  explicit Router(const RouterConfig& cfg);
  ~Router();  ///< stop()

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  void stop();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] int nshards() const noexcept {
    return static_cast<int>(shards_.size());
  }

 private:
  struct Shard;
  struct ClientConn;

  void accept_loop();
  void client_reader(const std::shared_ptr<ClientConn>& c);
  void shard_reader(std::size_t shard_idx);
  /// Affinity-first shard choice under m_; returns npos when all are
  /// saturated.  Sets `spilled` when the affine shard was passed over.
  [[nodiscard]] std::size_t pick_shard(const std::string& operator_key,
                                       bool& spilled);

  RouterConfig cfg_;
  int listen_fd_ = -1;
  int advertised_nranks_ = 0;
  std::atomic<bool> stopping_{false};

  std::vector<std::unique_ptr<Shard>> shards_;

  struct Pending {
    std::shared_ptr<ClientConn> conn;
    std::uint64_t client_req_id = 0;
    std::size_t shard = 0;
    /// True for solve requests (they hold an inflight slot on the
    /// shard); session open/close frames don't count toward load.
    bool counted = true;
  };

  mutable std::mutex m_;
  std::unordered_map<std::uint64_t, Pending> pending_;  ///< by router id
  std::uint64_t next_id_ = 1;
  std::vector<std::shared_ptr<ClientConn>> conns_;
  Stats stats_;

  std::thread acceptor_;
};

}  // namespace pfem::svc
