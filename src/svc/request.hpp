// Request/response types of the solve service (pfem::svc).
//
// A SolveRequest names a *registered operator* by key, carries a batch
// of right-hand sides, and optionally a deadline and a priority.  The
// service answers with exactly one Outcome per request:
//
//   Completed — the batch solved (per-RHS convergence in result.items);
//   Rejected  — typed load shedding: the request never ran (queue full,
//               deadline missed, unknown key, bad request, shutdown);
//   Cancelled — the request was cancelled by the client or unwound as
//               part of a cancelled batch;
//   Failed    — the solve itself threw (e.g. a singular operator).
//
// Rejections are part of the contract, not errors: under overload the
// service sheds load *explicitly* so clients can back off or retry
// elsewhere, instead of queueing without bound.
#pragma once

#include <chrono>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/types.hpp"
#include "core/edd_batch.hpp"
#include "core/fgmres.hpp"

namespace pfem::svc {

using Clock = std::chrono::steady_clock;

enum class Priority { Normal = 0, High = 1 };

struct SolveRequest {
  std::string operator_key;  ///< must be registered with the service
  std::vector<Vector> rhs;   ///< one or more full global RHS vectors
  /// Convergence parameters must match for requests to share a fused
  /// batch; opts.observe is per-request and never blocks coalescing —
  /// observe.progress fires per iteration with *this request's* RHS
  /// index, and observe.trace requests a per-call trace only when the
  /// service has no service-lifetime trace of its own.
  core::SolveOptions opts;
  Priority priority = Priority::Normal;
  /// Absolute deadline.  Checked at admission AND at dispatch, and
  /// enforced mid-solve by the service's watchdog (the batch is
  /// cancelled when its earliest member deadline expires).
  std::optional<Clock::time_point> deadline;
  /// Deterministic-jitter source for this request's retry backoff: the
  /// same seed always replays the same backoff schedule.  0 (default)
  /// falls back to the service-assigned job id.
  std::uint64_t seed = 0;
};

enum class RejectReason {
  QueueFull,         ///< bounded queue at capacity (backpressure)
  DeadlineExceeded,  ///< deadline passed before the solve finished
  UnknownOperator,   ///< operator_key was never registered
  BadRequest,        ///< empty RHS batch or wrong vector length
  ShuttingDown,      ///< service no longer accepting work
};

[[nodiscard]] const char* reject_reason_name(RejectReason r) noexcept;

struct Rejected {
  RejectReason reason;
  std::string detail;
};

struct Completed {
  core::BatchSolveResult result;
  bool cache_hit = false;      ///< operator state came from the cache
  double queue_seconds = 0.0;  ///< admission -> dispatch
  double solve_seconds = 0.0;  ///< dispatch -> done (shared by the batch)
};

struct Cancelled {
  std::string detail;
};

struct Failed {
  std::string error;
  /// True when the failure was a typed communication fault (channel
  /// timeout / crashed team) that survived the retry policy — the
  /// request was never silently lost: this is its typed reason.
  bool comm = false;
  /// On a comm failure, the per-RHS partial reports of the last attempt
  /// (residual histories up to the failure); empty otherwise.
  std::vector<core::SolveReport> partial;
};

using Outcome = std::variant<Completed, Rejected, Cancelled, Failed>;

[[nodiscard]] inline bool ok(const Outcome& o) noexcept {
  return std::holds_alternative<Completed>(o);
}

inline const char* reject_reason_name(RejectReason r) noexcept {
  switch (r) {
    case RejectReason::QueueFull: return "queue_full";
    case RejectReason::DeadlineExceeded: return "deadline_exceeded";
    case RejectReason::UnknownOperator: return "unknown_operator";
    case RejectReason::BadRequest: return "bad_request";
    case RejectReason::ShuttingDown: return "shutting_down";
  }
  return "?";
}

}  // namespace pfem::svc
