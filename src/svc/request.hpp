// Request/response types of the solve service (pfem::svc).
//
// A SolveRequest names a *registered operator* by key, carries a batch
// of right-hand sides, and optionally a deadline and a priority.  The
// service answers with exactly one Outcome per request:
//
//   Completed — the batch solved (per-RHS convergence in result.items);
//   Rejected  — typed load shedding: the request never ran (queue full,
//               deadline missed, unknown key, bad request, shutdown);
//   Cancelled — the request was cancelled by the client or unwound as
//               part of a cancelled batch;
//   Failed    — the solve itself threw (e.g. a singular operator).
//
// Rejections are part of the contract, not errors: under overload the
// service sheds load *explicitly* so clients can back off or retry
// elsewhere, instead of queueing without bound.
#pragma once

#include <chrono>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "core/edd_batch.hpp"
#include "core/fgmres.hpp"

namespace pfem::svc {

using Clock = std::chrono::steady_clock;

enum class Priority { Normal = 0, High = 1 };

/// Handle of a solve session (see svc/session.hpp).  Sessions are
/// service-assigned, dense from 1; 0 is the reserved "no session" value
/// (also the wire encoding of a session-less SolveRequest).
using SessionId = std::uint64_t;
inline constexpr SessionId kNoSession = 0;

struct SolveRequest {
  std::string operator_key;  ///< must be registered with the service
  std::vector<Vector> rhs;   ///< one or more full global RHS vectors
  /// Convergence parameters must match for requests to share a fused
  /// batch; opts.observe is per-request and never blocks coalescing —
  /// observe.progress fires per iteration with *this request's* RHS
  /// index, and observe.trace requests a per-call trace only when the
  /// service has no service-lifetime trace of its own.  opts.recycle is
  /// service-owned on this path (like deflation, which is operator
  /// state): the service overwrites it from the request's session —
  /// open_session/close_session is the recycling API.
  core::SolveOptions opts;
  Priority priority = Priority::Normal;
  /// Absolute deadline.  Checked at admission AND at dispatch, and
  /// enforced mid-solve by the service's watchdog (the batch is
  /// cancelled when its earliest member deadline expires).
  std::optional<Clock::time_point> deadline;
  /// Deterministic-jitter source for this request's retry backoff: the
  /// same seed always replays the same backoff schedule.  0 (default)
  /// derives the seed from *request content* — mix64 over the operator
  /// key hash, the session id and the per-key dispatch sequence — so a
  /// replayed stream (e.g. `pfem_loadgen --replay`) sees identical
  /// backoff schedules run-to-run.  (It used to fall back to the
  /// service-assigned job id, which differs across replays.)
  std::uint64_t seed = 0;
  /// Session handle from Service::open_session, or kNoSession.  A
  /// session request warm-starts from the session's previous solution,
  /// projects its recycled directions, and deposits this solve's state
  /// back on completion.  The session must be pinned to the SAME
  /// operator_key (else Rejected{BadRequest}); an unknown id is
  /// Rejected{UnknownSession}.  At most one request per session joins a
  /// fused batch, so deposits keep a well-defined order.
  SessionId session = kNoSession;
};

/// Defined in common/status.hpp (one home for cross-layer status enums,
/// with wire-stable values); re-exported here so service call sites
/// keep the subsystem-local spelling.
using RejectReason = status::RejectReason;

[[nodiscard]] constexpr const char* reject_reason_name(
    RejectReason r) noexcept {
  return status::name(r);
}

struct Rejected {
  RejectReason reason;
  std::string detail;
};

struct Completed {
  core::BatchSolveResult result;
  bool cache_hit = false;      ///< operator state came from the cache
  double queue_seconds = 0.0;  ///< admission -> dispatch
  double solve_seconds = 0.0;  ///< dispatch -> done (shared by the batch)
};

struct Cancelled {
  std::string detail;
};

/// Defined in common/status.hpp; re-exported like RejectReason.
using FailReason = status::FailReason;

[[nodiscard]] constexpr const char* fail_reason_name(FailReason r) noexcept {
  return status::name(r);
}

struct Failed {
  std::string error;
  /// Typed reason: BadOperator for a degenerate/misconfigured operator
  /// caught at build (request-scoped — the recipe stays registered, the
  /// cache is not polluted, the shard keeps serving), CommFailure for a
  /// communication fault that survived the retry policy, SolveError
  /// otherwise.
  FailReason reason = FailReason::SolveError;
  /// True when the failure was a typed communication fault (channel
  /// timeout / crashed team) that survived the retry policy — the
  /// request was never silently lost.  Mirrors
  /// reason == FailReason::CommFailure (kept for wire/JSON callers).
  bool comm = false;
  /// On a comm failure, the per-RHS partial reports of the last attempt
  /// (residual histories up to the failure); empty otherwise.
  std::vector<core::SolveReport> partial;
};

using Outcome = std::variant<Completed, Rejected, Cancelled, Failed>;

[[nodiscard]] inline bool ok(const Outcome& o) noexcept {
  return std::holds_alternative<Completed>(o);
}

}  // namespace pfem::svc
