#include "svc/service.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/error.hpp"

namespace pfem::svc {

namespace {

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Requests may only share a fused batch when every per-RHS convergence
/// parameter matches — the batch solve runs one option set.
bool compatible_opts(const core::SolveOptions& a, const core::SolveOptions& b) {
  return a.restart == b.restart && a.max_iters == b.max_iters &&
         a.tol == b.tol && a.reorthogonalize == b.reorthogonalize;
}

}  // namespace

std::unique_ptr<par::Team> Service::make_team() const {
  auto team = std::make_unique<par::Team>(cfg_.nranks);
  if (cfg_.comm_timeout_seconds > 0.0)
    team->set_comm_timeout(cfg_.comm_timeout_seconds);
  if (cfg_.fault_injector != nullptr)
    team->set_fault_injector(cfg_.fault_injector);
  return team;
}

Service::Service(const ServiceConfig& cfg)
    : cfg_(cfg),
      cache_(cfg.cache_capacity, cfg.kernels, cfg.deflation),
      sessions_(cfg.session_capacity, cfg.session_max_directions),
      queue_(cfg.queue_capacity) {
  PFEM_CHECK_MSG(cfg_.max_batch_rhs >= 1, "max_batch_rhs must be >= 1");
  PFEM_CHECK_MSG(cfg_.retry.max_attempts >= 1,
                 "retry.max_attempts must be >= 1");
  // Memory-pressure coherence: losing a built operator to the cache's
  // LRU also drops the warm state of every session pinned to it (the
  // handles survive; those sessions just run cold next time).
  cache_.set_evict_callback([this](const std::string& key) {
    const std::size_t n = sessions_.evict_for_operator(key);
    if (n > 0) {
      std::scoped_lock lock(m_);
      stats_.sessions_evicted += n;
    }
  });
  team_ = make_team();
  if (cfg_.observe.trace)
    trace_ = std::make_unique<obs::Trace>(cfg_.nranks,
                                          cfg_.observe.ring_capacity);
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

Service::~Service() { shutdown(/*drain=*/false); }

void Service::register_operator(
    const std::string& key,
    std::shared_ptr<const partition::EddPartition> part,
    const core::PolySpec& poly,
    std::shared_ptr<const std::vector<sparse::CsrMatrix>> local_matrices,
    std::optional<core::DeflationOptions> deflation) {
  PFEM_CHECK_MSG(part != nullptr, "register_operator: null partition");
  PFEM_CHECK_MSG(part->nparts() == cfg_.nranks,
                 "register_operator: partition has " << part->nparts()
                 << " parts, service team has " << cfg_.nranks);
  // Validate a per-key coarse-space override at REGISTRATION, where the
  // partition's dof layout is in hand — a mismatch is a caller bug the
  // client should see immediately, not a deferred build failure.
  if (deflation)
    core::validate_deflation(*deflation, part->n_global);
  cache_.register_operator(key, std::move(part), poly,
                           std::move(local_matrices), std::move(deflation));
}

void Service::update_operator(
    const std::string& key,
    std::shared_ptr<const std::vector<sparse::CsrMatrix>> local_matrices) {
  cache_.update_operator(key, std::move(local_matrices));
}

SessionId Service::open_session(const std::string& operator_key) {
  if (!cache_.contains(operator_key)) return kNoSession;
  const SessionId id = sessions_.open(operator_key);
  std::scoped_lock lock(m_);
  ++stats_.sessions_opened;
  return id;
}

bool Service::close_session(SessionId id) {
  if (!sessions_.close(id)) return false;
  std::scoped_lock lock(m_);
  ++stats_.sessions_closed;
  return true;
}

Service::Submitted Service::reject_now(PendingJob job, RejectReason reason,
                                       std::string detail) {
  Submitted out;
  out.id = job.id;
  out.outcome = job.promise.get_future();
  resolve(job, Rejected{reason, std::move(detail)});
  return out;
}

Service::Submitted Service::submit(SolveRequest req) {
  PendingJob job;
  job.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  job.submit_time = Clock::now();
  job.req = std::move(req);

  bool accepting;
  {
    std::scoped_lock lock(m_);
    ++stats_.submitted;
    accepting = accepting_;
  }
  if (!accepting)
    return reject_now(std::move(job), RejectReason::ShuttingDown,
                      "service is shutting down");

  const auto part = cache_.partition_of(job.req.operator_key);
  if (part == nullptr)
    return reject_now(std::move(job), RejectReason::UnknownOperator,
                      "operator '" + job.req.operator_key +
                          "' is not registered");
  if (job.req.session != kNoSession) {
    const auto skey = sessions_.operator_key_of(job.req.session);
    if (!skey)
      return reject_now(std::move(job), RejectReason::UnknownSession,
                        "session " + std::to_string(job.req.session) +
                            " is not open");
    if (*skey != job.req.operator_key)
      return reject_now(std::move(job), RejectReason::BadRequest,
                        "session is pinned to operator '" + *skey +
                            "' but the request names '" +
                            job.req.operator_key + "'");
  }
  if (job.req.rhs.empty())
    return reject_now(std::move(job), RejectReason::BadRequest,
                      "empty RHS batch");
  for (const Vector& f : job.req.rhs)
    if (f.size() != static_cast<std::size_t>(part->n_global))
      return reject_now(std::move(job), RejectReason::BadRequest,
                        "RHS length does not match the operator's dof count");
  if (job.req.deadline && *job.req.deadline <= Clock::now())
    return reject_now(std::move(job), RejectReason::DeadlineExceeded,
                      "deadline expired before admission");

  Submitted out;
  out.id = job.id;
  out.outcome = job.promise.get_future();
  const Priority prio = job.req.priority;
  if (!queue_.try_push(std::move(job), prio)) {
    // try_push only moves from the job on success, so on refusal the
    // promise is still ours to resolve.
    resolve(job, Rejected{RejectReason::QueueFull,
                          "queue at capacity (" +
                              std::to_string(queue_.capacity()) + ")"});
  }
  return out;
}

bool Service::cancel(JobId id) {
  auto queued =
      queue_.remove_if([&](const PendingJob& j) { return j.id == id; });
  if (queued) {
    resolve(*queued, Cancelled{"cancelled by client while queued"});
    return true;
  }
  std::scoped_lock lock(m_);
  if (std::find(running_.begin(), running_.end(), id) != running_.end()) {
    running_cancelled_.push_back(id);
    team_->cancel();  // cooperative: ranks unwind at their next comm call
    return true;
  }
  return false;
}

void Service::set_paused(bool paused) {
  {
    std::scoped_lock lock(m_);
    paused_ = paused;
  }
  pause_cv_.notify_all();
}

void Service::shutdown(bool drain) {
  {
    std::scoped_lock lock(m_);
    accepting_ = false;
    paused_ = false;
  }
  pause_cv_.notify_all();
  if (!drain) {
    auto left = queue_.drain_all();
    for (auto& j : left) resolve(j, Cancelled{"service shutdown"});
  }
  queue_.close();
  if (scheduler_.joinable()) scheduler_.join();
  // A submit that raced the close may have left a straggler behind.
  for (auto& j : queue_.drain_all())
    resolve(j, Cancelled{"service shutdown"});
}

ServiceStats Service::stats() const {
  std::scoped_lock lock(m_);
  return stats_;
}

LatencySnapshot Service::latency() const { return latency_.snapshot(); }

void Service::resolve(PendingJob& job, Outcome outcome) {
  {
    std::scoped_lock lock(m_);
    if (const auto* c = std::get_if<Completed>(&outcome)) {
      ++stats_.completed;
      stats_.rhs_solved += c->result.x.size();
    } else if (const auto* r = std::get_if<Rejected>(&outcome)) {
      if (r->reason == RejectReason::QueueFull)
        ++stats_.rejected_queue_full;
      else if (r->reason == RejectReason::DeadlineExceeded)
        ++stats_.rejected_deadline;
      else
        ++stats_.rejected_other;
    } else if (std::holds_alternative<Cancelled>(outcome)) {
      ++stats_.cancelled;
    } else {
      ++stats_.failed;
    }
  }
  if (ok(outcome))
    latency_.record(seconds_between(job.submit_time, Clock::now()));
  job.promise.set_value(std::move(outcome));
}

void Service::scheduler_loop() {
  for (;;) {
    auto popped = queue_.pop();
    if (!popped) return;  // closed and drained
    {
      std::unique_lock lock(m_);
      pause_cv_.wait(lock, [&] { return !paused_; });
    }
    if (popped->req.deadline && *popped->req.deadline <= Clock::now()) {
      resolve(*popped, Rejected{RejectReason::DeadlineExceeded,
                                "deadline expired while queued"});
      continue;
    }

    std::vector<PendingJob> batch;
    batch.push_back(std::move(*popped));
    const SolveRequest& head = batch.front().req;
    std::size_t rhs_count = head.rhs.size();
    // Batch safety for sessions: at most one request per session joins a
    // fused batch, so every deposit reads the state its predecessor
    // wrote — never a sibling racing it inside the same solve.
    std::vector<SessionId> batch_sessions;
    if (head.session != kNoSession) batch_sessions.push_back(head.session);
    auto more = queue_.drain_matching(
        [&](const PendingJob& j) {
          if (j.req.operator_key != head.operator_key) return false;
          if (!compatible_opts(j.req.opts, head.opts)) return false;
          if (j.req.session != kNoSession &&
              std::find(batch_sessions.begin(), batch_sessions.end(),
                        j.req.session) != batch_sessions.end())
            return false;
          if (rhs_count + j.req.rhs.size() > cfg_.max_batch_rhs) return false;
          rhs_count += j.req.rhs.size();
          if (j.req.session != kNoSession)
            batch_sessions.push_back(j.req.session);
          return true;
        },
        std::numeric_limits<std::size_t>::max());
    for (auto& j : more) {
      if (j.req.deadline && *j.req.deadline <= Clock::now())
        resolve(j, Rejected{RejectReason::DeadlineExceeded,
                            "deadline expired while queued"});
      else
        batch.push_back(std::move(j));
    }
    dispatch_batch(std::move(batch));
  }
}

void Service::dispatch_batch(std::vector<PendingJob> batch) {
  const std::string key = batch.front().req.operator_key;
  const auto part = cache_.partition_of(key);
  PFEM_CHECK(part != nullptr);  // keys are never unregistered

  // The aux lane is written only here, on the scheduler thread: stamp
  // each member's time-in-queue retroactively (the head popped, the
  // rest coalesced into its batch), then cover the dispatch itself.
  obs::Tracer* const aux = trace_ != nullptr ? &trace_->aux() : nullptr;
  const auto t_dispatch = Clock::now();
  if (aux != nullptr) {
    const std::uint64_t t1 = aux->to_ns(t_dispatch);
    for (std::size_t bi = 0; bi < batch.size(); ++bi) {
      const PendingJob& j = batch[bi];
      aux->span_at(bi == 0 ? "queued" : "coalesced", obs::Cat::Svc,
                   aux->to_ns(j.submit_time), t1,
                   static_cast<std::uint32_t>(j.id));
    }
    aux->counter("queue_depth", obs::Cat::Svc,
                 static_cast<double>(queue_.size()));
  }
  OBS_SPAN(aux, "dispatch", obs::Cat::Svc,
           static_cast<std::uint32_t>(batch.front().id));

  // Flatten the batch's RHS; remember each job's slice.
  std::vector<std::size_t> counts;
  counts.reserve(batch.size());
  std::vector<Vector> rhs;
  for (auto& j : batch) {
    counts.push_back(j.req.rhs.size());
    for (auto& f : j.req.rhs) rhs.push_back(std::move(f));
    j.req.rhs.clear();
  }
  if (aux != nullptr)
    aux->counter("batch_rhs", obs::Cat::Svc, static_cast<double>(rhs.size()));

  // Fuse the members' progress callbacks: the batch solve reports with
  // flattened RHS indices; route each to its owning request with a
  // request-local index.  compatible_opts ignores observe, so members
  // may carry different callbacks.
  core::SolveOptions opts = batch.front().req.opts;
  {
    std::vector<std::size_t> offsets(batch.size(), 0);
    for (std::size_t bi = 1; bi < batch.size(); ++bi)
      offsets[bi] = offsets[bi - 1] + counts[bi - 1];
    auto cbs = std::make_shared<
        std::vector<std::function<void(index_t, real_t, std::size_t)>>>();
    cbs->reserve(batch.size());
    bool any = false;
    for (const auto& j : batch) {
      cbs->push_back(j.req.opts.observe.progress);
      if (j.req.opts.observe.progress) any = true;
    }
    if (any)
      opts.observe.progress = [offsets = std::move(offsets),
                               cbs](index_t it, real_t relres, std::size_t b) {
        const auto owner = static_cast<std::size_t>(
            std::upper_bound(offsets.begin(), offsets.end(), b) -
            offsets.begin() - 1);
        if ((*cbs)[owner]) (*cbs)[owner](it, relres, b - offsets[owner]);
      };
    else
      opts.observe.progress = nullptr;
  }

  // Session warm starts + recycling.  The service owns opts.recycle on
  // this path (like deflation, which is operator state): per-request
  // recycle settings are overwritten, sessions are the API.  With no
  // session in the batch, recycle stays disabled and the solve — and
  // its Table-1 exchange counts — is bit-identical to a session-less
  // service.  With sessions present, each member's session lanes land
  // in its flattened RHS slots and harvesting is turned on so the
  // completed solve can deposit fresh directions back.
  opts.recycle = core::RecycleOptions{};
  const bool any_session = std::any_of(
      batch.begin(), batch.end(),
      [](const PendingJob& j) { return j.req.session != kNoSession; });
  if (any_session) {
    auto in = std::make_shared<std::vector<core::RecycleIn>>(rhs.size());
    std::size_t warm = 0;
    std::size_t off = 0;
    for (std::size_t bi = 0; bi < batch.size(); ++bi) {
      const PendingJob& j = batch[bi];
      if (j.req.session != kNoSession) {
        if (auto snap = sessions_.snapshot(j.req.session)) {
          for (std::size_t r = 0;
               r < counts[bi] && r < snap->lanes.size(); ++r) {
            if (!snap->lanes[r].empty()) ++warm;
            (*in)[off + r] = std::move(snap->lanes[r]);
          }
        }
      }
      off += counts[bi];
    }
    opts.recycle.enabled = true;
    opts.recycle.harvest = true;
    opts.recycle.max_directions =
        static_cast<index_t>(cfg_.session_max_directions);
    opts.recycle.in = std::move(in);
    std::scoped_lock lock(m_);
    stats_.warm_rhs += warm;
  }

  {
    std::scoped_lock lock(m_);
    running_.clear();
    running_cancelled_.clear();
    for (const auto& j : batch) running_.push_back(j.id);
    ++stats_.batches;
  }

  const std::optional<Clock::time_point> min_deadline = [&] {
    std::optional<Clock::time_point> d;
    for (const auto& j : batch)
      if (j.req.deadline && (!d || *j.req.deadline < *d)) d = j.req.deadline;
    return d;
  }();

  // Attempt loop: a typed comm failure (injected crash, channel
  // timeout) triggers the retry policy — deterministic-jitter backoff,
  // then a fresh team (faults are one-shot, so the retry marches past
  // whatever killed the last attempt).  The request seed keys the
  // jitter; a zero seed derives it from request CONTENT — operator-key
  // hash, session id, per-key dispatch sequence — never from the
  // service-assigned job id, which differs across replays and would
  // silently break `pfem_loadgen --replay` determinism.
  const int max_attempts = std::max(1, cfg_.retry.max_attempts);
  const std::uint64_t key_seq = dispatch_seq_[key]++;  // scheduler-only
  const std::uint64_t jitter_seed =
      batch.front().req.seed != 0
          ? batch.front().req.seed
          : fault::mix64(fault::fnv1a(key) ^
                         batch.front().req.session * 0x9e3779b97f4a7c15ULL ^
                         key_seq);

  core::BatchSolveResult result;
  bool was_cancelled = false;
  bool failed = false;
  FailReason fail_reason = FailReason::SolveError;
  std::string failure;
  std::string comm_error;
  bool cache_hit = false;
  double solve_total = 0.0;
  const auto t_solve0 = Clock::now();
  int attempt = 0;

  for (;; ++attempt) {
    comm_error.clear();
    std::shared_ptr<const core::EddOperatorState> op;
    bool hit = false;
    try {
      std::tie(op, hit) = cache_.get_or_build(key, *team_, trace_.get());
    } catch (const par::CommError& e) {
      comm_error = e.what();  // the build itself died on the wire: retryable
    } catch (const BadOperatorError& e) {
      // Degenerate operator (zero row under norm-1 scaling) or a
      // coarse-space/operator mismatch: deterministic, so never retried.
      // get_or_build stores nothing on a throw, so the cache holds no
      // poisoned state and the failure stays request-scoped — the next
      // request on a healthy key proceeds normally.
      failed = true;
      fail_reason = FailReason::BadOperator;
      failure = std::string("operator build failed: ") + e.what();
      break;
    } catch (const std::exception& e) {
      failed = true;
      failure = std::string("operator build failed: ") + e.what();
      break;
    }
    if (attempt == 0) {
      cache_hit = hit;
      std::scoped_lock lock(m_);
      if (hit)
        ++stats_.cache_hits;
      else
        ++stats_.cache_misses;
    }

    if (comm_error.empty()) {
      // Deadline watchdog: one helper thread armed with the batch's
      // earliest deadline; it either gets signalled when the solve
      // finishes or fires team cancel, unwinding every rank through the
      // abort path.  Joined before the attempt resolves, so a late
      // cancel can never leak into a later attempt or batch (Team::run
      // also clears any stale cancel on entry).
      std::mutex wd_m;
      std::condition_variable wd_cv;
      bool batch_done = false;
      std::thread watchdog;
      if (min_deadline)
        watchdog = std::thread([&] {
          std::unique_lock lock(wd_m);
          if (!wd_cv.wait_until(lock, *min_deadline,
                                [&] { return batch_done; }))
            team_->cancel();
        });

      const auto t0 = Clock::now();
      try {
        result =
            core::solve_edd_batch(*team_, *part, *op, rhs, opts, trace_.get());
      } catch (const par::Cancelled&) {
        was_cancelled = true;
      } catch (const BadOperatorError& e) {
        // Degenerate operator first surfacing at solve time (e.g. a
        // per-solve coarse-space rebuild): deterministic, never retried.
        failed = true;
        fail_reason = FailReason::BadOperator;
        failure = e.what();
      } catch (const std::exception& e) {
        failed = true;
        failure = e.what();
      }
      if (watchdog.joinable()) {
        {
          std::scoped_lock lock(wd_m);
          batch_done = true;
        }
        wd_cv.notify_one();
        watchdog.join();
      }
      solve_total += seconds_between(t0, Clock::now());
      if (failed || was_cancelled) break;
      if (!result.comm_failed()) break;  // solved (or typed per-RHS stall)
      comm_error = result.comm_error;
    }

    {
      std::scoped_lock lock(m_);
      ++stats_.comm_failures;
    }
    if (attempt + 1 >= max_attempts) break;  // policy exhausted

    // Backoff, interruptible by shutdown (never sleep past a close).
    const double delay = fault::backoff_seconds(
        cfg_.retry.base_backoff_seconds, cfg_.retry.max_backoff_seconds,
        attempt, jitter_seed);
    const auto b0 = Clock::now();
    bool shutting_down;
    {
      std::unique_lock lock(m_);
      ++stats_.retries;
      shutting_down =
          pause_cv_.wait_for(lock, std::chrono::duration<double>(delay),
                             [&] { return !accepting_; });
    }
    if (aux != nullptr)
      aux->span_at("retry", obs::Cat::Fault, aux->to_ns(b0),
                   aux->to_ns(Clock::now()),
                   static_cast<std::uint32_t>(batch.front().id));
    if (shutting_down) break;  // resolves as the typed comm failure below

    // A client cancel that landed while the attempt was failing or
    // during the backoff cancels the batch instead of retrying it.
    {
      std::scoped_lock lock(m_);
      if (!running_cancelled_.empty()) was_cancelled = true;
    }
    if (was_cancelled) break;

    // Fresh team for the retry: the failed one may hold a dead rank.
    // Swapped under m_ so cancel()'s team_->cancel() never races the
    // replacement.  The operator cache is team-independent, so the
    // rebuilt state (or the cached one) is reused, not rebuilt per try.
    std::scoped_lock lock(m_);
    team_ = make_team();
  }

  std::vector<JobId> explicit_cancels;
  {
    std::scoped_lock lock(m_);
    explicit_cancels = std::move(running_cancelled_);
    running_.clear();
    running_cancelled_.clear();
    stats_.solve_seconds += solve_total;
  }

  if (failed) {
    for (auto& j : batch) {
      Failed f;
      f.error = failure;
      f.reason = fail_reason;
      resolve(j, std::move(f));
    }
    return;
  }
  if (was_cancelled) {
    const auto now = Clock::now();
    for (auto& j : batch) {
      const bool client_cancel =
          std::find(explicit_cancels.begin(), explicit_cancels.end(), j.id) !=
          explicit_cancels.end();
      if (client_cancel)
        resolve(j, Cancelled{"cancelled by client while running"});
      else if (j.req.deadline && *j.req.deadline <= now)
        resolve(j, Rejected{RejectReason::DeadlineExceeded,
                            "deadline expired during solve"});
      else
        resolve(j, Cancelled{"batch cancelled (co-member deadline or "
                             "client cancel)"});
    }
    return;
  }

  if (!comm_error.empty()) {
    // Graceful degradation: the retry policy is exhausted (or the
    // service shut down mid-backoff).  Every member gets the typed comm
    // failure plus its slice of the last attempt's partial reports —
    // never a hang, never a silently dropped request.
    const bool have_items = result.items.size() == rhs.size();
    std::size_t offset = 0;
    for (std::size_t bi = 0; bi < batch.size(); ++bi) {
      PendingJob& j = batch[bi];
      const std::size_t n = counts[bi];
      Failed f;
      f.error = "communication failure after " + std::to_string(attempt + 1) +
                " attempt(s): " + comm_error;
      f.reason = FailReason::CommFailure;
      f.comm = true;
      if (have_items)
        f.partial.assign(
            result.items.begin() + static_cast<std::ptrdiff_t>(offset),
            result.items.begin() + static_cast<std::ptrdiff_t>(offset + n));
      offset += n;
      resolve(j, std::move(f));
    }
    return;
  }

  // Solved: stamp the retry count into the completed counters so the
  // trace/counters cross-check can reconcile "retry" spans.
  for (auto& c : result.rank_counters)
    c.fault_retries = static_cast<std::uint64_t>(attempt);

  std::size_t offset = 0;
  for (std::size_t bi = 0; bi < batch.size(); ++bi) {
    PendingJob& j = batch[bi];
    const std::size_t n = counts[bi];
    Completed c;
    c.result.x.assign(std::make_move_iterator(result.x.begin() +
                                              static_cast<std::ptrdiff_t>(offset)),
                      std::make_move_iterator(result.x.begin() +
                                              static_cast<std::ptrdiff_t>(offset + n)));
    c.result.items.assign(result.items.begin() +
                              static_cast<std::ptrdiff_t>(offset),
                          result.items.begin() +
                              static_cast<std::ptrdiff_t>(offset + n));
    c.result.rank_counters = result.rank_counters;  // shared by the batch
    c.result.wall_seconds = solve_total;
    c.cache_hit = cache_hit;
    c.queue_seconds = seconds_between(j.submit_time, t_solve0);
    c.solve_seconds = solve_total;
    if (j.req.session != kNoSession) {
      // Deposit this solve's state for the session's next request: the
      // solutions become warm starts, the harvested directions extend
      // each lane's ring.  Only completed solves deposit — a failed or
      // cancelled batch leaves the previous (still valid) state alone.
      std::vector<std::vector<Vector>> harvested;
      if (result.recycled.size() >= offset + n)
        harvested.assign(
            result.recycled.begin() + static_cast<std::ptrdiff_t>(offset),
            result.recycled.begin() + static_cast<std::ptrdiff_t>(offset + n));
      const std::size_t evicted =
          sessions_.deposit(j.req.session, c.result.x, harvested);
      if (evicted > 0) {
        std::scoped_lock lock(m_);
        stats_.sessions_evicted += evicted;
      }
    }
    offset += n;
    resolve(j, std::move(c));
  }
}

}  // namespace pfem::svc
