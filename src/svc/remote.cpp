#include "svc/remote.hpp"

#include <algorithm>
#include <functional>

#include "net/sockets.hpp"

namespace pfem::svc {

namespace proto = net::proto;

namespace {

constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);

/// Detail strings on the wire are bounded well under the decoder's
/// string cap so a pathological error message never poisons a frame.
constexpr std::size_t kMaxDetailBytes = 4096;

void store_u64_le(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    p[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
}

[[nodiscard]] std::uint64_t load_u64_le(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(p[i]) << (8 * i);
  return v;
}

/// Read one complete frame.  Returns true with st==Ok on success;
/// false with st==Ok on a clean close before the header; false with
/// st!=Ok on anything malformed (bad header, mid-frame EOF, socket
/// error) — callers count the latter and close the connection.
[[nodiscard]] bool read_frame(int fd, proto::ProtoHeader& h,
                              std::vector<unsigned char>& body,
                              proto::DecodeStatus& st) {
  st = proto::DecodeStatus::Ok;
  unsigned char hdr[proto::kProtoHeaderBytes];
  try {
    if (!net::read_full(fd, hdr, sizeof hdr)) return false;
    st = proto::decode_header({hdr, sizeof hdr}, h);
    if (st != proto::DecodeStatus::Ok) return false;
    body.resize(h.body_len);
    if (h.body_len != 0 && !net::read_full(fd, body.data(), body.size())) {
      st = proto::DecodeStatus::Truncated;
      return false;
    }
  } catch (const std::exception&) {
    st = proto::DecodeStatus::Truncated;
    return false;
  }
  return true;
}

/// Serialized write of one encoded frame; false on a dead peer (the
/// caller's reader will notice and unwind — no throw escapes).
[[nodiscard]] bool write_buf(int fd, std::mutex& m,
                             const net::ByteBuffer& buf) {
  std::lock_guard<std::mutex> lk(m);
  try {
    return net::write_full(fd, buf.data(), buf.size());
  } catch (const std::exception&) {
    return false;
  }
}

/// Re-emit a raw frame (header rebuilt around the possibly-rewritten
/// body) — the router's forwarding path.
void emit_raw_frame(net::ByteBuffer& out, std::uint16_t type,
                    const std::vector<unsigned char>& body) {
  out.clear();
  out.reserve(proto::kProtoHeaderBytes + body.size());
  net::put_u32(out, proto::kProtoMagic);
  net::put_u16(out, proto::kProtoVersion);
  net::put_u16(out, type);
  net::put_u64(out, body.size());
  net::put_bytes(out, body.data(), body.size());
}

void clip_detail(std::string& s) {
  if (s.size() > kMaxDetailBytes) s.resize(kMaxDetailBytes);
}

}  // namespace

SolveRequest to_solve_request(proto::SolveRequestMsg&& m) {
  SolveRequest req;
  req.operator_key = std::move(m.operator_key);
  req.rhs = std::move(m.rhs);
  req.opts.restart = m.restart;
  req.opts.max_iters = m.max_iters;
  req.opts.tol = m.tol;
  req.priority = m.priority != 0 ? Priority::High : Priority::Normal;
  req.seed = m.seed;
  req.session = m.session_id;
  // Relative budget re-anchored on this process's steady clock: wall
  // clocks of client and server need not agree.
  if (m.deadline_ns != 0)
    req.deadline = Clock::now() + std::chrono::nanoseconds(m.deadline_ns);
  return req;
}

proto::SolveResponseMsg to_solve_response(std::uint64_t req_id,
                                          bool want_solution,
                                          Outcome&& outcome) {
  proto::SolveResponseMsg resp;
  resp.req_id = req_id;
  if (auto* c = std::get_if<Completed>(&outcome)) {
    resp.status = proto::SolveStatus::Completed;
    resp.cache_hit = c->cache_hit;
    resp.queue_seconds = c->queue_seconds;
    resp.solve_seconds = c->solve_seconds;
    resp.items.reserve(c->result.items.size());
    for (const auto& it : c->result.items)
      resp.items.push_back({it.converged, it.breakdown,
                            static_cast<std::int32_t>(it.iterations),
                            it.final_relres});
    if (want_solution) resp.solution = std::move(c->result.x);
  } else if (auto* r = std::get_if<Rejected>(&outcome)) {
    resp.status = proto::SolveStatus::Rejected;
    resp.reject_reason = static_cast<std::uint32_t>(r->reason);
    resp.detail = std::move(r->detail);
  } else if (auto* cc = std::get_if<Cancelled>(&outcome)) {
    resp.status = proto::SolveStatus::Cancelled;
    resp.detail = std::move(cc->detail);
  } else {
    auto& f = std::get<Failed>(outcome);
    resp.status = proto::SolveStatus::Failed;
    resp.detail = std::move(f.error);
    resp.comm = f.comm;
    // The last attempt's per-RHS partial reports ride along as items.
    resp.items.reserve(f.partial.size());
    for (const auto& it : f.partial)
      resp.items.push_back({it.converged, it.breakdown,
                            static_cast<std::int32_t>(it.iterations),
                            it.final_relres});
  }
  clip_detail(resp.detail);
  return resp;
}

// ---- Server ---------------------------------------------------------------

struct Server::Conn {
  int fd = -1;
  std::mutex write_m;

  struct PendingResp {
    std::uint64_t req_id = 0;
    bool want_solution = false;
    std::future<Outcome> fut;
  };
  std::mutex m;
  std::condition_variable cv;
  std::deque<PendingResp> q;  ///< FIFO: response order == request order
  bool closed = false;        ///< reader finished; harvester drains + exits

  std::thread reader;
  std::thread harvester;
};

Server::Server(Service& svc, const std::string& listen_addr,
               std::string name)
    : svc_(svc), name_(std::move(name)) {
  listen_fd_ = net::listen_on(listen_addr);
  acceptor_ = std::thread([this] { accept_loop(); });
}

Server::~Server() { stop(); }

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = -1;
    try {
      fd = net::accept_conn(listen_fd_);
    } catch (const std::exception&) {
      break;
    }
    if (fd < 0) break;  // listening socket shut down
    auto c = std::make_shared<Conn>();
    c->fd = fd;
    {
      std::lock_guard<std::mutex> lk(m_);
      if (stopping_.load(std::memory_order_acquire)) {
        net::close_fd(fd);
        break;
      }
      conns_.push_back(c);
      ++stats_.connections;
    }
    c->reader = std::thread([this, c] { conn_reader(c); });
    c->harvester = std::thread([this, c] { conn_harvester(c); });
  }
}

void Server::conn_reader(const std::shared_ptr<Conn>& c) {
  bool malformed = false;
  bool greeted = false;
  for (;;) {
    proto::ProtoHeader h;
    std::vector<unsigned char> body;
    proto::DecodeStatus st;
    if (!read_frame(c->fd, h, body, st)) {
      malformed = st != proto::DecodeStatus::Ok;
      break;
    }
    const auto type = static_cast<proto::MsgType>(h.type);
    if (!greeted) {
      proto::HelloMsg hello;
      if (type != proto::MsgType::Hello ||
          proto::decode_hello(body, hello) != proto::DecodeStatus::Ok) {
        malformed = true;
        break;
      }
      greeted = true;
      net::ByteBuffer out;
      proto::encode_hello_ack(out, {name_, svc_.nranks()});
      if (!write_buf(c->fd, c->write_m, out)) break;
      continue;
    }
    if (type == proto::MsgType::SessionOpen) {
      // Session control frames are handled inline on the reader thread
      // (no solve work, no future): the ack is written directly, and
      // write_m keeps it serialized against the harvester's responses.
      proto::SessionOpenMsg m;
      if (proto::decode_session_open(body, m) != proto::DecodeStatus::Ok) {
        malformed = true;
        break;
      }
      proto::SessionAckMsg ack;
      ack.req_id = m.req_id;
      ack.session_id = svc_.open_session(m.operator_key);
      if (ack.session_id == kNoSession)
        ack.detail = "operator '" + m.operator_key + "' is not registered";
      clip_detail(ack.detail);
      net::ByteBuffer out;
      proto::encode_session_ack(out, ack);
      if (!write_buf(c->fd, c->write_m, out)) break;
      continue;
    }
    if (type == proto::MsgType::SessionClose) {
      proto::SessionCloseMsg m;
      if (proto::decode_session_close(body, m) != proto::DecodeStatus::Ok) {
        malformed = true;
        break;
      }
      proto::SessionAckMsg ack;
      ack.req_id = m.req_id;
      ack.session_id = svc_.close_session(m.session_id) ? m.session_id : 0;
      if (ack.session_id == 0) ack.detail = "unknown session";
      net::ByteBuffer out;
      proto::encode_session_ack(out, ack);
      if (!write_buf(c->fd, c->write_m, out)) break;
      continue;
    }
    if (type != proto::MsgType::SolveRequest) {
      malformed = true;
      break;
    }
    proto::SolveRequestMsg msg;
    if (proto::decode_solve_request(body, msg) != proto::DecodeStatus::Ok) {
      malformed = true;
      break;
    }
    const std::uint64_t req_id = msg.req_id;
    const bool want = msg.want_solution;
    // submit() never blocks and the future always resolves — admission
    // rejections come back pre-resolved and flow out as typed Rejected.
    Service::Submitted sub = svc_.submit(to_solve_request(std::move(msg)));
    {
      std::lock_guard<std::mutex> lk(m_);
      ++stats_.requests;
    }
    {
      std::lock_guard<std::mutex> lk(c->m);
      c->q.push_back({req_id, want, std::move(sub.outcome)});
    }
    c->cv.notify_one();
  }
  if (malformed) {
    std::lock_guard<std::mutex> lk(m_);
    ++stats_.malformed;
  }
  net::shutdown_fd(c->fd);
  {
    std::lock_guard<std::mutex> lk(c->m);
    c->closed = true;
  }
  c->cv.notify_one();
}

void Server::conn_harvester(const std::shared_ptr<Conn>& c) {
  for (;;) {
    Conn::PendingResp p;
    {
      std::unique_lock<std::mutex> lk(c->m);
      c->cv.wait(lk, [&] { return c->closed || !c->q.empty(); });
      if (c->q.empty()) return;  // closed and drained
      p = std::move(c->q.front());
      c->q.pop_front();
    }
    Outcome o = p.fut.get();
    net::ByteBuffer out;
    proto::encode_solve_response(
        out, to_solve_response(p.req_id, p.want_solution, std::move(o)));
    if (write_buf(c->fd, c->write_m, out)) {
      std::lock_guard<std::mutex> lk(m_);
      ++stats_.responses;
    }
  }
}

void Server::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  net::shutdown_fd(listen_fd_);
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lk(m_);
    conns = conns_;
  }
  for (const auto& c : conns) net::shutdown_fd(c->fd);
  for (const auto& c : conns) {
    if (c->reader.joinable()) c->reader.join();
    // Joins until every submitted request resolved inside the Service —
    // shut the Service down (or drain it) before stopping the Server if
    // you need a bound on this wait.
    if (c->harvester.joinable()) c->harvester.join();
    net::close_fd(c->fd);
  }
  net::close_fd(listen_fd_);
}

Server::Stats Server::stats() const {
  std::lock_guard<std::mutex> lk(m_);
  return stats_;
}

// ---- Client ---------------------------------------------------------------

Client::Client(const std::string& addr, const std::string& client_name,
               double connect_timeout_seconds) {
  fd_ = net::connect_to(addr, connect_timeout_seconds);
  net::ByteBuffer out;
  proto::encode_hello(out, {client_name});
  bool ok = false;
  try {
    ok = net::write_full(fd_, out.data(), out.size());
    if (ok) {
      proto::ProtoHeader h;
      std::vector<unsigned char> body;
      proto::DecodeStatus st;
      proto::HelloAckMsg ack;
      ok = read_frame(fd_, h, body, st) &&
           static_cast<proto::MsgType>(h.type) == proto::MsgType::HelloAck &&
           proto::decode_hello_ack(body, ack) == proto::DecodeStatus::Ok;
      if (ok) {
        server_name_ = std::move(ack.server_name);
        nranks_ = ack.nranks;
      }
    }
  } catch (const std::exception&) {
    ok = false;
  }
  if (!ok) {
    net::close_fd(fd_);
    fd_ = -1;
    throw Error("svc::Client: handshake with " + addr + " failed");
  }
}

Client::~Client() {
  if (fd_ >= 0) net::close_fd(fd_);
}

bool Client::solve(proto::SolveRequestMsg& req,
                   proto::SolveResponseMsg& resp) {
  if (fd_ < 0) return false;
  if (req.req_id == 0) req.req_id = next_id_++;
  net::ByteBuffer out;
  proto::encode_solve_request(out, req);
  try {
    if (!net::write_full(fd_, out.data(), out.size())) return false;
    proto::ProtoHeader h;
    std::vector<unsigned char> body;
    proto::DecodeStatus st;
    if (!read_frame(fd_, h, body, st)) return false;
    if (static_cast<proto::MsgType>(h.type) != proto::MsgType::SolveResponse)
      return false;
    if (proto::decode_solve_response(body, resp) != proto::DecodeStatus::Ok)
      return false;
  } catch (const std::exception&) {
    return false;
  }
  // One outstanding request per client: FIFO means the next response
  // is ours; a mismatched id marks the connection unusable.
  return resp.req_id == req.req_id;
}

std::uint64_t Client::open_session(const std::string& operator_key) {
  if (fd_ < 0) return 0;
  proto::SessionOpenMsg req{next_id_++, operator_key};
  net::ByteBuffer out;
  proto::encode_session_open(out, req);
  proto::SessionAckMsg ack;
  try {
    if (!net::write_full(fd_, out.data(), out.size())) return 0;
    proto::ProtoHeader h;
    std::vector<unsigned char> body;
    proto::DecodeStatus st;
    if (!read_frame(fd_, h, body, st) ||
        static_cast<proto::MsgType>(h.type) != proto::MsgType::SessionAck ||
        proto::decode_session_ack(body, ack) != proto::DecodeStatus::Ok)
      return 0;
  } catch (const std::exception&) {
    return 0;
  }
  return ack.req_id == req.req_id ? ack.session_id : 0;
}

bool Client::close_session(const std::string& operator_key,
                           std::uint64_t session_id) {
  if (fd_ < 0 || session_id == 0) return false;
  proto::SessionCloseMsg req{next_id_++, operator_key, session_id};
  net::ByteBuffer out;
  proto::encode_session_close(out, req);
  proto::SessionAckMsg ack;
  try {
    if (!net::write_full(fd_, out.data(), out.size())) return false;
    proto::ProtoHeader h;
    std::vector<unsigned char> body;
    proto::DecodeStatus st;
    if (!read_frame(fd_, h, body, st) ||
        static_cast<proto::MsgType>(h.type) != proto::MsgType::SessionAck ||
        proto::decode_session_ack(body, ack) != proto::DecodeStatus::Ok)
      return false;
  } catch (const std::exception&) {
    return false;
  }
  return ack.req_id == req.req_id && ack.session_id == session_id;
}

// ---- Router ---------------------------------------------------------------

struct Router::Shard {
  int fd = -1;
  std::string name;
  int nranks = 0;
  std::mutex write_m;
  std::size_t inflight = 0;  ///< guarded by Router::m_
  std::thread reader;
};

struct Router::ClientConn {
  int fd = -1;
  std::mutex write_m;
  std::atomic<bool> alive{true};
  std::thread reader;
};

Router::Router(const RouterConfig& cfg) : cfg_(cfg) {
  PFEM_CHECK_MSG(!cfg_.shard_addrs.empty(), "router needs >= 1 shard");
  PFEM_CHECK_MSG(cfg_.max_inflight_per_shard > 0,
                 "max_inflight_per_shard must be positive");
  for (const std::string& addr : cfg_.shard_addrs) {
    auto sh = std::make_unique<Shard>();
    sh->fd = net::connect_to(addr, cfg_.connect_timeout_seconds);
    net::ByteBuffer out;
    proto::encode_hello(out, {cfg_.name});
    proto::ProtoHeader h;
    std::vector<unsigned char> body;
    proto::DecodeStatus st;
    proto::HelloAckMsg ack;
    const bool ok =
        net::write_full(sh->fd, out.data(), out.size()) &&
        read_frame(sh->fd, h, body, st) &&
        static_cast<proto::MsgType>(h.type) == proto::MsgType::HelloAck &&
        proto::decode_hello_ack(body, ack) == proto::DecodeStatus::Ok;
    if (!ok) {
      net::close_fd(sh->fd);
      for (const auto& s : shards_) net::close_fd(s->fd);
      throw Error("svc::Router: shard handshake with " + addr + " failed");
    }
    sh->name = std::move(ack.server_name);
    sh->nranks = ack.nranks;
    shards_.push_back(std::move(sh));
  }
  advertised_nranks_ = shards_.front()->nranks;
  listen_fd_ = net::listen_on(cfg_.listen_addr);
  for (std::size_t i = 0; i < shards_.size(); ++i)
    shards_[i]->reader = std::thread([this, i] { shard_reader(i); });
  acceptor_ = std::thread([this] { accept_loop(); });
}

Router::~Router() { stop(); }

std::size_t Router::pick_shard(const std::string& operator_key,
                               bool& spilled) {
  // Caller holds m_.  Affinity first: repeat keys land on the shard
  // whose OperatorCache already holds the built operator.
  spilled = false;
  const std::size_t affine =
      std::hash<std::string>{}(operator_key) % shards_.size();
  if (shards_[affine]->inflight < cfg_.max_inflight_per_shard)
    return affine;
  std::size_t best = kNoShard;
  std::size_t best_load = cfg_.max_inflight_per_shard;
  for (std::size_t i = 0; i < shards_.size(); ++i)
    if (shards_[i]->inflight < best_load) {
      best_load = shards_[i]->inflight;
      best = i;
    }
  spilled = best != kNoShard;
  return best;
}

void Router::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = -1;
    try {
      fd = net::accept_conn(listen_fd_);
    } catch (const std::exception&) {
      break;
    }
    if (fd < 0) break;
    auto c = std::make_shared<ClientConn>();
    c->fd = fd;
    {
      std::lock_guard<std::mutex> lk(m_);
      if (stopping_.load(std::memory_order_acquire)) {
        net::close_fd(fd);
        break;
      }
      conns_.push_back(c);
    }
    c->reader = std::thread([this, c] { client_reader(c); });
  }
}

void Router::client_reader(const std::shared_ptr<ClientConn>& c) {
  bool greeted = false;
  net::ByteBuffer out;
  for (;;) {
    proto::ProtoHeader h;
    std::vector<unsigned char> body;
    proto::DecodeStatus st;
    if (!read_frame(c->fd, h, body, st)) break;
    const auto type = static_cast<proto::MsgType>(h.type);
    if (!greeted) {
      proto::HelloMsg hello;
      if (type != proto::MsgType::Hello ||
          proto::decode_hello(body, hello) != proto::DecodeStatus::Ok)
        break;
      greeted = true;
      out.clear();
      proto::encode_hello_ack(out, {cfg_.name, advertised_nranks_});
      if (!write_buf(c->fd, c->write_m, out)) break;
      continue;
    }
    const bool is_solve = type == proto::MsgType::SolveRequest;
    const bool is_session_frame = type == proto::MsgType::SessionOpen ||
                                  type == proto::MsgType::SessionClose;
    if (!is_solve && !is_session_frame) break;
    // Peek only req_id + operator_key (+ the session id a SolveRequest
    // encodes right after the key); the rest of the body is opaque and
    // forwarded raw.  Every session-capable request type shares this
    // prefix by design.
    net::ByteReader r({body.data(), body.size()});
    std::uint64_t client_id = 0;
    std::uint32_t keylen = 0;
    std::string key;
    if (!r.get_u64(client_id) || !r.get_u32(keylen) ||
        keylen > (1u << 16) || !r.get_string(key, keylen))
      break;
    std::uint64_t session_id = 0;
    if (is_solve && !r.get_u64(session_id)) break;
    // Session traffic is PINNED: the session's warm state lives in the
    // affine shard's SessionTable, so open/close and session solves go
    // there unconditionally — never spilled, never shed at the router
    // (the shard's own admission control is the backstop).
    const bool pinned = is_session_frame || session_id != 0;
    std::size_t shard = kNoShard;
    std::uint64_t rid = 0;
    {
      std::lock_guard<std::mutex> lk(m_);
      bool spilled = false;
      if (pinned)
        shard = std::hash<std::string>{}(key) % shards_.size();
      else
        shard = pick_shard(key, spilled);
      if (shard != kNoShard) {
        rid = next_id_++;
        if (is_solve) ++shards_[shard]->inflight;
        pending_.emplace(rid, Pending{c, client_id, shard, is_solve});
        if (is_solve) {
          ++stats_.forwarded;
          if (spilled)
            ++stats_.spilled;
          else
            ++stats_.affinity;
          if (session_id != 0) ++stats_.session_pinned;
        } else {
          ++stats_.session_frames;
        }
      } else {
        ++stats_.rejected_backpressure;
      }
    }
    if (shard == kNoShard) {
      // Shed load at the router with the same typed rejection the
      // service's admission control would use.
      proto::SolveResponseMsg resp;
      resp.req_id = client_id;
      resp.status = proto::SolveStatus::Rejected;
      resp.reject_reason =
          static_cast<std::uint32_t>(RejectReason::QueueFull);
      resp.detail = "router backpressure: all shards saturated";
      out.clear();
      proto::encode_solve_response(out, resp);
      if (!write_buf(c->fd, c->write_m, out)) break;
      continue;
    }
    store_u64_le(body.data(), rid);  // in-place req_id rewrite
    emit_raw_frame(out, h.type, body);
    if (!write_buf(shards_[shard]->fd, shards_[shard]->write_m, out)) {
      // Shard connection died: undo and answer with a typed failure.
      {
        std::lock_guard<std::mutex> lk(m_);
        if (is_solve) --shards_[shard]->inflight;
        pending_.erase(rid);
      }
      out.clear();
      if (is_solve) {
        proto::SolveResponseMsg resp;
        resp.req_id = client_id;
        resp.status = proto::SolveStatus::Failed;
        resp.comm = true;
        resp.detail = "router: shard connection lost";
        proto::encode_solve_response(out, resp);
      } else {
        proto::SessionAckMsg ack;
        ack.req_id = client_id;
        ack.detail = "router: shard connection lost";
        proto::encode_session_ack(out, ack);
      }
      if (!write_buf(c->fd, c->write_m, out)) break;
    }
  }
  c->alive.store(false, std::memory_order_release);
  net::shutdown_fd(c->fd);
}

void Router::shard_reader(std::size_t shard_idx) {
  Shard& sh = *shards_[shard_idx];
  net::ByteBuffer out;
  for (;;) {
    proto::ProtoHeader h;
    std::vector<unsigned char> body;
    proto::DecodeStatus st;
    if (!read_frame(sh.fd, h, body, st)) break;
    const auto type = static_cast<proto::MsgType>(h.type);
    if ((type != proto::MsgType::SolveResponse &&
         type != proto::MsgType::SessionAck) ||
        body.size() < 8)
      break;
    const std::uint64_t rid = load_u64_le(body.data());
    Pending p;
    bool found = false;
    {
      std::lock_guard<std::mutex> lk(m_);
      auto it = pending_.find(rid);
      if (it != pending_.end()) {
        p = std::move(it->second);
        pending_.erase(it);
        if (p.counted) --sh.inflight;
        ++stats_.responses;
        found = true;
      }
    }
    if (!found) continue;  // client vanished and entry was reaped
    store_u64_le(body.data(), p.client_req_id);
    if (p.conn->alive.load(std::memory_order_acquire)) {
      emit_raw_frame(out, h.type, body);
      (void)write_buf(p.conn->fd, p.conn->write_m, out);
    }
  }
}

void Router::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  net::shutdown_fd(listen_fd_);
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::shared_ptr<ClientConn>> conns;
  {
    std::lock_guard<std::mutex> lk(m_);
    conns = conns_;
  }
  for (const auto& c : conns) net::shutdown_fd(c->fd);
  for (const auto& c : conns) {
    if (c->reader.joinable()) c->reader.join();
    net::close_fd(c->fd);
  }
  for (const auto& sh : shards_) net::shutdown_fd(sh->fd);
  for (const auto& sh : shards_) {
    if (sh->reader.joinable()) sh->reader.join();
    net::close_fd(sh->fd);
  }
  net::close_fd(listen_fd_);
}

Router::Stats Router::stats() const {
  std::lock_guard<std::mutex> lk(m_);
  return stats_;
}

}  // namespace pfem::svc
