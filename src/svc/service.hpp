// pfem::svc::Service — a persistent solve service over a warm rank team.
//
// One solve_edd() call pays for a thread team, the distributed norm-1
// scaling, and the polynomial build before it does any FGMRES work.  A
// workload that streams solves against a handful of slowly-changing
// operators (time stepping, design loops, many clients sharing one
// model) should pay those once.  The service owns:
//
//   - a par::Team of P ranks whose threads stay parked between jobs;
//   - an OperatorCache keyed by client-chosen strings (recipe ->
//     built scaled matrices + polynomial, LRU-bounded, explicitly
//     invalidated by update_operator);
//   - a bounded two-priority JobQueue with admission control;
//   - a scheduler thread that pops a job, coalesces every queued
//     request for the same operator (compatible SolveOptions) into ONE
//     fused multi-RHS solve_edd_batch call, and resolves each request's
//     future with a typed Outcome;
//   - a per-batch deadline watchdog that cancels the team through the
//     cooperative par::Comm abort path when the earliest member
//     deadline expires mid-solve;
//   - a SessionTable of solve sessions (open_session/close_session):
//     per-session warm-start solutions and recycled Krylov directions
//     deposited by each completed solve and fed to the next one, with
//     LRU-bounded state tied to the operator cache's evictions.
//
// Backpressure and deadlines are load *shedding*, not errors: the
// client always gets a typed Rejected outcome, never a hang.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fault/fault.hpp"
#include "obs/trace.hpp"
#include "par/comm.hpp"
#include "svc/job_queue.hpp"
#include "svc/operator_cache.hpp"
#include "svc/request.hpp"
#include "svc/session.hpp"
#include "svc/stats.hpp"

namespace pfem::svc {

/// Bounded retry with exponential backoff for typed communication
/// failures (an injected crash, a stalled rank hitting the comm
/// timeout).  Attempt n sleeps fault::backoff_seconds(base, max, n,
/// seed) — doubling, capped, with deterministic jitter from the
/// request seed, so a failing request replays the same schedule.
/// Each retry re-dispatches onto a *fresh* team; the operator cache is
/// team-independent, so built state survives the swap.
struct RetryPolicy {
  int max_attempts = 1;  ///< total tries; 1 disables retry
  double base_backoff_seconds = 0.005;
  double max_backoff_seconds = 0.25;
};

struct ServiceConfig {
  int nranks = 4;                  ///< team size == partition parts
  std::size_t queue_capacity = 64; ///< admission bound (backpressure)
  std::size_t cache_capacity = 8;  ///< built operators kept (LRU)
  std::size_t max_batch_rhs = 16;  ///< fused-RHS cap per dispatch
  /// Subdomain-operator kernel selection baked into every cached build
  /// (SELL-C-σ vs scalar CSR, exchange overlap).  Bit-neutral: results
  /// are identical across settings, only the kernel speed changes.
  core::KernelOptions kernels;
  /// Two-level deflation knobs baked into every cached build: when
  /// enabled, build_edd_operator assembles and factorizes the coarse
  /// operator once and the state is cached (and LRU-evicted) together
  /// with the scaling and kernels.  Per-request SolveOptions.deflation
  /// is ignored on the batch path — the correction is operator state.
  core::DeflationOptions deflation;
  /// observe.trace turns on the service-lifetime span trace (rank lanes
  /// plus a scheduler "svc" lane with queued/coalesced/dispatch spans);
  /// observe.ring_capacity sizes each lane's flight-recorder ring.  The
  /// per-request progress callback lives on each request instead.
  obs::ObserveOptions observe;
  /// Solve sessions (svc/session.hpp): how many sessions may hold warm
  /// state at once (LRU; the handle survives eviction and just runs
  /// cold), and the per-RHS-lane bound on the recycled-direction ring
  /// fed back into core::RecycleOptions::max_directions.
  std::size_t session_capacity = 32;
  std::size_t session_max_directions = 8;
  RetryPolicy retry;
  /// Channel-wait deadline installed on the team (and on every retry
  /// replacement); 0 disables.  With a timeout armed, a dead or stalled
  /// peer surfaces as a typed comm failure instead of a hang.
  double comm_timeout_seconds = 0.0;
  /// Optional chaos hook: a seeded fault plan installed on the team
  /// (must be generated for `nranks` ranks).  Not owned — it must
  /// outlive the service.  Faults are one-shot, so retries march past
  /// the fault that killed the previous attempt.
  fault::FaultInjector* fault_injector = nullptr;
};

class Service {
 public:
  using JobId = std::uint64_t;

  struct Submitted {
    JobId id = 0;
    std::future<Outcome> outcome;
  };

  explicit Service(const ServiceConfig& cfg);
  ~Service();  ///< shutdown(/*drain=*/false)

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Register (or replace) an operator recipe under `key`.  Replacing
  /// invalidates any cached built state.  Partition parts must equal
  /// the configured team size.  `deflation`, when set, overrides
  /// cfg.deflation for this key — the mixed-tenant hook: operators from
  /// different problem families (scalar diffusion vs 2-D/3-D elasticity)
  /// need different coarse-space layouts, validated here against the
  /// partition's dof count (throws pfem::BadOperatorError on mismatch).
  void register_operator(
      const std::string& key,
      std::shared_ptr<const partition::EddPartition> part,
      const core::PolySpec& poly,
      std::shared_ptr<const std::vector<sparse::CsrMatrix>> local_matrices =
          nullptr,
      std::optional<core::DeflationOptions> deflation = std::nullopt);

  /// Swap the per-rank matrices of a registered operator (same layout);
  /// the next solve rebuilds scaling + preconditioner.  Open sessions on
  /// the key deliberately KEEP their warm state: recycled directions are
  /// re-projected through the new operator at solve time, so they stay
  /// safe and typically still useful across a drifting operator.
  void update_operator(
      const std::string& key,
      std::shared_ptr<const std::vector<sparse::CsrMatrix>> local_matrices);

  /// Open a solve session pinned to a registered operator.  Returns
  /// kNoSession when the key is unknown.  Requests carrying the handle
  /// warm-start from the session's previous solution, project its
  /// recycled directions, and deposit their own state on completion.
  [[nodiscard]] SessionId open_session(const std::string& operator_key);

  /// Release a session handle and its state.  False if unknown (or
  /// already closed).  In-flight requests on the session still complete;
  /// their deposit simply lands nowhere.
  bool close_session(SessionId id);

  /// Admission-controlled submit.  The returned future always resolves
  /// (Completed/Rejected/Cancelled/Failed); requests refused at
  /// admission come back with the future already resolved.
  [[nodiscard]] Submitted submit(SolveRequest req);

  /// Cancel a request: a queued job resolves Cancelled immediately; a
  /// running job's batch is cancelled through the team's abort path.
  /// Returns false when the id is unknown or already finished.
  bool cancel(JobId id);

  /// Stop accepting work; with drain=true finish everything queued,
  /// otherwise resolve queued jobs as Cancelled.  Idempotent; joins the
  /// scheduler.  The destructor calls shutdown(false).
  void shutdown(bool drain = true);

  /// Test/introspection hook: pause dispatching (queued work + at most
  /// one popped job wait), so a burst of submissions demonstrably
  /// coalesces into one batch on resume.
  void set_paused(bool paused);

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] LatencySnapshot latency() const;
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] int nranks() const noexcept { return cfg_.nranks; }

  /// The service-lifetime span trace (null unless cfg.observe.trace).
  /// Lanes are written while work is in flight; export only when the
  /// service is quiesced — after shutdown(), or while paused with no
  /// batch running.
  [[nodiscard]] const obs::Trace* trace() const noexcept {
    return trace_.get();
  }

 private:
  struct PendingJob {
    JobId id = 0;
    SolveRequest req;
    std::promise<Outcome> promise;
    Clock::time_point submit_time;
  };

  void scheduler_loop();
  void dispatch_batch(std::vector<PendingJob> batch);
  void resolve(PendingJob& job, Outcome outcome);
  [[nodiscard]] Submitted reject_now(PendingJob job, RejectReason reason,
                                     std::string detail);
  /// Build a team with the configured comm timeout and fault injector
  /// armed — used at construction and for retry replacements.
  [[nodiscard]] std::unique_ptr<par::Team> make_team() const;

  ServiceConfig cfg_;
  /// unique_ptr so a retry can swap in a fresh team after a typed comm
  /// failure (the old one may hold a tripped abort flag or a dead rank).
  /// Replaced only by the scheduler thread, under m_ (cancel() pokes
  /// team_->cancel() under the same lock).
  std::unique_ptr<par::Team> team_;
  OperatorCache cache_;
  /// Session-state store; wired to cache_'s eviction callback so losing
  /// a built operator also drops the warm state pinned to it.
  SessionTable sessions_;
  /// Per-operator-key dispatch sequence (scheduler thread only): the
  /// content-derived fallback for SolveRequest::seed == 0, so replayed
  /// request streams see identical backoff jitter run-to-run.
  std::unordered_map<std::string, std::uint64_t> dispatch_seq_;
  JobQueue<PendingJob> queue_;
  /// Service-lifetime trace: rank lanes written by the team during a
  /// dispatch, aux lane written only by the scheduler thread.
  std::unique_ptr<obs::Trace> trace_;

  mutable std::mutex m_;
  std::condition_variable pause_cv_;
  bool paused_ = false;
  bool accepting_ = true;
  std::atomic<JobId> next_id_{1};
  /// Ids of the batch currently inside team_.run, and which of them got
  /// an explicit cancel() while running.  Guarded by m_; the scheduler
  /// clears both before resolving outcomes, so a client cancel() either
  /// lands on the live batch or returns false — never on a later one.
  std::vector<JobId> running_;
  std::vector<JobId> running_cancelled_;

  ServiceStats stats_;  ///< guarded by m_
  LatencyRecorder latency_;

  std::thread scheduler_;
};

}  // namespace pfem::svc
