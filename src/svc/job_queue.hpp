// Bounded two-priority FIFO used by the solve service.
//
// Admission control lives at the push side: try_push refuses work when
// the queue is at capacity, which is what turns overload into typed
// Rejected{queue_full} responses instead of unbounded memory growth and
// unbounded latency.  High-priority jobs overtake Normal ones but both
// levels stay FIFO internally, so admission order is preserved within a
// priority class.
//
// The scheduler side gets two extra operations beyond pop():
// drain_matching() (remove every queued job matching a predicate, up to
// a cap — how same-operator requests coalesce into one fused batch) and
// remove_if() (cancellation of a single queued job).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "svc/request.hpp"

namespace pfem::svc {

template <class T>
class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Returns false (job untouched) when full or closed.
  [[nodiscard]] bool try_push(T&& job, Priority prio) {
    std::unique_lock lock(m_);
    if (closed_ || size_locked() >= capacity_) return false;
    (prio == Priority::High ? high_ : normal_).push_back(std::move(job));
    lock.unlock();
    cv_.notify_one();
    return true;
  }

  /// Blocks until a job is available or the queue is closed; nullopt
  /// means closed-and-empty (the consumer should exit).
  [[nodiscard]] std::optional<T> pop() {
    std::unique_lock lock(m_);
    cv_.wait(lock, [&] { return closed_ || size_locked() > 0; });
    if (size_locked() == 0) return std::nullopt;
    auto& q = high_.empty() ? normal_ : high_;
    T job = std::move(q.front());
    q.pop_front();
    return job;
  }

  /// Remove up to max_n queued jobs satisfying pred (priority order,
  /// FIFO within a class) — the batch-coalescing hook.
  template <class Pred>
  [[nodiscard]] std::vector<T> drain_matching(Pred&& pred, std::size_t max_n) {
    std::vector<T> out;
    std::scoped_lock lock(m_);
    for (auto* q : {&high_, &normal_}) {
      for (auto it = q->begin(); it != q->end() && out.size() < max_n;) {
        if (pred(*it)) {
          out.push_back(std::move(*it));
          it = q->erase(it);
        } else {
          ++it;
        }
      }
    }
    return out;
  }

  /// Remove the first queued job satisfying pred (cancellation hook).
  template <class Pred>
  [[nodiscard]] std::optional<T> remove_if(Pred&& pred) {
    std::scoped_lock lock(m_);
    for (auto* q : {&high_, &normal_}) {
      for (auto it = q->begin(); it != q->end(); ++it) {
        if (pred(*it)) {
          T job = std::move(*it);
          q->erase(it);
          return job;
        }
      }
    }
    return std::nullopt;
  }

  /// Stop accepting pushes and wake the consumer.  Queued jobs are still
  /// poppable (drain-style shutdown); drain_all() empties them instead.
  void close() {
    {
      std::scoped_lock lock(m_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] std::vector<T> drain_all() {
    std::vector<T> out;
    std::scoped_lock lock(m_);
    for (auto* q : {&high_, &normal_}) {
      for (auto& job : *q) out.push_back(std::move(job));
      q->clear();
    }
    return out;
  }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lock(m_);
    return size_locked();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  [[nodiscard]] std::size_t size_locked() const {
    return high_.size() + normal_.size();
  }

  std::size_t capacity_;
  mutable std::mutex m_;
  std::condition_variable cv_;
  std::deque<T> high_, normal_;
  bool closed_ = false;
};

}  // namespace pfem::svc
