// Solve sessions: the service-side state store behind warm starts and
// Krylov recycling (the ISSUE-8 api_redesign).
//
// A session is a client handle pinned to one registered operator.  Every
// completed solve submitted under the session deposits its solution and
// the harvested restart-cycle directions here; the next solve under the
// same session reads them back as core::RecycleIn — warm start x0 plus a
// bounded recycled subspace that fgmres projects out of the initial
// residual (on top of the A-DEF1 coarse correction, which is operator
// state, not session state).
//
// Lifecycle and eviction:
//
//   open ──▶ cold (no state) ──deposit──▶ warm ──deposit──▶ warm …
//                 ▲                         │
//                 └──────── evict ──────────┘        close ──▶ gone
//
// The *handle* lives until close_session(); the *state* (x_prev + the
// direction ring) is LRU-bounded by `capacity` and additionally dropped
// whenever the operator cache evicts the built operator the session is
// pinned to (evict_for_operator — memory pressure stays coherent across
// the two caches).  An evicted session silently degrades to a cold
// solve; it is never an error.  Operator *updates* (drifting matrices,
// e.g. `pfem_loadgen --replay`) deliberately keep the state: recycled
// directions are re-projected through the NEW operator at solve time, so
// they stay mathematically safe and typically still useful — that is the
// whole point of recycling across a slowly-changing operator.
//
// Thread safety: every method takes the table mutex; the table never
// calls out while holding it (lock order with OperatorCache is always
// cache -> table, via the eviction callback).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/fgmres.hpp"
#include "svc/request.hpp"

namespace pfem::svc {

/// One session's recycle payload: per-RHS-lane state of the previous
/// completed solve (a request with B right-hand sides deposits B lanes;
/// the next request's lane r warm-starts from lane r).
struct SessionSnapshot {
  std::string operator_key;
  std::vector<core::RecycleIn> lanes;
  std::uint64_t seq = 0;  ///< completed deposits under this session
};

class SessionTable {
 public:
  /// @param capacity max number of sessions holding *state* (LRU);
  ///        handles themselves live until closed.
  /// @param max_directions per-lane bound on the recycled-direction ring
  ///        (oldest dropped first), mirroring RecycleOptions.
  SessionTable(std::size_t capacity, std::size_t max_directions)
      : capacity_(capacity < 1 ? 1 : capacity),
        max_directions_(max_directions) {}

  [[nodiscard]] SessionId open(std::string operator_key) {
    std::scoped_lock lock(m_);
    const SessionId id = next_id_++;
    Entry& e = entries_[id];
    e.operator_key = std::move(operator_key);
    return id;
  }

  /// Release the handle and its state.  False if the id was unknown.
  bool close(SessionId id) {
    std::scoped_lock lock(m_);
    auto it = entries_.find(id);
    if (it == entries_.end()) return false;
    lru_erase(id);
    entries_.erase(it);
    return true;
  }

  [[nodiscard]] std::optional<std::string> operator_key_of(
      SessionId id) const {
    std::scoped_lock lock(m_);
    auto it = entries_.find(id);
    if (it == entries_.end()) return std::nullopt;
    return it->second.operator_key;
  }

  /// Copy of the session's current recycle state (empty lanes when cold
  /// or evicted), or nullopt for an unknown id.  Touches the LRU.
  [[nodiscard]] std::optional<SessionSnapshot> snapshot(SessionId id) {
    std::scoped_lock lock(m_);
    auto it = entries_.find(id);
    if (it == entries_.end()) return std::nullopt;
    if (!it->second.lanes.empty()) lru_touch(id);
    SessionSnapshot out;
    out.operator_key = it->second.operator_key;
    out.lanes = it->second.lanes;
    out.seq = it->second.seq;
    return out;
  }

  /// Store a completed solve: per-lane solution (the next warm start)
  /// and freshly harvested directions appended to each lane's ring,
  /// oldest dropped beyond max_directions.  `harvested` may be empty
  /// (recycling produced no new directions) or sized like `x`.
  /// Returns the number of sessions whose state was LRU-evicted to make
  /// room (for the service's counters).
  std::size_t deposit(SessionId id, const std::vector<Vector>& x,
                      const std::vector<std::vector<Vector>>& harvested) {
    std::scoped_lock lock(m_);
    auto it = entries_.find(id);
    if (it == entries_.end()) return 0;  // closed while the solve ran
    Entry& e = it->second;
    if (e.lanes.size() != x.size())
      e.lanes.assign(x.size(), core::RecycleIn{});
    for (std::size_t r = 0; r < x.size(); ++r) {
      core::RecycleIn& lane = e.lanes[r];
      lane.x0 = x[r];
      if (r < harvested.size())
        for (const Vector& dir : harvested[r]) lane.directions.push_back(dir);
      while (lane.directions.size() > max_directions_)
        lane.directions.erase(lane.directions.begin());
    }
    ++e.seq;
    lru_touch(id);
    std::size_t evicted = 0;
    while (lru_.size() > capacity_) {
      auto victim = entries_.find(lru_.back());
      if (victim != entries_.end()) {
        victim->second.lanes.clear();
        ++evicted;
      }
      lru_.pop_back();
    }
    return evicted;
  }

  /// Drop the state of every session pinned to `key` (handles stay).
  /// Called by the service when the operator cache evicts the built
  /// operator.  Returns how many sessions lost state.
  std::size_t evict_for_operator(const std::string& key) {
    std::scoped_lock lock(m_);
    std::size_t evicted = 0;
    for (auto& [id, e] : entries_)
      if (e.operator_key == key && !e.lanes.empty()) {
        e.lanes.clear();
        lru_erase(id);
        ++evicted;
      }
    return evicted;
  }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lock(m_);
    return entries_.size();
  }

  /// Sessions currently holding warm state (the LRU population).
  [[nodiscard]] std::size_t warm_count() const {
    std::scoped_lock lock(m_);
    return lru_.size();
  }

 private:
  struct Entry {
    std::string operator_key;
    std::vector<core::RecycleIn> lanes;  ///< empty = cold / evicted
    std::uint64_t seq = 0;
  };

  void lru_touch(SessionId id) {
    lru_erase(id);
    lru_.push_front(id);
  }
  void lru_erase(SessionId id) {
    for (auto it = lru_.begin(); it != lru_.end(); ++it)
      if (*it == id) {
        lru_.erase(it);
        return;
      }
  }

  std::size_t capacity_;
  std::size_t max_directions_;
  mutable std::mutex m_;
  std::unordered_map<SessionId, Entry> entries_;
  std::list<SessionId> lru_;  ///< ids with state, most recent first
  SessionId next_id_ = 1;     ///< 0 is kNoSession
};

}  // namespace pfem::svc
