// Service-level observability: monotonic counters and a latency
// recorder with nearest-rank percentiles.  Everything here is
// mutex-protected and cheap enough to sample from a live service.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <vector>

namespace pfem::svc {

/// One snapshot of the service counters (all monotonic).
struct ServiceStats {
  std::uint64_t submitted = 0;  ///< requests that reached submit()
  std::uint64_t completed = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t rejected_other = 0;  ///< unknown key / bad request / shutdown
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;
  std::uint64_t cache_hits = 0;    ///< dispatches served by a built operator
  std::uint64_t cache_misses = 0;  ///< dispatches that had to build
  std::uint64_t batches = 0;       ///< scheduler dispatches (fused solves)
  std::uint64_t rhs_solved = 0;    ///< total RHS across completed requests
  std::uint64_t comm_failures = 0; ///< attempts lost to typed comm faults
  std::uint64_t retries = 0;       ///< re-dispatches onto a fresh team
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_closed = 0;
  /// Sessions whose warm state was dropped — by the session table's own
  /// LRU, or because the operator cache evicted the built operator they
  /// were pinned to.  The session handle survives; the next solve under
  /// it simply runs cold.
  std::uint64_t sessions_evicted = 0;
  /// RHS lanes dispatched with warm session state (x_prev and/or
  /// recycled directions) — the numerator of the warm-hit rate.
  std::uint64_t warm_rhs = 0;
  double solve_seconds = 0.0;      ///< wall time inside solve_edd_batch
};

struct LatencySnapshot {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Records per-request end-to-end latencies (submit -> outcome).
class LatencyRecorder {
 public:
  void record(double seconds) {
    std::scoped_lock lock(m_);
    samples_.push_back(seconds);
  }

  [[nodiscard]] LatencySnapshot snapshot() const {
    std::vector<double> s;
    {
      std::scoped_lock lock(m_);
      s = samples_;
    }
    LatencySnapshot out;
    out.count = s.size();
    if (s.empty()) return out;
    std::sort(s.begin(), s.end());
    double sum = 0.0;
    for (const double v : s) sum += v;
    out.mean = sum / static_cast<double>(s.size());
    auto rank = [&](double p) {
      // Nearest-rank percentile: smallest sample with >= p of the mass.
      const auto n = static_cast<double>(s.size());
      const auto k = static_cast<std::size_t>(std::ceil(p * n));
      return s[std::min(s.size() - 1, k == 0 ? 0 : k - 1)];
    };
    out.p50 = rank(0.50);
    out.p90 = rank(0.90);
    out.p99 = rank(0.99);
    out.max = s.back();
    return out;
  }

 private:
  mutable std::mutex m_;
  std::vector<double> samples_;
};

}  // namespace pfem::svc
