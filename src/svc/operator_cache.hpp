// Keyed operator registry + LRU cache of built EddOperatorState.
//
// The registry maps a client-chosen key to the *recipe* for an operator
// (partition, polynomial spec, optional per-rank matrix override); the
// cache holds the *built* state — the norm-1-scaled matrices and the
// polynomial recursion data that build_edd_operator produces on the
// team.  Registration and update invalidate the built state explicitly;
// get_or_build() rebuilds at most once per (key, version).  Built
// states are handed out as shared_ptr-to-const so an update or eviction
// never pulls memory out from under an in-flight solve.
#pragma once

#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "core/edd_batch.hpp"

namespace pfem::svc {

class OperatorCache {
 public:
  /// @param capacity max number of *built* states kept (LRU-evicted);
  ///        registry entries (recipes) are not bounded.
  /// @param kernels  subdomain-operator kernel selection baked into every
  ///        build (bit-neutral: SELL vs CSR, overlap on/off).
  /// @param deflation two-level deflation knobs baked into every build;
  ///        the factorized coarse operator lives inside the built state,
  ///        so a cache hit reuses it along with the scaling and kernels.
  explicit OperatorCache(std::size_t capacity,
                         const core::KernelOptions& kernels = {},
                         const core::DeflationOptions& deflation = {})
      : capacity_(capacity), kernels_(kernels), deflation_(deflation) {
    PFEM_CHECK_MSG(capacity_ >= 1, "operator cache needs capacity >= 1");
  }

  /// `deflation`, when set, overrides the cache-wide deflation options
  /// for THIS key — required for mixed-tenant registries where operators
  /// from different problem families need different coarse-space layouts
  /// (components, coord_dim, coefficient tables).  nullopt inherits the
  /// cache-wide options.
  void register_operator(
      const std::string& key,
      std::shared_ptr<const partition::EddPartition> part,
      const core::PolySpec& poly,
      std::shared_ptr<const std::vector<sparse::CsrMatrix>> local_matrices =
          nullptr,
      std::optional<core::DeflationOptions> deflation = std::nullopt) {
    PFEM_CHECK_MSG(part != nullptr, "register_operator: null partition");
    core::validate_poly_spec(poly);
    std::scoped_lock lock(m_);
    Entry& e = entries_[key];
    e.part = std::move(part);
    e.poly = poly;
    e.local_matrices = std::move(local_matrices);
    e.deflation = std::move(deflation);
    e.state = nullptr;  // recipe changed: built state is stale
    ++e.version;
    lru_erase(key);
  }

  /// Swap in new per-rank matrices (same partition/dof layout), e.g. the
  /// next time step's effective stiffness.  Invalidate the built state.
  void update_operator(
      const std::string& key,
      std::shared_ptr<const std::vector<sparse::CsrMatrix>> local_matrices) {
    std::scoped_lock lock(m_);
    auto it = entries_.find(key);
    PFEM_CHECK_MSG(it != entries_.end(),
                   "update_operator: unknown key '" << key << "'");
    it->second.local_matrices = std::move(local_matrices);
    it->second.state = nullptr;
    ++it->second.version;
    lru_erase(key);
  }

  [[nodiscard]] bool contains(const std::string& key) const {
    std::scoped_lock lock(m_);
    return entries_.count(key) > 0;
  }

  [[nodiscard]] std::shared_ptr<const partition::EddPartition> partition_of(
      const std::string& key) const {
    std::scoped_lock lock(m_);
    auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : it->second.part;
  }

  /// Built state for `key`, building it on `team` if missing or stale.
  /// second == true means the state was served from cache (a warm hit).
  /// The build runs outside the lock: the scheduler thread is the only
  /// builder, so concurrent readers just see a miss until it lands.
  /// `trace` (optional, lanes == team size) records the build's spans.
  [[nodiscard]] std::pair<std::shared_ptr<const core::EddOperatorState>, bool>
  get_or_build(const std::string& key, par::Team& team,
               obs::Trace* trace = nullptr) {
    std::shared_ptr<const partition::EddPartition> part;
    core::PolySpec poly;
    std::shared_ptr<const std::vector<sparse::CsrMatrix>> mats;
    core::DeflationOptions deflation;
    std::uint64_t version = 0;
    {
      std::scoped_lock lock(m_);
      auto it = entries_.find(key);
      PFEM_CHECK_MSG(it != entries_.end(),
                     "get_or_build: unknown key '" << key << "'");
      if (it->second.state != nullptr) {
        lru_touch(key);
        return {it->second.state, true};
      }
      part = it->second.part;
      poly = it->second.poly;
      mats = it->second.local_matrices;
      deflation = it->second.deflation ? *it->second.deflation : deflation_;
      version = it->second.version;
    }
    auto built = std::make_shared<const core::EddOperatorState>(
        core::build_edd_operator(team, *part, poly, mats ? mats.get() : nullptr,
                                 trace, kernels_, deflation));
    std::scoped_lock lock(m_);
    auto it = entries_.find(key);
    // Store only if the recipe did not change while building.
    if (it != entries_.end() && it->second.version == version &&
        it->second.state == nullptr) {
      it->second.state = built;
      lru_touch(key);
      while (built_count_locked() > capacity_) evict_lru();
    }
    return {built, false};
  }

  /// Observer of LRU evictions: called with the evicted key whenever
  /// capacity pressure drops a built state (NOT on register/update/
  /// invalidate — a recipe change keeps dependent warm state useful,
  /// eviction means the memory is gone).  Invoked while holding the
  /// cache mutex, so the callback must not call back into the cache;
  /// the service points this at SessionTable::evict_for_operator (lock
  /// order is always cache -> session table).
  void set_evict_callback(std::function<void(const std::string&)> cb) {
    std::scoped_lock lock(m_);
    on_evict_ = std::move(cb);
  }

  /// Drop the built state (recipe stays registered).
  void invalidate(const std::string& key) {
    std::scoped_lock lock(m_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return;
    it->second.state = nullptr;
    ++it->second.version;
    lru_erase(key);
  }

  [[nodiscard]] std::size_t built_count() const {
    std::scoped_lock lock(m_);
    return built_count_locked();
  }

 private:
  struct Entry {
    std::shared_ptr<const partition::EddPartition> part;
    core::PolySpec poly;
    std::shared_ptr<const std::vector<sparse::CsrMatrix>> local_matrices;
    /// Per-key coarse-space override; nullopt inherits the cache-wide
    /// deflation options.
    std::optional<core::DeflationOptions> deflation;
    std::shared_ptr<const core::EddOperatorState> state;  // null = not built
    std::uint64_t version = 0;
  };

  [[nodiscard]] std::size_t built_count_locked() const { return lru_.size(); }

  void lru_touch(const std::string& key) {
    lru_erase(key);
    lru_.push_front(key);
  }
  void lru_erase(const std::string& key) {
    for (auto it = lru_.begin(); it != lru_.end(); ++it)
      if (*it == key) {
        lru_.erase(it);
        return;
      }
  }
  void evict_lru() {
    const std::string key = lru_.back();
    auto it = entries_.find(key);
    if (it != entries_.end()) it->second.state = nullptr;
    lru_.pop_back();
    if (on_evict_) on_evict_(key);
  }

  std::size_t capacity_;
  core::KernelOptions kernels_;
  core::DeflationOptions deflation_;
  mutable std::mutex m_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  ///< keys with built state, most recent first
  std::function<void(const std::string&)> on_evict_;
};

}  // namespace pfem::svc
