#include "par/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace pfem::par {

MachineModel MachineModel::ibm_sp2() {
  return MachineModel{"IBM-SP2", 1.0 / 45e6, 40e-6, 1.0 / 35e6, 40e-6};
}

MachineModel MachineModel::sgi_origin() {
  return MachineModel{"SGI-Origin", 1.0 / 60e6, 10e-6, 1.0 / 140e6, 10e-6};
}

MachineModel MachineModel::modern_node() {
  return MachineModel{"modern-node", 1.0 / 4e9, 0.5e-6, 1.0 / 10e9, 0.5e-6};
}

ModeledTime model_time(const MachineModel& machine,
                       std::span<const PerfCounters> ranks) {
  PFEM_CHECK(!ranks.empty());
  const int p = static_cast<int>(ranks.size());
  ModeledTime t;
  double max_compute = 0.0, max_neighbor = 0.0;
  std::uint64_t max_reductions = 0, max_red_bytes = 0;
  for (const PerfCounters& c : ranks) {
    max_compute = std::max(
        max_compute, static_cast<double>(c.flops) * machine.flop_time);
    // A rank pays α + bytes·β at each end of a point-to-point message:
    // sends and receives are both charged (the counters record the two
    // sides separately).
    const auto msgs = static_cast<double>(c.neighbor_msgs) +
                      static_cast<double>(c.neighbor_msgs_recv);
    const auto bytes = static_cast<double>(c.neighbor_bytes) +
                       static_cast<double>(c.neighbor_bytes_recv);
    max_neighbor = std::max(
        max_neighbor, msgs * machine.latency + bytes * machine.byte_time);
    max_reductions = std::max(max_reductions, c.global_reductions);
    max_red_bytes = std::max(max_red_bytes, c.global_bytes);
  }
  t.compute = max_compute;
  t.neighbor = max_neighbor;
  if (p > 1) {
    const double stages = std::ceil(std::log2(static_cast<double>(p)));
    t.global_comm =
        stages * (static_cast<double>(max_reductions) * machine.reduce_latency +
                  static_cast<double>(max_red_bytes) * machine.byte_time);
  }
  return t;
}

double modeled_speedup(const MachineModel& machine,
                       std::span<const PerfCounters> serial,
                       std::span<const PerfCounters> parallel) {
  const double t1 = model_time(machine, serial).total();
  const double tp = model_time(machine, parallel).total();
  PFEM_CHECK(tp > 0.0);
  return t1 / tp;
}

}  // namespace pfem::par
