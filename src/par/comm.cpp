#include "par/comm.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "common/error.hpp"

namespace pfem::par {

/// Thrown inside ranks that are blocked when another rank fails, so the
/// whole team unwinds instead of deadlocking.  run_spmd() swallows these
/// and rethrows the originating error.
class Aborted : public Error {
 public:
  Aborted() : Error("SPMD team aborted because another rank failed") {}
};

namespace detail {

struct Message {
  int src;
  int tag;
  Vector payload;
};

struct Mailbox {
  std::mutex m;
  std::condition_variable cv;
  std::deque<Message> msgs;
};

class TeamState {
 public:
  explicit TeamState(int size) : size_(size), boxes_(size), slots_(size) {}

  [[nodiscard]] int size() const noexcept { return size_; }

  void deliver(int dest, Message msg) {
    Mailbox& box = boxes_[static_cast<std::size_t>(dest)];
    {
      std::lock_guard<std::mutex> lk(box.m);
      box.msgs.push_back(std::move(msg));
    }
    box.cv.notify_all();
  }

  Vector take(int dest, int src, int tag) {
    Mailbox& box = boxes_[static_cast<std::size_t>(dest)];
    std::unique_lock<std::mutex> lk(box.m);
    for (;;) {
      check_abort();
      const auto it = std::find_if(
          box.msgs.begin(), box.msgs.end(),
          [&](const Message& m) { return m.src == src && m.tag == tag; });
      if (it != box.msgs.end()) {
        Vector payload = std::move(it->payload);
        box.msgs.erase(it);
        return payload;
      }
      box.cv.wait_for(lk, std::chrono::milliseconds(50));
    }
  }

  /// Sense-reversing barrier that unblocks with Aborted if a rank died.
  void barrier() {
    std::unique_lock<std::mutex> lk(barrier_m_);
    check_abort();
    const std::uint64_t gen = barrier_gen_;
    if (++barrier_count_ == size_) {
      barrier_count_ = 0;
      ++barrier_gen_;
      barrier_cv_.notify_all();
      return;
    }
    barrier_cv_.wait(lk, [&] {
      return barrier_gen_ != gen || aborted_.load(std::memory_order_acquire);
    });
    check_abort();
  }

  /// Deterministic allreduce: every rank deposits into its slot, then all
  /// ranks fold the slots in rank order (bit-identical results everywhere).
  void allreduce(int rank, std::span<real_t> inout, bool take_max) {
    slots_[static_cast<std::size_t>(rank)].assign(inout.begin(), inout.end());
    barrier();
    Vector acc(slots_[0]);
    for (int r = 1; r < size_; ++r) {
      const Vector& s = slots_[static_cast<std::size_t>(r)];
      PFEM_CHECK_MSG(s.size() == acc.size(),
                     "allreduce length mismatch across ranks");
      for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] = take_max ? std::max(acc[i], s[i]) : acc[i] + s[i];
    }
    std::copy(acc.begin(), acc.end(), inout.begin());
    barrier();  // no rank may overwrite its slot before all have folded
  }

  void abort() {
    aborted_.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lk(barrier_m_);
      barrier_cv_.notify_all();
    }
    for (Mailbox& box : boxes_) {
      std::lock_guard<std::mutex> lk(box.m);
      box.cv.notify_all();
    }
  }

 private:
  void check_abort() const {
    if (aborted_.load(std::memory_order_acquire)) throw Aborted{};
  }

  int size_;
  std::vector<Mailbox> boxes_;
  std::vector<Vector> slots_;

  std::mutex barrier_m_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_gen_ = 0;
  std::atomic<bool> aborted_{false};
};

}  // namespace detail

int Comm::size() const noexcept { return team_->size(); }

void Comm::send(int dest, int tag, std::span<const real_t> data) {
  PFEM_CHECK(dest >= 0 && dest < size());
  PFEM_CHECK_MSG(dest != rank_, "self-send is not supported");
  counters_->neighbor_msgs += 1;
  counters_->neighbor_bytes += sizeof(real_t) * data.size();
  team_->deliver(dest, detail::Message{rank_, tag,
                                       Vector(data.begin(), data.end())});
}

void Comm::recv(int src, int tag, Vector& out) {
  PFEM_CHECK(src >= 0 && src < size());
  out = team_->take(rank_, src, tag);
}

void Comm::barrier() { team_->barrier(); }

real_t Comm::allreduce_sum(real_t x) {
  counters_->global_reductions += 1;
  counters_->global_bytes += sizeof(real_t);
  team_->allreduce(rank_, std::span<real_t>(&x, 1), /*take_max=*/false);
  return x;
}

void Comm::allreduce_sum(std::span<real_t> inout) {
  counters_->global_reductions += 1;
  counters_->global_bytes += sizeof(real_t) * inout.size();
  team_->allreduce(rank_, inout, /*take_max=*/false);
}

real_t Comm::allreduce_max(real_t x) {
  counters_->global_reductions += 1;
  counters_->global_bytes += sizeof(real_t);
  team_->allreduce(rank_, std::span<real_t>(&x, 1), /*take_max=*/true);
  return x;
}

std::vector<PerfCounters> run_spmd(int nranks,
                                   const std::function<void(Comm&)>& fn) {
  PFEM_CHECK(nranks >= 1);
  detail::TeamState team(nranks);
  std::vector<PerfCounters> counters(static_cast<std::size_t>(nranks));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));

  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(r, &team, &counters[static_cast<std::size_t>(r)]);
      try {
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        team.abort();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Rethrow the originating failure, preferring real errors over the
  // secondary Aborted unwinds.
  std::exception_ptr first_aborted;
  for (const std::exception_ptr& e : errors) {
    if (!e) continue;
    try {
      std::rethrow_exception(e);
    } catch (const Aborted&) {
      if (!first_aborted) first_aborted = e;
    } catch (...) {
      std::rethrow_exception(e);
    }
  }
  if (first_aborted) std::rethrow_exception(first_aborted);
  return counters;
}

}  // namespace pfem::par
