#include "par/comm.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "common/error.hpp"
#include "net/wait.hpp"

namespace pfem::par {

using net::Aborted;

namespace detail {

namespace {

using net::detail::SteadyClock;
using net::detail::seconds_since;

/// Receive adapters for the transport's sink-style take().  SwapSink is
/// the single-copy receive: when the transport relinquishes its payload
/// buffer the sink steals it and leaves ours behind for the wire to
/// reuse; a transport that cannot hand over storage (shared-memory
/// slots) passes owned == nullptr and the sink copies.
struct SwapSink final : net::MsgSink {
  Vector* out;
  explicit SwapSink(Vector* o) : out(o) {}
  void deliver(Vector* owned, std::span<const real_t> data) override {
    if (owned != nullptr) {
      out->swap(*owned);
      out->resize(data.size());
    } else {
      out->assign(data.begin(), data.end());
    }
  }
};

/// Receive into a preposted buffer whose length must match exactly (the
/// zero-allocation path the exchange kernels use).
struct SpanSink final : net::MsgSink {
  std::span<real_t> out;
  explicit SpanSink(std::span<real_t> o) : out(o) {}
  void deliver(Vector* /*owned*/, std::span<const real_t> data) override {
    PFEM_CHECK_MSG(data.size() == out.size(),
                   "recv into span: message length does not match the "
                   "preposted buffer");
    std::copy(data.begin(), data.end(), out.begin());
  }
};

/// Reserved tags of the runtime's wire collectives (multi-process
/// transports route barriers/allreduces over tagged p2p because their
/// ranks share no address space).  Negative so they can never collide
/// with solver tags, which are all non-negative.
constexpr int kTagReduce = -101;
constexpr int kTagBcast = -102;

}  // namespace

/// Handoff cell of the in-process reduction tree: the child at tree
/// stage k deposits its partial accumulator here; the parent folds it.
/// seq carries the collective-op generation, so cells need no reset
/// between operations.
struct ReduceCell {
  std::atomic<std::uint64_t> seq{0};
  Vector data;
};

/// The per-team runtime state the rank threads share: the transport
/// (point-to-point wire) plus the collective machinery layered on it.
///
/// Collectives have two equivalent executions.  In-process teams use
/// shared reduction cells and a sense-reversing barrier (no wire
/// traffic at all).  Multi-process teams route the SAME tournament tree
/// over transport point-to-point with reserved tags — stage pairing,
/// fold order and broadcast source are identical, so every rank
/// observes bit-identical results on every transport, and the solvers'
/// convergence branches (hence iteration counts) cannot diverge between
/// an in-process run and a sharded one.  Wire collectives bypass
/// par::Comm's send/recv deliberately: neighbor-traffic counters and
/// exchange spans keep meaning *solver* neighbor exchange only (the
/// Table-1 m+3 / m+1 accounting), with collective wait time charged to
/// reduce_wait_seconds as always.
class TeamState {
 public:
  explicit TeamState(std::shared_ptr<net::Transport> transport)
      : transport_(std::move(transport)), size_(transport_->nranks()) {
    while ((1 << stages_) < size_) ++stages_;
    cells_ = std::make_unique<ReduceCell[]>(
        static_cast<std::size_t>(size_) *
        static_cast<std::size_t>(stages_ == 0 ? 1 : stages_));
  }

  [[nodiscard]] int size() const noexcept { return size_; }
  [[nodiscard]] int rank_base() const noexcept {
    return transport_->rank_base();
  }
  [[nodiscard]] int local_ranks() const noexcept {
    return transport_->local_ranks();
  }
  [[nodiscard]] bool is_local(int r) const noexcept {
    return r >= rank_base() && r < rank_base() + local_ranks();
  }

  // ---- Point-to-point ---------------------------------------------------

  /// An injected Drop consumes the wire sequence number it would have
  /// carried, so the receiver sees a gap and fails typed.
  void mark_dropped(int src, int dst) { transport_->mark_dropped(src, dst); }

  /// `wire_dup` marks an injected duplicated delivery: the message goes
  /// out again under its original wire sequence number, so the receiver
  /// drains and discards it.
  void push(int src, int dst, int tag, std::span<const real_t> data,
            PerfCounters& c, bool wire_dup = false) {
    transport_->push(src, dst, tag, data, wire_dup,
                     net::WaitStats{&c.neighbor_wait_seconds,
                                    &c.fault_timeouts});
  }

  void take(int dst, int src, int tag, net::MsgSink& sink, PerfCounters& c) {
    transport_->take(dst, src, tag, sink,
                     net::WaitStats{&c.neighbor_wait_seconds,
                                    &c.fault_timeouts});
  }

  // ---- Collectives ------------------------------------------------------

  /// Synchronize all ranks; unblocks with Aborted if a rank died (or a
  /// typed CommError if the wait hits the comm timeout).
  void barrier(int rank, PerfCounters& c) {
    check_abort();
    if (size_ == 1) return;
    if (transport_->multi_process()) {
      // One dummy scalar through the reduction tree: same rendezvous
      // structure, no extra wire machinery to keep correct.
      real_t x = 0.0;
      wire_allreduce(rank, std::span<real_t>(&x, 1), /*take_max=*/false, c);
      check_abort();
      return;
    }
    std::uint64_t gen;
    bool last;
    {
      std::lock_guard<std::mutex> lk(barrier_m_);
      gen = barrier_gen_.load(std::memory_order_relaxed);
      last = (++barrier_count_ == size_);
      if (last) {
        barrier_count_ = 0;
        barrier_gen_.store(gen + 1, std::memory_order_seq_cst);
      }
    }
    if (last) {
      notify_if_waiting(barrier_m_, barrier_cv_, barrier_waiting_);
    } else {
      auto passed = [&] {
        return barrier_gen_.load(std::memory_order_seq_cst) != gen;
      };
      if (!passed() && !aborted()) {
        const auto t0 = SteadyClock::now();
        if (!wait_until(passed, barrier_m_, barrier_cv_, barrier_waiting_)) {
          ++c.fault_timeouts;
          throw CommError::timeout(rank, -1, fault::Op::Collective,
                                   timeout_seconds());
        }
        c.reduce_wait_seconds += seconds_since(t0);
      }
    }
    check_abort();
  }

  /// Deterministic tournament-tree allreduce: contributions flow up a
  /// binary tree whose pairing is fixed by rank indices (stage k merges
  /// rank r|2^k into rank r), the root folds in low-rank-first order, and
  /// the root's bytes are broadcast back — one synchronization sweep, no
  /// barriers, results independent of arrival order.
  ///
  /// `g` is the per-rank collective-op generation; since collectives are
  /// executed by every rank in the same order, equal g identifies the
  /// same logical operation on all ranks and the cells/broadcast buffer
  /// never need clearing between operations.  (The wire path needs no
  /// generation: the same execution-order discipline makes per-pair FIFO
  /// on the reserved tags line up the stages.)
  void allreduce(int rank, std::uint64_t g, std::span<real_t> inout,
                 bool take_max, PerfCounters& c) {
    check_abort();
    if (size_ == 1) return;
    if (transport_->multi_process()) {
      wire_allreduce(rank, inout, take_max, c);
      check_abort();
      return;
    }
    bool deposited = false;
    for (int k = 0; k < stages_ && !deposited; ++k) {
      const int bit = 1 << k;
      if ((rank & bit) == 0) {
        const int partner = rank | bit;
        if (partner >= size_) continue;  // no child in this stage
        ReduceCell& cell = cell_at(partner, k);
        wait_collective(
            [&] { return cell.seq.load(std::memory_order_seq_cst) >= g; },
            rank, c);
        PFEM_CHECK_MSG(cell.data.size() == inout.size(),
                       "allreduce length mismatch across ranks");
        const real_t* s = cell.data.data();
        for (std::size_t i = 0; i < inout.size(); ++i)
          inout[i] = take_max ? std::max(inout[i], s[i]) : inout[i] + s[i];
      } else {
        ReduceCell& cell = cell_at(rank, k);
        cell.data.assign(inout.begin(), inout.end());
        cell.seq.store(g, std::memory_order_seq_cst);
        notify_collective();
        deposited = true;
      }
    }
    if (rank == 0) {
      bcast_.assign(inout.begin(), inout.end());
      bcast_gen_.store(g, std::memory_order_seq_cst);
      notify_collective();
    } else {
      wait_collective(
          [&] { return bcast_gen_.load(std::memory_order_seq_cst) >= g; },
          rank, c);
      // Lengths agree by now: rank 0 folded every contribution (checking
      // sizes) or threw, which aborts the team before we get here.
      std::copy_n(bcast_.begin(), inout.size(), inout.begin());
    }
    check_abort();
  }

  // ---- Job recycling -----------------------------------------------------

  /// Restore the quiescent state between Team jobs.  Only called while
  /// every local rank thread is parked (the dispatcher owns the state).
  /// The in-process transport recycles rings fully; a multi-process
  /// transport keeps its wire sequence numbers running (see
  /// net::Transport::reset_for_job) — local collective state resets
  /// either way.
  void reset_for_job() {
    transport_->reset_for_job();
    const std::size_t ncells = static_cast<std::size_t>(size_) *
                               static_cast<std::size_t>(stages_ == 0 ? 1
                                                                     : stages_);
    for (std::size_t i = 0; i < ncells; ++i)
      cells_[i].seq.store(0, std::memory_order_relaxed);
    bcast_gen_.store(0, std::memory_order_relaxed);
    barrier_count_ = 0;
    barrier_gen_.store(0, std::memory_order_relaxed);
  }

  // ---- Fault plumbing ----------------------------------------------------

  /// Deadline for blocking channel/collective waits; 0 disables.
  void set_timeout(double seconds) {
    timeout_ns_.store(
        seconds > 0.0 ? static_cast<std::int64_t>(seconds * 1e9) : 0,
        std::memory_order_seq_cst);
    transport_->set_timeout(seconds);
  }

  [[nodiscard]] double timeout_seconds() const {
    return static_cast<double>(timeout_ns_.load(std::memory_order_relaxed)) *
           1e-9;
  }

  /// Injected delay/stall: sleep in 1 ms slices, unwinding with Aborted
  /// as soon as the team tears down — a stalled rank must not outlive
  /// its job.
  void fault_sleep(double seconds) {
    const auto deadline =
        SteadyClock::now() + std::chrono::duration_cast<SteadyClock::duration>(
                                 std::chrono::duration<double>(seconds));
    while (SteadyClock::now() < deadline) {
      check_abort();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    check_abort();
  }

  // ---- Failure handling --------------------------------------------------

  /// The transport's abort flag is the single source of truth (on
  /// multi-process wires it propagates to every attached process); the
  /// local wakeups cover ranks parked in the in-process collective
  /// machinery, which the transport knows nothing about.
  void abort() {
    transport_->abort();
    {
      std::lock_guard<std::mutex> lk(barrier_m_);
      barrier_cv_.notify_all();
    }
    {
      std::lock_guard<std::mutex> lk(coll_m_);
      coll_cv_.notify_all();
    }
  }

 private:
  [[nodiscard]] ReduceCell& cell_at(int rank, int stage) {
    return cells_[static_cast<std::size_t>(rank) *
                      static_cast<std::size_t>(stages_) +
                  static_cast<std::size_t>(stage)];
  }

  [[nodiscard]] bool aborted() const { return transport_->is_aborted(); }

  void check_abort() const {
    if (aborted()) throw Aborted{};
  }

  /// The tournament tree of the in-process path, executed over transport
  /// point-to-point: stage k sends rank r|2^k's partial to rank r, which
  /// folds it exactly where the cell path folds (same order, same
  /// floating-point result); rank 0 then broadcasts its bytes down a
  /// binomial tree.  Wait time lands in reduce_wait_seconds through the
  /// WaitStats hooks; neighbor counters and exchange spans are never
  /// touched.
  void wire_allreduce(int rank, std::span<real_t> inout, bool take_max,
                      PerfCounters& c) {
    const net::WaitStats ws{&c.reduce_wait_seconds, &c.fault_timeouts};
    Vector tmp;
    bool deposited = false;
    for (int k = 0; k < stages_ && !deposited; ++k) {
      const int bit = 1 << k;
      if ((rank & bit) == 0) {
        const int partner = rank | bit;
        if (partner >= size_) continue;  // no child in this stage
        tmp.resize(inout.size());
        SpanSink sink(std::span<real_t>(tmp.data(), tmp.size()));
        transport_->take(rank, partner, kTagReduce, sink, ws);
        for (std::size_t i = 0; i < inout.size(); ++i)
          inout[i] = take_max ? std::max(inout[i], tmp[i]) : inout[i] + tmp[i];
      } else {
        transport_->push(rank, rank & ~bit, kTagReduce,
                         std::span<const real_t>(inout.data(), inout.size()),
                         /*wire_dup=*/false, ws);
        deposited = true;
      }
    }
    // Binomial broadcast from rank 0: every rank receives from its
    // parent (rank with the highest set bit cleared), then forwards to
    // children rank | 2^k for k above its own highest bit.
    int hb = -1;
    for (int k = 0; k < stages_; ++k)
      if ((rank & (1 << k)) != 0) hb = k;
    if (rank != 0) {
      SpanSink sink(inout);
      transport_->take(rank, rank & ~(1 << hb), kTagBcast, sink, ws);
    }
    for (int k = hb + 1; k < stages_; ++k) {
      const int child = rank | (1 << k);
      if (child < size_ && child != rank)
        transport_->push(rank, child, kTagBcast,
                         std::span<const real_t>(inout.data(), inout.size()),
                         /*wire_dup=*/false, ws);
    }
  }

  /// Publisher side of the parking-lot handshake: the waiting counter is
  /// read after the seq_cst publish of the condition, so a waiter that
  /// missed the publish is guaranteed to be visible here (and vice
  /// versa) — the Dekker-style store/load pairing rules out lost wakeups
  /// without taking the mutex on the fast path.
  static void notify_if_waiting(std::mutex& m, std::condition_variable& cv,
                                std::atomic<int>& waiting) {
    if (waiting.load(std::memory_order_seq_cst) != 0) {
      // Empty critical section: any waiter that registered but has not
      // finished its predicate re-check under the lock is flushed out.
      // notify_all runs after unlock so the woken thread never bounces
      // off a mutex we still hold.
      { std::lock_guard<std::mutex> lk(m); }
      cv.notify_all();
    }
  }

  /// Waiter side: spin on the predicate, then yield, then park.  The
  /// waiting counter is bumped before the final predicate check inside
  /// cv.wait.  Returns false when a comm timeout is armed and the park
  /// phase exceeded it with the predicate still false — the caller turns
  /// that into a typed CommError.  (An abort wakes the waiter through
  /// `done` and is never reported as a timeout.)
  template <typename Pred>
  [[nodiscard]] bool wait_until(Pred pred, std::mutex& m,
                                std::condition_variable& cv,
                                std::atomic<int>& waiting) {
    auto done = [&] { return pred() || aborted(); };
    for (int i = net::detail::spin_budget(); i > 0; --i) {
      if (done()) return true;
      net::detail::cpu_relax();
    }
    for (int i = 0; i < net::detail::kYieldIters; ++i) {
      if (done()) return true;
      std::this_thread::yield();
    }
    const std::int64_t tns = timeout_ns_.load(std::memory_order_relaxed);
    std::unique_lock<std::mutex> lk(m);
    waiting.fetch_add(1, std::memory_order_seq_cst);
    bool ok = true;
    if (tns <= 0)
      cv.wait(lk, done);
    else
      ok = cv.wait_for(lk, std::chrono::nanoseconds(tns), done);
    waiting.fetch_sub(1, std::memory_order_relaxed);
    return ok;
  }

  template <typename Pred>
  void wait_collective(Pred pred, int rank, PerfCounters& c) {
    auto done = [&] { return pred() || aborted(); };
    if (!done()) {
      const auto t0 = SteadyClock::now();
      if (!wait_until(pred, coll_m_, coll_cv_, coll_waiting_)) {
        ++c.fault_timeouts;
        throw CommError::timeout(rank, -1, fault::Op::Collective,
                                 timeout_seconds());
      }
      c.reduce_wait_seconds += seconds_since(t0);
    }
    check_abort();
  }

  void notify_collective() {
    notify_if_waiting(coll_m_, coll_cv_, coll_waiting_);
  }

  std::shared_ptr<net::Transport> transport_;
  int size_;

  // In-process reduction tree state (idle on multi-process transports).
  int stages_ = 0;  ///< ceil(log2 P)
  std::unique_ptr<ReduceCell[]> cells_;
  Vector bcast_;
  std::atomic<std::uint64_t> bcast_gen_{0};
  std::mutex coll_m_;
  std::condition_variable coll_cv_;
  std::atomic<int> coll_waiting_{0};

  // In-process barrier state (idle on multi-process transports).
  std::mutex barrier_m_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::atomic<std::uint64_t> barrier_gen_{0};
  std::atomic<int> barrier_waiting_{0};

  std::atomic<std::int64_t> timeout_ns_{0};  ///< 0 = waits never time out
};

/// The thread side of a persistent Team: one parked worker per LOCAL
/// rank, a job-generation handshake to dispatch work, and the per-rank
/// counter and error slots the dispatcher reads back after each job
/// (sized for the global team; slots of remote ranks stay empty in this
/// process).  All cross-thread publication runs through `m` (job
/// dispatch) and the done-count handshake (job completion), so the
/// dispatcher may freely reset TeamState between jobs.
class TeamRuntime {
 public:
  explicit TeamRuntime(std::shared_ptr<net::Transport> transport)
      : state_(std::move(transport)),
        nranks_(state_.size()),
        counters_(static_cast<std::size_t>(nranks_)),
        errors_(static_cast<std::size_t>(nranks_)) {
    threads_.reserve(static_cast<std::size_t>(state_.local_ranks()));
    for (int i = 0; i < state_.local_ranks(); ++i) {
      const int r = state_.rank_base() + i;
      threads_.emplace_back([this, r] { worker(r); });
    }
  }

  ~TeamRuntime() {
    {
      std::lock_guard<std::mutex> lk(m_);
      shutdown_ = true;
    }
    job_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  [[nodiscard]] int size() const noexcept { return nranks_; }
  [[nodiscard]] int local_size() const noexcept {
    return state_.local_ranks();
  }

  std::vector<PerfCounters> run(const std::function<void(Comm&)>& fn,
                                obs::Trace* trace) {
    if (trace != nullptr)
      PFEM_CHECK_MSG(trace->nranks() == nranks_,
                     "Team::run: trace lane count does not match team size");
    const int nlocal = state_.local_ranks();
    {
      std::lock_guard<std::mutex> lk(m_);
      PFEM_CHECK_MSG(job_ == nullptr, "Team::run: a job is already running");
      // The previous job (normal, failed or cancelled) may have left
      // channels and reduction cells mid-flight; restore quiescence while
      // every rank is parked.
      state_.reset_for_job();
      cancel_requested_.store(false, std::memory_order_seq_cst);
      for (int r = 0; r < nranks_; ++r) {
        counters_[static_cast<std::size_t>(r)].reset();
        errors_[static_cast<std::size_t>(r)] = nullptr;
      }
      job_ = &fn;
      trace_ = trace;
      done_count_ = 0;
      ++job_gen_;
    }
    job_cv_.notify_all();
    {
      std::unique_lock<std::mutex> lk(m_);
      done_cv_.wait(lk, [&] { return done_count_ == nlocal; });
      job_ = nullptr;
      trace_ = nullptr;
    }
    rethrow_job_error();
    return counters_;
  }

  void cancel() {
    cancel_requested_.store(true, std::memory_order_seq_cst);
    state_.abort();
  }

  [[nodiscard]] bool cancel_requested() const noexcept {
    return cancel_requested_.load(std::memory_order_seq_cst);
  }

  void set_fault_injector(fault::FaultInjector* injector) {
    std::lock_guard<std::mutex> lk(m_);
    PFEM_CHECK_MSG(job_ == nullptr,
                   "set_fault_injector: a job is in flight");
    PFEM_CHECK_MSG(injector == nullptr || injector->plan().nranks == nranks_,
                   "set_fault_injector: plan rank count "
                   << (injector ? injector->plan().nranks : 0)
                   << " does not match team size " << nranks_);
    injector_ = injector;
  }

  void set_comm_timeout(double seconds) noexcept {
    state_.set_timeout(seconds);
  }

 private:
  void worker(int r) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(Comm&)>* fn = nullptr;
      obs::Tracer* lane = nullptr;
      fault::FaultInjector* injector = nullptr;
      {
        std::unique_lock<std::mutex> lk(m_);
        job_cv_.wait(lk, [&] { return shutdown_ || job_gen_ != seen; });
        if (shutdown_) return;
        seen = job_gen_;
        fn = job_;
        injector = injector_;
        if (trace_ != nullptr) lane = &trace_->rank(r);
      }
      PerfCounters& c = counters_[static_cast<std::size_t>(r)];
      Comm comm(r, &state_, &c, lane, injector);
      const auto t0 = SteadyClock::now();
      try {
        (*fn)(comm);
      } catch (...) {
        errors_[static_cast<std::size_t>(r)] = std::current_exception();
        state_.abort();
      }
      c.total_seconds += seconds_since(t0);
      bool last;
      {
        std::lock_guard<std::mutex> lk(m_);
        last = (++done_count_ == state_.local_ranks());
      }
      if (last) done_cv_.notify_all();
    }
  }

  /// Rethrow the originating failure of the finished job: a real error
  /// wins over the secondary Aborted unwinds; all-Aborted means the
  /// teardown came from cancel() — or, on a multi-process transport,
  /// from a failure in ANOTHER process (that process rethrows the real
  /// error; this one reports the typed Aborted).
  void rethrow_job_error() {
    std::exception_ptr first_aborted;
    for (const std::exception_ptr& e : errors_) {
      if (!e) continue;
      try {
        std::rethrow_exception(e);
      } catch (const Aborted&) {
        if (!first_aborted) first_aborted = e;
      } catch (...) {
        std::rethrow_exception(e);
      }
    }
    if (first_aborted) {
      // A pending cancel is consumed by the job it killed; the flag must
      // not leak into (or mislabel) the next job.
      if (cancel_requested_.exchange(false, std::memory_order_seq_cst))
        throw Cancelled{};
      std::rethrow_exception(first_aborted);
    }
  }

  TeamState state_;
  int nranks_;
  std::vector<PerfCounters> counters_;
  std::vector<std::exception_ptr> errors_;
  std::vector<std::thread> threads_;

  std::mutex m_;
  std::condition_variable job_cv_;   ///< workers wait for a job
  std::condition_variable done_cv_;  ///< dispatcher waits for completion
  const std::function<void(Comm&)>* job_ = nullptr;
  obs::Trace* trace_ = nullptr;  ///< lanes for the in-flight job, or null
  std::uint64_t job_gen_ = 0;
  int done_count_ = 0;
  bool shutdown_ = false;
  std::atomic<bool> cancel_requested_{false};
  fault::FaultInjector* injector_ = nullptr;  ///< guarded by m_
};

}  // namespace detail

Comm::Comm(int rank, detail::TeamState* team, PerfCounters* counters,
           obs::Tracer* tracer, fault::FaultInjector* injector)
    : rank_(rank), team_(team), counters_(counters), tracer_(tracer),
      injector_(injector) {
  if (injector_ != nullptr) {
    send_seq_.assign(static_cast<std::size_t>(team_->size()), 0);
    recv_seq_.assign(static_cast<std::size_t>(team_->size()), 0);
  }
}

int Comm::size() const noexcept { return team_->size(); }

int Comm::local_leader() const noexcept { return team_->rank_base(); }

bool Comm::is_local(int r) const noexcept { return team_->is_local(r); }

const fault::FaultAction* Comm::consume_fault(fault::Op op, int peer) {
  fault::FaultSite site;
  site.rank = rank_;
  site.peer = peer;
  site.op = op;
  switch (op) {
    case fault::Op::Send:
      site.seq = send_seq_[static_cast<std::size_t>(peer)]++;
      break;
    case fault::Op::Recv:
      site.seq = recv_seq_[static_cast<std::size_t>(peer)]++;
      break;
    case fault::Op::Collective:
      site.seq = coll_fault_seq_++;
      break;
  }
  const fault::FaultAction* a = injector_->fire(site);
  if (a == nullptr) return nullptr;
  const auto id = static_cast<std::uint32_t>(peer + 1);
  switch (a->type) {
    case fault::FaultType::Delay: {
      OBS_SPAN(tracer_, "fault_delay", obs::Cat::Fault, id);
      ++counters_->fault_delays;
      team_->fault_sleep(a->seconds);
      return nullptr;  // op proceeds normally, just late
    }
    case fault::FaultType::Stall: {
      OBS_SPAN(tracer_, "fault_stall", obs::Cat::Fault, id);
      ++counters_->fault_stalls;
      team_->fault_sleep(a->seconds);
      return nullptr;
    }
    case fault::FaultType::Crash: {
      { OBS_SPAN(tracer_, "fault_crash", obs::Cat::Fault, id); }
      ++counters_->fault_crashes;
      throw CommError::crash(site);
    }
    case fault::FaultType::Drop: {
      { OBS_SPAN(tracer_, "fault_drop", obs::Cat::Fault, id); }
      ++counters_->fault_drops;
      return a;  // send() keeps the message off the wire
    }
    case fault::FaultType::Duplicate: {
      { OBS_SPAN(tracer_, "fault_dup", obs::Cat::Fault, id); }
      ++counters_->fault_dups;
      return a;  // send() pushes a second wire copy
    }
  }
  return nullptr;
}

void Comm::note_comm_error(const CommError& e, int peer) {
  // 1:1 with the typed failure the op surfaces: a deadline expiry gets
  // a "fault_timeout" span, a detected wire loss a "fault_lost" span.
  OBS_SPAN(tracer_,
           e.kind() == fault::CommErrorKind::Lost ? "fault_lost"
                                                  : "fault_timeout",
           obs::Cat::Fault, static_cast<std::uint32_t>(peer + 1));
}

void Comm::send(int dest, int tag, std::span<const real_t> data) {
  OBS_SPAN(tracer_, "send", obs::Cat::Exchange,
           static_cast<std::uint32_t>(dest));
  PFEM_CHECK(dest >= 0 && dest < size());
  PFEM_CHECK_MSG(dest != rank_, "self-send is not supported");
  const fault::FaultAction* fa =
      injector_ != nullptr ? consume_fault(fault::Op::Send, dest) : nullptr;
  if (fa != nullptr && fa->type == fault::FaultType::Drop) {
    // Lost on the wire: the payload never enters the channel and the
    // traffic counters never see it, but its wire seq is consumed — the
    // receiver detects the gap (CommErrorKind::Lost) at the next
    // message, or times out if none follows.
    team_->mark_dropped(rank_, dest);
    return;
  }
  counters_->neighbor_msgs += 1;
  counters_->neighbor_bytes += sizeof(real_t) * data.size();
  counters_->msg_size_hist[PerfCounters::hist_bucket(
      sizeof(real_t) * data.size())] += 1;
  try {
    team_->push(rank_, dest, tag, data, *counters_);
    if (fa != nullptr && fa->type == fault::FaultType::Duplicate)
      team_->push(rank_, dest, tag, data, *counters_, /*wire_dup=*/true);
  } catch (const CommError& e) {
    note_comm_error(e, dest);
    throw;
  }
}

void Comm::recv(int src, int tag, Vector& out) {
  OBS_SPAN(tracer_, "recv", obs::Cat::Exchange,
           static_cast<std::uint32_t>(src));
  PFEM_CHECK(src >= 0 && src < size());
  PFEM_CHECK_MSG(src != rank_, "self-recv is not supported");
  if (injector_ != nullptr) consume_fault(fault::Op::Recv, src);
  try {
    detail::SwapSink sink(&out);
    team_->take(rank_, src, tag, sink, *counters_);
  } catch (const CommError& e) {
    note_comm_error(e, src);
    throw;
  }
  counters_->neighbor_msgs_recv += 1;
  counters_->neighbor_bytes_recv += sizeof(real_t) * out.size();
}

void Comm::recv(int src, int tag, std::span<real_t> out) {
  OBS_SPAN(tracer_, "recv", obs::Cat::Exchange,
           static_cast<std::uint32_t>(src));
  PFEM_CHECK(src >= 0 && src < size());
  PFEM_CHECK_MSG(src != rank_, "self-recv is not supported");
  if (injector_ != nullptr) consume_fault(fault::Op::Recv, src);
  try {
    detail::SpanSink sink(out);
    team_->take(rank_, src, tag, sink, *counters_);
  } catch (const CommError& e) {
    note_comm_error(e, src);
    throw;
  }
  counters_->neighbor_msgs_recv += 1;
  counters_->neighbor_bytes_recv += sizeof(real_t) * out.size();
}

void Comm::exchange_start(int peer, int tag, std::span<const real_t> data) {
  send(peer, tag, data);
}

void Comm::exchange_finish(int peer, int tag, std::span<real_t> out) {
  recv(peer, tag, out);
}

void Comm::barrier() {
  OBS_SPAN(tracer_, "barrier", obs::Cat::Reduce);
  if (injector_ != nullptr) consume_fault(fault::Op::Collective, -1);
  try {
    team_->barrier(rank_, *counters_);
  } catch (const CommError& e) {
    note_comm_error(e, -1);
    throw;
  }
}

real_t Comm::allreduce_sum(real_t x) {
  OBS_SPAN(tracer_, "allreduce", obs::Cat::Reduce);
  if (injector_ != nullptr) consume_fault(fault::Op::Collective, -1);
  counters_->global_reductions += 1;
  counters_->global_bytes += sizeof(real_t);
  try {
    team_->allreduce(rank_, ++coll_seq_, std::span<real_t>(&x, 1),
                     /*take_max=*/false, *counters_);
  } catch (const CommError& e) {
    note_comm_error(e, -1);
    throw;
  }
  return x;
}

void Comm::allreduce_sum(std::span<real_t> inout) {
  OBS_SPAN(tracer_, "allreduce", obs::Cat::Reduce);
  if (injector_ != nullptr) consume_fault(fault::Op::Collective, -1);
  counters_->global_reductions += 1;
  counters_->global_bytes += sizeof(real_t) * inout.size();
  try {
    team_->allreduce(rank_, ++coll_seq_, inout, /*take_max=*/false,
                     *counters_);
  } catch (const CommError& e) {
    note_comm_error(e, -1);
    throw;
  }
}

real_t Comm::allreduce_max(real_t x) {
  OBS_SPAN(tracer_, "allreduce", obs::Cat::Reduce);
  if (injector_ != nullptr) consume_fault(fault::Op::Collective, -1);
  counters_->global_reductions += 1;
  counters_->global_bytes += sizeof(real_t);
  try {
    team_->allreduce(rank_, ++coll_seq_, std::span<real_t>(&x, 1),
                     /*take_max=*/true, *counters_);
  } catch (const CommError& e) {
    note_comm_error(e, -1);
    throw;
  }
  return x;
}

Team::Team(int nranks) : Team(TeamConfig{nranks, nullptr}) {}

Team::Team(TeamConfig cfg) {
  std::shared_ptr<net::Transport> transport = std::move(cfg.transport);
  if (transport == nullptr) {
    PFEM_CHECK(cfg.nranks >= 1);
    transport = net::make_inproc_transport(cfg.nranks);
  } else {
    PFEM_CHECK_MSG(cfg.nranks == 0 || cfg.nranks == transport->nranks(),
                   "Team: nranks " << cfg.nranks
                                   << " disagrees with the transport's "
                                   << transport->nranks());
  }
  rt_ = std::make_unique<detail::TeamRuntime>(std::move(transport));
}

Team::~Team() = default;

int Team::size() const noexcept { return rt_->size(); }

int Team::local_size() const noexcept { return rt_->local_size(); }

std::vector<PerfCounters> Team::run(const std::function<void(Comm&)>& fn,
                                    obs::Trace* trace) {
  return rt_->run(fn, trace);
}

void Team::cancel() { rt_->cancel(); }

bool Team::cancel_requested() const noexcept { return rt_->cancel_requested(); }

void Team::set_fault_injector(fault::FaultInjector* injector) {
  rt_->set_fault_injector(injector);
}

void Team::set_comm_timeout(double seconds) noexcept {
  rt_->set_comm_timeout(seconds);
}

std::vector<PerfCounters> run_spmd(int nranks,
                                   const std::function<void(Comm&)>& fn,
                                   obs::Trace* trace,
                                   fault::FaultInjector* injector,
                                   double comm_timeout_seconds) {
  Team team(nranks);
  if (comm_timeout_seconds > 0.0) team.set_comm_timeout(comm_timeout_seconds);
  if (injector != nullptr) team.set_fault_injector(injector);
  return team.run(fn, trace);
}

}  // namespace pfem::par
