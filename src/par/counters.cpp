#include "par/counters.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace pfem::par {

namespace {

void append_rank(std::ostringstream& os, const PerfCounters& c) {
  os << "{"
     << "\"flops\":" << c.flops << ","
     << "\"neighbor\":{"
     << "\"msgs_sent\":" << c.neighbor_msgs << ","
     << "\"bytes_sent\":" << c.neighbor_bytes << ","
     << "\"msgs_recv\":" << c.neighbor_msgs_recv << ","
     << "\"bytes_recv\":" << c.neighbor_bytes_recv << ","
     << "\"exchanges\":" << c.neighbor_exchanges << "},"
     << "\"global\":{"
     << "\"reductions\":" << c.global_reductions << ","
     << "\"bytes\":" << c.global_bytes << "},"
     << "\"kernels\":{"
     << "\"matvecs\":" << c.matvecs << ","
     << "\"inner_products\":" << c.inner_products << ","
     << "\"vector_updates\":" << c.vector_updates << ","
     << "\"coarse_solves\":" << c.coarse_solves << "},"
     << "\"fault\":{"
     << "\"delays\":" << c.fault_delays << ","
     << "\"drops\":" << c.fault_drops << ","
     << "\"dups\":" << c.fault_dups << ","
     << "\"stalls\":" << c.fault_stalls << ","
     << "\"crashes\":" << c.fault_crashes << ","
     << "\"timeouts\":" << c.fault_timeouts << ","
     << "\"retries\":" << c.fault_retries << "},"
     << "\"time\":{"
     << "\"total_s\":" << c.total_seconds << ","
     << "\"compute_s\":" << c.compute_seconds() << ","
     << "\"neighbor_wait_s\":" << c.neighbor_wait_seconds << ","
     << "\"reduce_wait_s\":" << c.reduce_wait_seconds << "},"
     << "\"msg_size_hist\":[";
  for (std::size_t b = 0; b < PerfCounters::kHistBuckets; ++b) {
    if (b != 0) os << ",";
    os << c.msg_size_hist[b];
  }
  os << "]}";
}

void append_list(std::ostringstream& os, std::span<const PerfCounters> list) {
  os << "[";
  for (std::size_t r = 0; r < list.size(); ++r) {
    if (r != 0) os << ",";
    append_rank(os, list[r]);
  }
  os << "]";
}

}  // namespace

std::string counters_json(std::span<const PerfCounters> ranks,
                          std::span<const PerfCounters> setup) {
  std::ostringstream os;
  os << "{\"ranks\":";
  append_list(os, ranks);
  if (!setup.empty()) {
    os << ",\"setup\":";
    append_list(os, setup);
  }
  os << "}\n";
  return os.str();
}

bool dump_counters_json(const std::string& path,
                        std::span<const PerfCounters> ranks,
                        std::span<const PerfCounters> setup) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "counters-json: cannot open '%s'\n", path.c_str());
    return false;
  }
  out << counters_json(ranks, setup);
  return out.good();
}

}  // namespace pfem::par
