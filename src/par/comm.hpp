// Shared-memory message-passing runtime (the MPI substitute).
//
// The paper runs C+MPI on an IBM SP2 and an SGI Origin.  Neither machine
// (nor MPI) is available here, so this module provides the same
// programming model on one box: `run_spmd(P, fn)` launches P ranks as
// threads, each receiving a `Comm` handle with blocking point-to-point
// send/recv (matched on source+tag), barrier, and deterministic
// allreduce.  All solver code in src/core is written SPMD against this
// API exactly as it would be against MPI_Send/MPI_Recv/MPI_Allreduce.
// `Team` is the persistent form: ranks are spawned once and parked
// between jobs, which is what lets a solve service keep a warm team
// instead of paying P thread spawns per solve.
//
// Transport: one persistent single-producer/single-consumer channel per
// ordered rank pair, with a fixed ring of preallocated payload slots.
// Steady state a message costs two memcpys (sender -> slot -> receiver)
// and zero heap allocations; blocked ranks spin briefly, then park on a
// condition variable with a predicate (no timed polling).
//
// Determinism: allreduce combines contributions along a fixed binary
// tournament tree (pair order determined by rank indices alone, never by
// arrival), the root's result is broadcast, so every rank observes
// bit-identical results and all ranks take identical convergence
// branches — the property MPI programs get from MPI_Allreduce's single
// rooted combine.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "obs/trace.hpp"
#include "par/counters.hpp"

namespace pfem::par {

namespace detail {
class TeamState;
class TeamRuntime;
}

/// Per-rank communicator handle.  Valid only inside run_spmd's callback.
class Comm {
 public:
  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept;

  /// Blocking tagged send of a real vector to `dest`.
  void send(int dest, int tag, std::span<const real_t> data);

  /// Blocking receive matching (src, tag); resizes `out`.
  void recv(int src, int tag, Vector& out);

  /// Blocking receive matching (src, tag) into a preposted buffer whose
  /// size must equal the message length exactly — the zero-allocation
  /// path the exchange kernels use.
  void recv(int src, int tag, std::span<real_t> out);

  /// Synchronize all ranks.
  void barrier();

  /// Deterministic global sum of one scalar (every rank gets the same
  /// bit pattern).
  [[nodiscard]] real_t allreduce_sum(real_t x);

  /// Deterministic element-wise global sum.
  void allreduce_sum(std::span<real_t> inout);

  /// Deterministic global max.
  [[nodiscard]] real_t allreduce_max(real_t x);

  /// This rank's performance counters (mutable — kernels add to them).
  [[nodiscard]] PerfCounters& counters() noexcept { return *counters_; }

  /// This rank's trace lane, or nullptr when the job runs untraced.
  /// Kernels pass it straight to OBS_SPAN (null-safe).
  [[nodiscard]] obs::Tracer* tracer() noexcept { return tracer_; }

 private:
  friend class detail::TeamRuntime;
  Comm(int rank, detail::TeamState* team, PerfCounters* counters,
       obs::Tracer* tracer)
      : rank_(rank), team_(team), counters_(counters), tracer_(tracer) {}

  int rank_;
  detail::TeamState* team_;
  PerfCounters* counters_;
  obs::Tracer* tracer_;
  std::uint64_t coll_seq_ = 0;  ///< this rank's collective-op count
};

/// Thrown out of Team::run when the job was torn down by Team::cancel()
/// rather than by a rank's own failure.
class Cancelled : public Error {
 public:
  Cancelled() : Error("SPMD job cancelled") {}
};

/// A persistent SPMD rank team.  Threads are spawned once at construction
/// and parked between jobs, so a warm solve pays a condvar wakeup instead
/// of P thread spawns/joins; channel payload rings, reduction cells and
/// counters are likewise allocated once and recycled across jobs.
///
/// run() dispatches one SPMD job to all ranks and blocks until every rank
/// returns; jobs are serialized (one in flight).  cancel() requests
/// cooperative teardown of the in-flight job: blocked ranks unwind
/// through the abort path immediately, running ranks at their next
/// communication call, and run() then throws Cancelled.  A rank's own
/// exception still wins over the secondary unwinds and is rethrown as-is.
class Team {
 public:
  explicit Team(int nranks);
  ~Team();
  Team(const Team&) = delete;
  Team& operator=(const Team&) = delete;

  [[nodiscard]] int size() const noexcept;

  /// Run `fn` as one SPMD job on the parked ranks; returns the per-rank
  /// counters of this job (reset at job start).  With a non-null
  /// `trace` (whose nranks must equal the team size), each rank's Comm
  /// carries that rank's trace lane and the runtime's send/recv/
  /// allreduce/barrier record spans into it; the lanes are safe to read
  /// once run() returned.
  std::vector<PerfCounters> run(const std::function<void(Comm&)>& fn,
                                obs::Trace* trace = nullptr);

  /// Request cooperative cancellation of the in-flight job (safe from any
  /// thread).  No-op when idle; the flag is cleared when the next job
  /// starts.
  void cancel();

  /// Has cancel() been called since the current/last job started?
  [[nodiscard]] bool cancel_requested() const noexcept;

 private:
  std::unique_ptr<detail::TeamRuntime> rt_;
};

/// Launch `nranks` SPMD ranks running `fn`, one thread each; returns the
/// per-rank counters.  Any exception thrown by a rank is rethrown here
/// after all threads join.  Equivalent to a single-job Team — callers
/// with many solves should hold a Team and amortize the spawn.
std::vector<PerfCounters> run_spmd(int nranks,
                                   const std::function<void(Comm&)>& fn,
                                   obs::Trace* trace = nullptr);

}  // namespace pfem::par
