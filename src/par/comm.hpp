// Shared-memory message-passing runtime (the MPI substitute).
//
// The paper runs C+MPI on an IBM SP2 and an SGI Origin.  Neither machine
// (nor MPI) is available here, so this module provides the same
// programming model on one box: `run_spmd(P, fn)` launches P ranks as
// threads, each receiving a `Comm` handle with blocking point-to-point
// send/recv (matched on source+tag), barrier, and deterministic
// allreduce.  All solver code in src/core is written SPMD against this
// API exactly as it would be against MPI_Send/MPI_Recv/MPI_Allreduce.
//
// Transport: one persistent single-producer/single-consumer channel per
// ordered rank pair, with a fixed ring of preallocated payload slots.
// Steady state a message costs two memcpys (sender -> slot -> receiver)
// and zero heap allocations; blocked ranks spin briefly, then park on a
// condition variable with a predicate (no timed polling).
//
// Determinism: allreduce combines contributions along a fixed binary
// tournament tree (pair order determined by rank indices alone, never by
// arrival), the root's result is broadcast, so every rank observes
// bit-identical results and all ranks take identical convergence
// branches — the property MPI programs get from MPI_Allreduce's single
// rooted combine.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "par/counters.hpp"

namespace pfem::par {

namespace detail {
class TeamState;
}

/// Per-rank communicator handle.  Valid only inside run_spmd's callback.
class Comm {
 public:
  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept;

  /// Blocking tagged send of a real vector to `dest`.
  void send(int dest, int tag, std::span<const real_t> data);

  /// Blocking receive matching (src, tag); resizes `out`.
  void recv(int src, int tag, Vector& out);

  /// Blocking receive matching (src, tag) into a preposted buffer whose
  /// size must equal the message length exactly — the zero-allocation
  /// path the exchange kernels use.
  void recv(int src, int tag, std::span<real_t> out);

  /// Synchronize all ranks.
  void barrier();

  /// Deterministic global sum of one scalar (every rank gets the same
  /// bit pattern).
  [[nodiscard]] real_t allreduce_sum(real_t x);

  /// Deterministic element-wise global sum.
  void allreduce_sum(std::span<real_t> inout);

  /// Deterministic global max.
  [[nodiscard]] real_t allreduce_max(real_t x);

  /// This rank's performance counters (mutable — kernels add to them).
  [[nodiscard]] PerfCounters& counters() noexcept { return *counters_; }

 private:
  friend std::vector<PerfCounters> run_spmd(
      int, const std::function<void(Comm&)>&);
  Comm(int rank, detail::TeamState* team, PerfCounters* counters)
      : rank_(rank), team_(team), counters_(counters) {}

  int rank_;
  detail::TeamState* team_;
  PerfCounters* counters_;
  std::uint64_t coll_seq_ = 0;  ///< this rank's collective-op count
};

/// Launch `nranks` SPMD ranks running `fn`, one thread each; returns the
/// per-rank counters.  Any exception thrown by a rank is rethrown here
/// after all threads join.
std::vector<PerfCounters> run_spmd(int nranks,
                                   const std::function<void(Comm&)>& fn);

}  // namespace pfem::par
