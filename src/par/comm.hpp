// Shared-memory message-passing runtime (the MPI substitute).
//
// The paper runs C+MPI on an IBM SP2 and an SGI Origin.  Neither machine
// (nor MPI) is available here, so this module provides the same
// programming model on one box: `run_spmd(P, fn)` launches P ranks as
// threads, each receiving a `Comm` handle with blocking point-to-point
// send/recv (matched on source+tag), barrier, and deterministic
// allreduce.  All solver code in src/core is written SPMD against this
// API exactly as it would be against MPI_Send/MPI_Recv/MPI_Allreduce.
// `Team` is the persistent form: ranks are spawned once and parked
// between jobs, which is what lets a solve service keep a warm team
// instead of paying P thread spawns per solve.
//
// Transport: one persistent single-producer/single-consumer channel per
// ordered rank pair, with a fixed ring of preallocated payload slots.
// Steady state a message costs two memcpys (sender -> slot -> receiver)
// and zero heap allocations; blocked ranks spin briefly, then park on a
// condition variable with a predicate (no timed polling).
//
// Determinism: allreduce combines contributions along a fixed binary
// tournament tree (pair order determined by rank indices alone, never by
// arrival), the root's result is broadcast, so every rank observes
// bit-identical results and all ranks take identical convergence
// branches — the property MPI programs get from MPI_Allreduce's single
// rooted combine.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "fault/fault.hpp"
#include "net/transport.hpp"
#include "obs/trace.hpp"
#include "par/counters.hpp"

namespace pfem::par {

namespace detail {
class TeamState;
class TeamRuntime;
}

/// Typed channel failure (timeout or injected crash) — defined in
/// fault/fault.hpp so solvers can catch it without runtime internals;
/// aliased here because the runtime is what throws it.
using fault::CommError;

/// Per-rank communicator handle.  Valid only inside run_spmd's callback.
class Comm {
 public:
  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept;

  /// Blocking tagged send of a real vector to `dest`.
  void send(int dest, int tag, std::span<const real_t> data);

  /// Blocking receive matching (src, tag); resizes `out`.
  void recv(int src, int tag, Vector& out);

  /// Blocking receive matching (src, tag) into a preposted buffer whose
  /// size must equal the message length exactly — the zero-allocation
  /// path the exchange kernels use.
  void recv(int src, int tag, std::span<real_t> out);

  /// Split neighbor exchange, first half: post this rank's contribution
  /// toward `peer` (one call per peer).  Delegates to send(), so wire
  /// ordering, PerfCounters traffic accounting, the Op::Send fault site
  /// and the "send" span are exactly those of a monolithic exchange.
  /// Between start and finish the caller may compute anything that does
  /// not read the in-flight entries — the transport keeps at most one
  /// outstanding message per ordered rank pair here, far below the
  /// channel ring capacity, so the posted sends can never block on a
  /// peer that is still computing its interior rows.
  void exchange_start(int peer, int tag, std::span<const real_t> data);

  /// Split neighbor exchange, second half: complete the receive from
  /// `peer` into a preposted buffer (one call per peer, any peer order —
  /// determinism comes from the caller folding in fixed rank order).
  /// Delegates to recv(): same Op::Recv fault site, same "recv" span,
  /// same traffic counters.
  void exchange_finish(int peer, int tag, std::span<real_t> out);

  /// Synchronize all ranks.
  void barrier();

  /// Deterministic global sum of one scalar (every rank gets the same
  /// bit pattern).
  [[nodiscard]] real_t allreduce_sum(real_t x);

  /// Deterministic element-wise global sum.
  void allreduce_sum(std::span<real_t> inout);

  /// Deterministic global max.
  [[nodiscard]] real_t allreduce_max(real_t x);

  /// Lowest rank hosted by THIS process.  For in-process teams this is
  /// 0 on every rank (the classic "rank 0 does it" guard); on a
  /// multi-process transport each process has its own leader, which is
  /// what shared-state writes must key on — every process needs its own
  /// copy of results that ranks compute redundantly from allreduced
  /// scalars.
  [[nodiscard]] int local_leader() const noexcept;

  /// Is rank `r` hosted by this process (sharing this address space)?
  [[nodiscard]] bool is_local(int r) const noexcept;

  /// This rank's performance counters (mutable — kernels add to them).
  [[nodiscard]] PerfCounters& counters() noexcept { return *counters_; }

  /// This rank's trace lane, or nullptr when the job runs untraced.
  /// Kernels pass it straight to OBS_SPAN (null-safe).
  [[nodiscard]] obs::Tracer* tracer() noexcept { return tracer_; }

 private:
  friend class detail::TeamRuntime;
  Comm(int rank, detail::TeamState* team, PerfCounters* counters,
       obs::Tracer* tracer, fault::FaultInjector* injector);

  /// Consult the armed injector at the current (op, peer) site and
  /// advance the site counter.  Applies Delay/Stall (interruptible
  /// sleep) and Crash (throws CommError) in place; returns the action
  /// for the op-specific wire faults (Drop/Duplicate) or nullptr.
  const fault::FaultAction* consume_fault(fault::Op op, int peer);

  /// Stamp the "fault_timeout" span when a channel wait surfaced a
  /// timeout CommError (the counter is bumped where the wait timed out).
  void note_comm_error(const CommError& e, int peer);

  int rank_;
  detail::TeamState* team_;
  PerfCounters* counters_;
  obs::Tracer* tracer_;
  std::uint64_t coll_seq_ = 0;  ///< this rank's collective-op count

  // Fault-injection site counters (allocated only when a plan is armed;
  // a fault-free job pays one null check per op).
  fault::FaultInjector* injector_ = nullptr;
  std::vector<std::uint64_t> send_seq_;   ///< per-peer send count
  std::vector<std::uint64_t> recv_seq_;   ///< per-peer recv count
  std::uint64_t coll_fault_seq_ = 0;      ///< collective count (incl. barrier)
};

/// Thrown out of Team::run when the job was torn down by Team::cancel()
/// rather than by a rank's own failure.
class Cancelled : public Error {
 public:
  Cancelled() : Error("SPMD job cancelled") {}
};

/// How a Team reaches its ranks.  The default (null transport) is the
/// in-process wire: all ranks are threads of this process talking
/// through the PR-1 channel rings.  A non-null transport may instead
/// place rank blocks in other processes (shared-memory rings, socket
/// frames); THIS Team then spawns threads only for the ranks its
/// process hosts, and every cooperating process constructs its own Team
/// over its own end of the same transport and calls run() with the same
/// job.  Collectives stay deterministic and bit-identical across
/// transports: the runtime folds contributions in the same fixed
/// tournament-tree order whether the stage crosses a cache line or a
/// socket.
struct TeamConfig {
  /// Global team size.  0 means "take it from the transport"; when both
  /// are given they must agree.
  int nranks = 0;
  std::shared_ptr<net::Transport> transport;  ///< null = in-process
};

/// A persistent SPMD rank team.  Threads are spawned once at construction
/// and parked between jobs, so a warm solve pays a condvar wakeup instead
/// of P thread spawns/joins; channel payload rings, reduction cells and
/// counters are likewise allocated once and recycled across jobs.
///
/// run() dispatches one SPMD job to all ranks and blocks until every rank
/// returns; jobs are serialized (one in flight).  cancel() requests
/// cooperative teardown of the in-flight job: blocked ranks unwind
/// through the abort path immediately, running ranks at their next
/// communication call, and run() then throws Cancelled.  A rank's own
/// exception still wins over the secondary unwinds and is rethrown as-is.
class Team {
 public:
  explicit Team(int nranks);
  explicit Team(TeamConfig cfg);
  ~Team();
  Team(const Team&) = delete;
  Team& operator=(const Team&) = delete;

  /// Global team size (across every process of the transport).
  [[nodiscard]] int size() const noexcept;

  /// Ranks hosted by THIS process (== size() for in-process teams).
  [[nodiscard]] int local_size() const noexcept;

  /// Run `fn` as one SPMD job on the parked ranks; returns the per-rank
  /// counters of this job (reset at job start).  With a non-null
  /// `trace` (whose nranks must equal the team size), each rank's Comm
  /// carries that rank's trace lane and the runtime's send/recv/
  /// allreduce/barrier record spans into it; the lanes are safe to read
  /// once run() returned.
  std::vector<PerfCounters> run(const std::function<void(Comm&)>& fn,
                                obs::Trace* trace = nullptr);

  /// Request cooperative cancellation of the in-flight job (safe from any
  /// thread).  No-op when idle; the flag is cleared when the next job
  /// starts.
  void cancel();

  /// Has cancel() been called since the current/last job started?
  [[nodiscard]] bool cancel_requested() const noexcept;

  /// Arm deterministic fault injection for subsequent jobs (nullptr
  /// disarms).  The injector's plan must match the team size and must
  /// outlive every job that uses it; only callable between jobs.
  void set_fault_injector(fault::FaultInjector* injector);

  /// Bound every blocking channel/collective wait: a wait exceeding
  /// `seconds` throws a typed CommError instead of hanging on a dead or
  /// silent peer.  0 disables (the default).  Takes effect immediately,
  /// including for the in-flight job's future waits.
  void set_comm_timeout(double seconds) noexcept;

 private:
  std::unique_ptr<detail::TeamRuntime> rt_;
};

/// Launch `nranks` SPMD ranks running `fn`, one thread each; returns the
/// per-rank counters.  Any exception thrown by a rank is rethrown here
/// after all threads join.  Equivalent to a single-job Team — callers
/// with many solves should hold a Team and amortize the spawn.
/// `injector`/`comm_timeout_seconds` are the ObserveOptions chaos
/// hooks, armed on the one-shot team before the job runs.
std::vector<PerfCounters> run_spmd(int nranks,
                                   const std::function<void(Comm&)>& fn,
                                   obs::Trace* trace = nullptr,
                                   fault::FaultInjector* injector = nullptr,
                                   double comm_timeout_seconds = 0.0);

}  // namespace pfem::par
