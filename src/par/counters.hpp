// Per-rank performance counters.
//
// The paper's Table 1 accounts the parallel cost of one Arnoldi iteration
// in terms of nearest-neighbor communications, global communications,
// mat-vecs, inner products and vector updates.  Every distributed kernel
// increments these counters; the cost model (cost_model.hpp) turns them
// into modeled machine time, and bench/table1_complexity prints them per
// iteration to reproduce the table.
//
// Beyond the Table-1 counts, the runtime records an observability layer:
// wall time split into compute / neighbor-wait / reduction-wait, both
// sides of the point-to-point traffic (messages are charged to the sender
// *and* the receiver — the cost model bills α at each end), and a log2
// histogram of sent message sizes.  counters_json() serializes all of it
// for the bench binaries' --counters-json dumps.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace pfem::par {

struct PerfCounters {
  /// Histogram buckets: bucket b counts sent messages whose payload is in
  /// [2^(b-1), 2^b) bytes (bucket 0: empty payloads; last bucket: >= 1 MiB).
  static constexpr std::size_t kHistBuckets = 22;

  // Raw work.
  std::uint64_t flops = 0;

  // Nearest-neighbor (point-to-point) traffic, counted symmetrically:
  // *_msgs/*_bytes at the sender, *_msgs_recv/*_bytes_recv at the receiver.
  std::uint64_t neighbor_msgs = 0;
  std::uint64_t neighbor_bytes = 0;
  std::uint64_t neighbor_msgs_recv = 0;
  std::uint64_t neighbor_bytes_recv = 0;
  std::uint64_t neighbor_exchanges = 0;  ///< logical ⊕Σ_{∂Ω} operations

  // Global collectives.
  std::uint64_t global_reductions = 0;
  std::uint64_t global_bytes = 0;  ///< payload bytes summed over reductions

  // Algorithmic kernel counts (Table 1 columns).
  std::uint64_t matvecs = 0;
  std::uint64_t inner_products = 0;
  std::uint64_t vector_updates = 0;

  /// Deflation coarse-grid corrections applied (one replicated E⁻¹
  /// solve each; the allreduce globalizing the coarse residual is
  /// already charged to global_reductions/global_bytes).  Every coarse
  /// solve also stamps one "coarse_correct" span, cross-checked by
  /// pfem_trace --counters.
  std::uint64_t coarse_solves = 0;

  // Fault accounting (chaos testing / degraded production runs): faults
  // injected at this rank's channel ops by a fault::FaultInjector, plus
  // genuine channel timeouts.  fault_retries is stamped by the service —
  // how many times this solve's batch was re-dispatched onto a fresh
  // team before completing.
  std::uint64_t fault_delays = 0;
  std::uint64_t fault_drops = 0;
  std::uint64_t fault_dups = 0;
  std::uint64_t fault_stalls = 0;
  std::uint64_t fault_crashes = 0;
  std::uint64_t fault_timeouts = 0;  ///< channel waits that hit the deadline
  std::uint64_t fault_retries = 0;   ///< service re-dispatches of this solve

  // Wall-time split (seconds).  total_seconds covers the whole rank
  // callback; the wait fields accumulate time spent blocked in the
  // runtime (send/recv vs. barrier/allreduce).  Compute time is the
  // remainder, see compute_seconds().
  double total_seconds = 0.0;
  double neighbor_wait_seconds = 0.0;
  double reduce_wait_seconds = 0.0;

  /// Sent-message size histogram (log2 buckets of payload bytes).
  std::array<std::uint64_t, kHistBuckets> msg_size_hist{};

  [[nodiscard]] double compute_seconds() const {
    const double c = total_seconds - neighbor_wait_seconds -
                     reduce_wait_seconds;
    return c > 0.0 ? c : 0.0;
  }

  /// Bucket index for a sent payload of `bytes` bytes.
  [[nodiscard]] static std::size_t hist_bucket(std::uint64_t bytes) {
    std::size_t b = 0;
    while (bytes != 0 && b + 1 < kHistBuckets) {
      bytes >>= 1;
      ++b;
    }
    return b;
  }

  void reset() { *this = PerfCounters{}; }

  PerfCounters& operator+=(const PerfCounters& o) {
    flops += o.flops;
    neighbor_msgs += o.neighbor_msgs;
    neighbor_bytes += o.neighbor_bytes;
    neighbor_msgs_recv += o.neighbor_msgs_recv;
    neighbor_bytes_recv += o.neighbor_bytes_recv;
    neighbor_exchanges += o.neighbor_exchanges;
    global_reductions += o.global_reductions;
    global_bytes += o.global_bytes;
    matvecs += o.matvecs;
    inner_products += o.inner_products;
    vector_updates += o.vector_updates;
    coarse_solves += o.coarse_solves;
    fault_delays += o.fault_delays;
    fault_drops += o.fault_drops;
    fault_dups += o.fault_dups;
    fault_stalls += o.fault_stalls;
    fault_crashes += o.fault_crashes;
    fault_timeouts += o.fault_timeouts;
    fault_retries += o.fault_retries;
    total_seconds += o.total_seconds;
    neighbor_wait_seconds += o.neighbor_wait_seconds;
    reduce_wait_seconds += o.reduce_wait_seconds;
    for (std::size_t b = 0; b < kHistBuckets; ++b)
      msg_size_hist[b] += o.msg_size_hist[b];
    return *this;
  }

  /// Component-wise difference (for per-phase deltas); saturates at 0.
  [[nodiscard]] PerfCounters delta_since(const PerfCounters& base) const {
    auto sub = [](std::uint64_t a, std::uint64_t b) {
      return a >= b ? a - b : 0;
    };
    auto subd = [](double a, double b) { return a >= b ? a - b : 0.0; };
    PerfCounters d;
    d.flops = sub(flops, base.flops);
    d.neighbor_msgs = sub(neighbor_msgs, base.neighbor_msgs);
    d.neighbor_bytes = sub(neighbor_bytes, base.neighbor_bytes);
    d.neighbor_msgs_recv = sub(neighbor_msgs_recv, base.neighbor_msgs_recv);
    d.neighbor_bytes_recv = sub(neighbor_bytes_recv, base.neighbor_bytes_recv);
    d.neighbor_exchanges = sub(neighbor_exchanges, base.neighbor_exchanges);
    d.global_reductions = sub(global_reductions, base.global_reductions);
    d.global_bytes = sub(global_bytes, base.global_bytes);
    d.matvecs = sub(matvecs, base.matvecs);
    d.inner_products = sub(inner_products, base.inner_products);
    d.vector_updates = sub(vector_updates, base.vector_updates);
    d.coarse_solves = sub(coarse_solves, base.coarse_solves);
    d.fault_delays = sub(fault_delays, base.fault_delays);
    d.fault_drops = sub(fault_drops, base.fault_drops);
    d.fault_dups = sub(fault_dups, base.fault_dups);
    d.fault_stalls = sub(fault_stalls, base.fault_stalls);
    d.fault_crashes = sub(fault_crashes, base.fault_crashes);
    d.fault_timeouts = sub(fault_timeouts, base.fault_timeouts);
    d.fault_retries = sub(fault_retries, base.fault_retries);
    d.total_seconds = subd(total_seconds, base.total_seconds);
    d.neighbor_wait_seconds =
        subd(neighbor_wait_seconds, base.neighbor_wait_seconds);
    d.reduce_wait_seconds = subd(reduce_wait_seconds, base.reduce_wait_seconds);
    for (std::size_t b = 0; b < kHistBuckets; ++b)
      d.msg_size_hist[b] = sub(msg_size_hist[b], base.msg_size_hist[b]);
    return d;
  }
};

/// Serialize per-rank counters (and optionally the setup-phase counters)
/// as a JSON document: {"ranks": [...], "setup": [...]}.
[[nodiscard]] std::string counters_json(
    std::span<const PerfCounters> ranks,
    std::span<const PerfCounters> setup = {});

/// Write counters_json() to `path`; returns false (with a message on
/// stderr) if the file cannot be opened.
bool dump_counters_json(const std::string& path,
                        std::span<const PerfCounters> ranks,
                        std::span<const PerfCounters> setup = {});

}  // namespace pfem::par
