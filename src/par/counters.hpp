// Per-rank performance counters.
//
// The paper's Table 1 accounts the parallel cost of one Arnoldi iteration
// in terms of nearest-neighbor communications, global communications,
// mat-vecs, inner products and vector updates.  Every distributed kernel
// increments these counters; the cost model (cost_model.hpp) turns them
// into modeled machine time, and bench/table1_complexity prints them per
// iteration to reproduce the table.
#pragma once

#include <cstdint>

namespace pfem::par {

struct PerfCounters {
  // Raw work.
  std::uint64_t flops = 0;

  // Nearest-neighbor (point-to-point) traffic, counted at the sender.
  std::uint64_t neighbor_msgs = 0;
  std::uint64_t neighbor_bytes = 0;
  std::uint64_t neighbor_exchanges = 0;  ///< logical ⊕Σ_{∂Ω} operations

  // Global collectives.
  std::uint64_t global_reductions = 0;
  std::uint64_t global_bytes = 0;  ///< payload bytes summed over reductions

  // Algorithmic kernel counts (Table 1 columns).
  std::uint64_t matvecs = 0;
  std::uint64_t inner_products = 0;
  std::uint64_t vector_updates = 0;

  void reset() { *this = PerfCounters{}; }

  PerfCounters& operator+=(const PerfCounters& o) {
    flops += o.flops;
    neighbor_msgs += o.neighbor_msgs;
    neighbor_bytes += o.neighbor_bytes;
    neighbor_exchanges += o.neighbor_exchanges;
    global_reductions += o.global_reductions;
    global_bytes += o.global_bytes;
    matvecs += o.matvecs;
    inner_products += o.inner_products;
    vector_updates += o.vector_updates;
    return *this;
  }

  /// Component-wise difference (for per-phase deltas); saturates at 0.
  [[nodiscard]] PerfCounters delta_since(const PerfCounters& base) const {
    auto sub = [](std::uint64_t a, std::uint64_t b) {
      return a >= b ? a - b : 0;
    };
    PerfCounters d;
    d.flops = sub(flops, base.flops);
    d.neighbor_msgs = sub(neighbor_msgs, base.neighbor_msgs);
    d.neighbor_bytes = sub(neighbor_bytes, base.neighbor_bytes);
    d.neighbor_exchanges = sub(neighbor_exchanges, base.neighbor_exchanges);
    d.global_reductions = sub(global_reductions, base.global_reductions);
    d.global_bytes = sub(global_bytes, base.global_bytes);
    d.matvecs = sub(matvecs, base.matvecs);
    d.inner_products = sub(inner_products, base.inner_products);
    d.vector_updates = sub(vector_updates, base.vector_updates);
    return d;
  }
};

}  // namespace pfem::par
