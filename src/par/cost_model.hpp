// α–β–γ machine cost model.
//
// The paper measures wall-clock speedup on an IBM SP2 and an SGI Origin
// (Figs. 15–17, Table 3).  Those machines are simulated here: the
// distributed solvers record exact per-rank communication/computation
// traces (par::PerfCounters), and this model converts a trace into
// machine time:
//
//   T_p = max_s [ flops(s)·γ  +  msgs(s)·α + bytes(s)·β ]
//         + reductions·⌈log2 P⌉·(α_red + bytes_red·β)
//
// where msgs(s)/bytes(s) cover both directions of rank s's traffic — a
// message costs α + bytes·β at the sender and again at the receiver
// (the counters record the two sides separately).
//
// which is the standard postal/LogP-style model the paper itself appeals
// to ("communication time per inner product is O(log P) on the
// hypercube/HiPPI-switch architectures", §5).  Machine presets encode the
// published characteristics of the two systems: the SP2's message latency
// is an order of magnitude above the Origin's ccNUMA remote access, which
// is what makes the Origin scale better at small P in Fig. 17(e).
#pragma once

#include <span>
#include <string>

#include "par/counters.hpp"

namespace pfem::par {

struct MachineModel {
  std::string name;
  double flop_time;       ///< γ — seconds per sustained flop
  double latency;         ///< α — seconds per point-to-point message
  double byte_time;       ///< β — seconds per payload byte
  double reduce_latency;  ///< α per reduction stage (software tree)

  /// IBM SP2 (P2SC nodes, TB3 switch): ~45 sustained MFLOP/s on sparse
  /// kernels, ~40 µs MPI latency, ~35 MB/s effective bandwidth.
  [[nodiscard]] static MachineModel ibm_sp2();

  /// SGI Origin 2000 (R10k, ccNUMA): ~60 sustained MFLOP/s sparse,
  /// ~10 µs MPI latency, ~140 MB/s effective bandwidth.
  [[nodiscard]] static MachineModel sgi_origin();

  /// A contemporary multicore node, for perspective runs.
  [[nodiscard]] static MachineModel modern_node();
};

/// Modeled time decomposition for one SPMD run.
struct ModeledTime {
  double compute = 0.0;       ///< max-rank flops · γ
  double neighbor = 0.0;      ///< max-rank p2p cost
  double global_comm = 0.0;   ///< reduction tree cost
  [[nodiscard]] double total() const {
    return compute + neighbor + global_comm;
  }
};

/// Evaluate the model on per-rank counters from run_spmd().
[[nodiscard]] ModeledTime model_time(const MachineModel& machine,
                                     std::span<const PerfCounters> ranks);

/// Convenience: modeled speedup of `ranks` relative to a 1-rank trace.
[[nodiscard]] double modeled_speedup(const MachineModel& machine,
                                     std::span<const PerfCounters> serial,
                                     std::span<const PerfCounters> parallel);

}  // namespace pfem::par
