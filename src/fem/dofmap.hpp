// Degree-of-freedom numbering with Dirichlet elimination.
//
// Fixed dofs are removed from the numbering *before* partitioning, so a
// subdomain operator is just the sub-assembly of its elements on free
// dofs — matching the paper's "apply boundary condition over
// ∂Ω^(s)\Γ" step (Algorithm 2, step 5).
#pragma once

#include <vector>

#include "common/types.hpp"

namespace pfem::fem {

class DofMap {
 public:
  /// @param num_nodes       nodes in the mesh
  /// @param dofs_per_node   1 (scalar problems) or 2 (plane elasticity)
  DofMap(index_t num_nodes, index_t dofs_per_node);

  [[nodiscard]] index_t dofs_per_node() const noexcept { return dpn_; }
  [[nodiscard]] index_t num_nodes() const noexcept { return nodes_; }

  /// Mark one component of a node as Dirichlet-fixed.  Must precede
  /// finalize().
  void fix(index_t node, index_t comp);

  /// Fix all components of a node.
  void fix_node(index_t node);

  /// Build the free-dof numbering.  Idempotent calls are an error.
  void finalize();

  /// Free-dof index of (node, comp), or -1 if fixed.  Requires finalize().
  [[nodiscard]] index_t dof(index_t node, index_t comp) const;

  [[nodiscard]] index_t num_free() const;
  [[nodiscard]] index_t num_total() const noexcept { return nodes_ * dpn_; }
  [[nodiscard]] bool finalized() const noexcept { return finalized_; }

 private:
  index_t nodes_;
  index_t dpn_;
  bool finalized_ = false;
  IndexVector numbering_;  // per (node,comp): free index or -1
};

}  // namespace pfem::fem
