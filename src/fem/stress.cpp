#include "fem/stress.hpp"

#include <cmath>

#include "common/error.hpp"
#include "fem/assembly.hpp"
#include "fem/elements.hpp"

namespace pfem::fem {

namespace {

/// Gather the element displacement vector: free dofs from u, fixed
/// (homogeneous Dirichlet) dofs as zero.
Vector gather_element_u(const Mesh& mesh, const DofMap& dofs, index_t e,
                        std::span<const real_t> u) {
  const IndexVector gd = element_dofs(mesh, dofs, e);
  Vector ue(gd.size(), 0.0);
  for (std::size_t k = 0; k < gd.size(); ++k)
    if (gd[k] >= 0) ue[k] = u[static_cast<std::size_t>(gd[k])];
  return ue;
}

real_t von_mises_plane_stress(real_t sxx, real_t syy, real_t sxy) {
  return std::sqrt(sxx * sxx - sxx * syy + syy * syy + 3.0 * sxy * sxy);
}

real_t von_mises_3d(const ElementStress& s) {
  const real_t d1 = s.sxx - s.syy, d2 = s.syy - s.szz, d3 = s.szz - s.sxx;
  return std::sqrt(0.5 * (d1 * d1 + d2 * d2 + d3 * d3) +
                   3.0 * (s.sxy * s.sxy + s.syz * s.syz + s.szx * s.szx));
}

}  // namespace

ElementStress element_stress(const Mesh& mesh, const DofMap& dofs,
                             const Material& mat, index_t e,
                             std::span<const real_t> u) {
  PFEM_CHECK(u.size() == static_cast<std::size_t>(dofs.num_free()));
  const Vector ue = gather_element_u(mesh, dofs, e, u);
  const auto nodes = mesh.elem_nodes(e);
  ElementStress out;

  if (mesh.type() == ElemType::Hex8) {
    HexCoords xyz{};
    for (int i = 0; i < 8; ++i) {
      xyz[3 * i] = mesh.x(nodes[i]);
      xyz[3 * i + 1] = mesh.y(nodes[i]);
      xyz[3 * i + 2] = mesh.z(nodes[i]);
    }
    const Vector eps = hex8_centroid_strain(xyz, ue);
    const la::DenseMatrix d = mat.elastic_3d_d();
    Vector sig(6);
    d.matvec(eps, sig);
    out.sxx = sig[0];
    out.syy = sig[1];
    out.szz = sig[2];
    out.sxy = sig[3];
    out.syz = sig[4];
    out.szx = sig[5];
    out.von_mises = von_mises_3d(out);
    return out;
  }

  Vector eps;
  switch (mesh.type()) {
    case ElemType::Quad4: {
      QuadCoords xy{};
      for (int i = 0; i < 4; ++i) {
        xy[2 * i] = mesh.x(nodes[i]);
        xy[2 * i + 1] = mesh.y(nodes[i]);
      }
      eps = quad4_centroid_strain(xy, ue);
      break;
    }
    case ElemType::Tri3: {
      TriCoords xy{};
      for (int i = 0; i < 3; ++i) {
        xy[2 * i] = mesh.x(nodes[i]);
        xy[2 * i + 1] = mesh.y(nodes[i]);
      }
      eps = tri3_centroid_strain(xy, ue);
      break;
    }
    case ElemType::Quad8: {
      Quad8Coords xy{};
      for (int i = 0; i < 8; ++i) {
        xy[2 * i] = mesh.x(nodes[i]);
        xy[2 * i + 1] = mesh.y(nodes[i]);
      }
      eps = quad8_centroid_strain(xy, ue);
      break;
    }
    default:
      PFEM_CHECK_MSG(false, "unsupported element type for stress recovery");
  }

  const la::DenseMatrix d = mat.plane_stress_d();
  Vector sig(3);
  d.matvec(eps, sig);
  out.sxx = sig[0];
  out.syy = sig[1];
  out.sxy = sig[2];
  out.von_mises = von_mises_plane_stress(out.sxx, out.syy, out.sxy);
  return out;
}

std::vector<ElementStress> compute_stresses(const Mesh& mesh,
                                            const DofMap& dofs,
                                            const Material& mat,
                                            std::span<const real_t> u) {
  std::vector<ElementStress> out;
  out.reserve(static_cast<std::size_t>(mesh.num_elems()));
  for (index_t e = 0; e < mesh.num_elems(); ++e)
    out.push_back(element_stress(mesh, dofs, mat, e, u));
  return out;
}

}  // namespace pfem::fem
