// Legacy-VTK export of meshes and solution fields, for ParaView/VisIt.
//
// Writes an ASCII "UNSTRUCTURED_GRID" .vtk file with the mesh, the
// displacement as point vectors, and optional per-element scalars
// (e.g. von Mises stress from fem/stress.hpp).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "fem/dofmap.hpp"
#include "fem/mesh.hpp"

namespace pfem::fem {

struct VtkCellField {
  std::string name;
  Vector values;  ///< one per element
};

/// Write mesh + displacement (+ per-element scalar fields).
/// `u` is the free-dof vector; fixed dofs render as zero displacement.
void write_vtk(std::ostream& os, const Mesh& mesh, const DofMap& dofs,
               std::span<const real_t> u,
               const std::vector<VtkCellField>& cell_fields = {});

void write_vtk(const std::string& path, const Mesh& mesh, const DofMap& dofs,
               std::span<const real_t> u,
               const std::vector<VtkCellField>& cell_fields = {});

/// The VTK cell type id for an element type (9 = quad, 5 = triangle,
/// 23 = quadratic quad, 12 = hexahedron).
[[nodiscard]] int vtk_cell_type(ElemType t);

}  // namespace pfem::fem
