// Plain-text mesh I/O — the path for user-supplied (unstructured)
// meshes.  Format:
//
//   pfem-mesh 1
//   elemtype quad4|tri3|quad8|hex8
//   nodes <N>
//   <x> <y> [<z>]        (one line per node; z only for 3-D types)
//   elements <M>
//   <n0> <n1> ...        (0-based node ids, nodes_per_elem per line)
#pragma once

#include <iosfwd>
#include <string>

#include "fem/mesh.hpp"

namespace pfem::fem {

void write_mesh(std::ostream& os, const Mesh& mesh);
void write_mesh(const std::string& path, const Mesh& mesh);

/// Throws pfem::Error on malformed input (bad header, wrong counts,
/// out-of-range connectivity).
[[nodiscard]] Mesh read_mesh(std::istream& is);
[[nodiscard]] Mesh read_mesh(const std::string& path);

[[nodiscard]] std::string elem_type_name(ElemType t);
[[nodiscard]] ElemType elem_type_from_name(const std::string& name);

}  // namespace pfem::fem
