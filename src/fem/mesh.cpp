#include "fem/mesh.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/error.hpp"

namespace pfem::fem {

Mesh::Mesh(ElemType type, Vector coords, IndexVector connectivity)
    : type_(type), coords_(std::move(coords)), conn_(std::move(connectivity)) {
  PFEM_CHECK_MSG(
      coords_.size() % static_cast<std::size_t>(elem_dim(type_)) == 0,
      "coords must be interleaved per node for the element's dimension");
  const index_t npe = nodes_per_elem(type_);
  PFEM_CHECK_MSG(conn_.size() % static_cast<std::size_t>(npe) == 0,
                 "connectivity length not a multiple of nodes-per-element");
  const index_t nn = num_nodes();
  for (index_t n : conn_)
    PFEM_CHECK_MSG(n >= 0 && n < nn, "connectivity node id out of range");
}

std::pair<real_t, real_t> Mesh::elem_centroid(index_t e) const {
  const auto nodes = elem_nodes(e);
  real_t cx = 0.0, cy = 0.0;
  for (index_t n : nodes) {
    cx += x(n);
    cy += y(n);
  }
  const real_t inv = 1.0 / static_cast<real_t>(nodes.size());
  return {cx * inv, cy * inv};
}

IndexVector Mesh::nodes_at_x(real_t x_value, real_t tol) const {
  IndexVector out;
  for (index_t n = 0; n < num_nodes(); ++n)
    if (std::abs(x(n) - x_value) <= tol) out.push_back(n);
  return out;
}

IndexVector Mesh::nodes_at_y(real_t y_value, real_t tol) const {
  IndexVector out;
  for (index_t n = 0; n < num_nodes(); ++n)
    if (std::abs(y(n) - y_value) <= tol) out.push_back(n);
  return out;
}

std::array<real_t, 4> Mesh::bounding_box() const {
  PFEM_CHECK(num_nodes() > 0);
  std::array<real_t, 4> bb{x(0), x(0), y(0), y(0)};
  for (index_t n = 1; n < num_nodes(); ++n) {
    bb[0] = std::min(bb[0], x(n));
    bb[1] = std::max(bb[1], x(n));
    bb[2] = std::min(bb[2], y(n));
    bb[3] = std::max(bb[3], y(n));
  }
  return bb;
}

}  // namespace pfem::fem
