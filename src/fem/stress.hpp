// Stress recovery — post-processing of a displacement solution.
//
// Evaluates the strain/stress at each element's centroid from the solved
// displacement field (free dofs; homogeneous Dirichlet dofs contribute
// zero) and the von Mises equivalent stress.  Plane stress for the 2-D
// elements, full 3-D for Hex8.
#pragma once

#include <vector>

#include "fem/dofmap.hpp"
#include "fem/material.hpp"
#include "fem/mesh.hpp"

namespace pfem::fem {

/// Centroid stress of one element, Voigt components.  2-D elements fill
/// (sxx, syy, sxy) and leave the out-of-plane terms zero (plane stress).
struct ElementStress {
  real_t sxx = 0.0;
  real_t syy = 0.0;
  real_t szz = 0.0;
  real_t sxy = 0.0;
  real_t syz = 0.0;
  real_t szx = 0.0;
  real_t von_mises = 0.0;
};

/// Stress at the centroid of element e for the free-dof displacement
/// vector u (homogeneous Dirichlet assumed for fixed dofs).
[[nodiscard]] ElementStress element_stress(const Mesh& mesh,
                                           const DofMap& dofs,
                                           const Material& mat, index_t e,
                                           std::span<const real_t> u);

/// Stress at every element centroid.
[[nodiscard]] std::vector<ElementStress> compute_stresses(
    const Mesh& mesh, const DofMap& dofs, const Material& mat,
    std::span<const real_t> u);

}  // namespace pfem::fem
