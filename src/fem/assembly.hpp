// Finite element assembly into CSR.
//
// Two paths, mirroring the paper's Definitions 1/2:
//  * assemble over *all* elements in the global free-dof numbering — the
//    fully assembled K of Eq. 1 (what the sequential solver and the
//    row-based RDD partitioning use);
//  * assemble over an element *subset* in a caller-supplied local
//    numbering — the "local distributed" subdomain matrix K̂_loc^(s) of
//    Eq. 32 that is never merged across interfaces (what EDD uses).
#pragma once

#include <functional>
#include <span>

#include "fem/dofmap.hpp"
#include "fem/material.hpp"
#include "fem/mesh.hpp"
#include "sparse/csr.hpp"

namespace pfem::fem {

/// Which element integral to assemble.
enum class Operator { Stiffness, Mass, Poisson };

/// Assemble the given operator over all mesh elements in the global
/// free-dof numbering of `dofs`.
[[nodiscard]] sparse::CsrMatrix assemble(const Mesh& mesh, const DofMap& dofs,
                                         const Material& mat, Operator op);

/// Assemble over the element subset `elems` in a local numbering:
/// `global_to_local[g]` gives the local row of global free dof g (or -1
/// if g is not part of this subdomain).  Result is n_local x n_local.
[[nodiscard]] sparse::CsrMatrix assemble_subset(
    const Mesh& mesh, const DofMap& dofs, const Material& mat, Operator op,
    std::span<const index_t> elems, std::span<const index_t> global_to_local,
    index_t n_local);

/// Global free dof ids of element e (fixed dofs = -1), in the element's
/// local dof order (node-major, component-minor).
[[nodiscard]] IndexVector element_dofs(const Mesh& mesh, const DofMap& dofs,
                                       index_t e);

/// Compute the element matrix of `op` for element e.
[[nodiscard]] la::DenseMatrix element_matrix(const Mesh& mesh,
                                             const Material& mat, Operator op,
                                             index_t e);

/// Add a concentrated nodal force: f[dof(node, comp)] += value (ignored if
/// the dof is fixed).
void add_point_load(const DofMap& dofs, index_t node, index_t comp,
                    real_t value, std::span<real_t> f);

/// Distribute a total force evenly over a set of nodes in component
/// `comp` (the paper's cantilever tip "pulling load").
void add_edge_load(const DofMap& dofs, std::span<const index_t> nodes,
                   index_t comp, real_t total, std::span<real_t> f);

}  // namespace pfem::fem
