#include "fem/ebe.hpp"

#include "common/error.hpp"
#include "la/vector_ops.hpp"

namespace pfem::fem {

EbeOperator::EbeOperator(const Mesh& mesh, const DofMap& dofs,
                         const Material& mat, Operator op)
    : n_(dofs.num_free()),
      edofs_(nodes_per_elem(mesh.type()) *
             (op == Operator::Poisson ? 1 : mesh.dim())) {
  const index_t ne = mesh.num_elems();
  dof_ids_.reserve(static_cast<std::size_t>(ne) * edofs_);
  values_.reserve(static_cast<std::size_t>(ne) * edofs_ * edofs_);
  for (index_t e = 0; e < ne; ++e) {
    const la::DenseMatrix ke = element_matrix(mesh, mat, op, e);
    PFEM_CHECK(ke.rows() == edofs_);
    const IndexVector gd = element_dofs(mesh, dofs, e);
    dof_ids_.insert(dof_ids_.end(), gd.begin(), gd.end());
    const auto data = ke.data();
    values_.insert(values_.end(), data.begin(), data.end());
  }
}

void EbeOperator::apply(std::span<const real_t> x,
                        std::span<real_t> y) const {
  PFEM_CHECK(x.size() == static_cast<std::size_t>(n_));
  PFEM_CHECK(y.size() == static_cast<std::size_t>(n_));
  la::fill(y, 0.0);
  const std::size_t ne = dof_ids_.size() / static_cast<std::size_t>(edofs_);
  std::vector<real_t> xe(static_cast<std::size_t>(edofs_));
  std::vector<real_t> ye(static_cast<std::size_t>(edofs_));
  for (std::size_t e = 0; e < ne; ++e) {
    const index_t* ids =
        dof_ids_.data() + e * static_cast<std::size_t>(edofs_);
    const real_t* ke = values_.data() +
                       e * static_cast<std::size_t>(edofs_) * edofs_;
    // Gather (fixed dofs contribute zero).
    for (index_t k = 0; k < edofs_; ++k)
      xe[static_cast<std::size_t>(k)] =
          ids[k] >= 0 ? x[static_cast<std::size_t>(ids[k])] : 0.0;
    // Dense multiply.
    for (index_t r = 0; r < edofs_; ++r) {
      real_t s = 0.0;
      const real_t* row = ke + static_cast<std::size_t>(r) * edofs_;
      for (index_t c = 0; c < edofs_; ++c)
        s += row[c] * xe[static_cast<std::size_t>(c)];
      ye[static_cast<std::size_t>(r)] = s;
    }
    // Scatter-add.
    for (index_t k = 0; k < edofs_; ++k)
      if (ids[k] >= 0) y[static_cast<std::size_t>(ids[k])] +=
          ye[static_cast<std::size_t>(k)];
  }
}

core::LinearOp EbeOperator::as_linear_op() const {
  return core::LinearOp(
      n_, [this](std::span<const real_t> x, std::span<real_t> y) {
        apply(x, y);
      });
}

}  // namespace pfem::fem
