#include "fem/ebe.hpp"

#include <utility>
#include <vector>

#include "common/error.hpp"
#include "la/vector_ops.hpp"

namespace pfem::fem {

sparse::EbeStore build_ebe_store(const Mesh& mesh, const DofMap& dofs,
                                 const Material& mat, Operator op) {
  const index_t edofs = nodes_per_elem(mesh.type()) *
                        (op == Operator::Poisson ? 1 : mesh.dim());
  const index_t ne = mesh.num_elems();
  IndexVector dof_ids;
  std::vector<real_t> values;
  dof_ids.reserve(static_cast<std::size_t>(ne) * edofs);
  values.reserve(static_cast<std::size_t>(ne) * edofs * edofs);
  for (index_t e = 0; e < ne; ++e) {
    const la::DenseMatrix ke = element_matrix(mesh, mat, op, e);
    PFEM_CHECK(ke.rows() == edofs);
    const IndexVector gd = element_dofs(mesh, dofs, e);
    dof_ids.insert(dof_ids.end(), gd.begin(), gd.end());
    const auto data = ke.data();
    values.insert(values.end(), data.begin(), data.end());
  }
  return sparse::EbeStore(dofs.num_free(), edofs, std::move(dof_ids),
                          std::move(values));
}

EbeOperator::EbeOperator(const Mesh& mesh, const DofMap& dofs,
                         const Material& mat, Operator op)
    : store_(build_ebe_store(mesh, dofs, mat, op)) {}

void EbeOperator::apply(std::span<const real_t> x,
                        std::span<real_t> y) const {
  PFEM_CHECK(x.size() == static_cast<std::size_t>(store_.rows()));
  PFEM_CHECK(y.size() == static_cast<std::size_t>(store_.rows()));
  la::fill(y, 0.0);
  store_.apply_add(0, store_.num_elems(), x, y);
}

core::LinearOp EbeOperator::as_linear_op() const {
  return core::LinearOp(
      store_.rows(),
      [this](std::span<const real_t> x, std::span<real_t> y) {
        apply(x, y);
      });
}

}  // namespace pfem::fem
