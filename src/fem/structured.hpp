// Structured rectangle meshers.
//
// Generates the paper's cantilever meshes (Table 2): an nx x ny grid of
// Q4 quadrilaterals over [0,Lx] x [0,Ly], nodes numbered column-major in
// x-major rows (i + j*(nx+1)), elements row-major.  A T3 variant splits
// each cell into two triangles (used for the planar-graph discussion
// tests of §5 and for element-type coverage).
#pragma once

#include "fem/mesh.hpp"

namespace pfem::fem {

/// nx x ny Q4 elements over [0,Lx] x [0,Ly].
[[nodiscard]] Mesh structured_quad(index_t nx, index_t ny, real_t lx,
                                   real_t ly);

/// nx x ny cells, each split into two T3 triangles (2*nx*ny elements).
[[nodiscard]] Mesh structured_tri(index_t nx, index_t ny, real_t lx,
                                  real_t ly);

/// nx x ny 8-node serendipity quadrilaterals: corner grid plus edge
/// midside nodes (numbered corners, then horizontal-edge midsides, then
/// vertical-edge midsides).
[[nodiscard]] Mesh structured_quad8(index_t nx, index_t ny, real_t lx,
                                    real_t ly);

/// nx x ny x nz trilinear hexahedra over [0,lx] x [0,ly] x [0,lz];
/// nodes numbered i + j*(nx+1) + k*(nx+1)*(ny+1).
[[nodiscard]] Mesh structured_hex(index_t nx, index_t ny, index_t nz,
                                  real_t lx, real_t ly, real_t lz);

}  // namespace pfem::fem
