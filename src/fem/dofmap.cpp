#include "fem/dofmap.hpp"

#include "common/error.hpp"

namespace pfem::fem {

DofMap::DofMap(index_t num_nodes, index_t dofs_per_node)
    : nodes_(num_nodes), dpn_(dofs_per_node) {
  PFEM_CHECK(num_nodes >= 0);
  PFEM_CHECK(dofs_per_node >= 1);
  numbering_.assign(static_cast<std::size_t>(nodes_) * dpn_, 0);
}

void DofMap::fix(index_t node, index_t comp) {
  PFEM_CHECK_MSG(!finalized_, "fix() after finalize()");
  PFEM_CHECK(node >= 0 && node < nodes_);
  PFEM_CHECK(comp >= 0 && comp < dpn_);
  numbering_[static_cast<std::size_t>(node) * dpn_ + comp] = -1;
}

void DofMap::fix_node(index_t node) {
  for (index_t c = 0; c < dpn_; ++c) fix(node, c);
}

void DofMap::finalize() {
  PFEM_CHECK_MSG(!finalized_, "finalize() called twice");
  index_t next = 0;
  for (auto& v : numbering_)
    v = (v == -1) ? -1 : next++;
  finalized_ = true;
}

index_t DofMap::dof(index_t node, index_t comp) const {
  PFEM_CHECK_MSG(finalized_, "dof() before finalize()");
  PFEM_DEBUG_CHECK(node >= 0 && node < nodes_ && comp >= 0 && comp < dpn_);
  return numbering_[static_cast<std::size_t>(node) * dpn_ + comp];
}

index_t DofMap::num_free() const {
  PFEM_CHECK_MSG(finalized_, "num_free() before finalize()");
  index_t n = 0;
  for (index_t v : numbering_)
    if (v >= 0) ++n;
  return n;
}

}  // namespace pfem::fem
