#include "fem/structured.hpp"

#include "common/error.hpp"

namespace pfem::fem {

namespace {
Vector grid_coords(index_t nx, index_t ny, real_t lx, real_t ly) {
  const index_t nnx = nx + 1, nny = ny + 1;
  Vector coords(static_cast<std::size_t>(nnx) * nny * 2);
  const real_t dx = lx / static_cast<real_t>(nx);
  const real_t dy = ly / static_cast<real_t>(ny);
  for (index_t j = 0; j < nny; ++j) {
    for (index_t i = 0; i < nnx; ++i) {
      const std::size_t n = static_cast<std::size_t>(j) * nnx + i;
      coords[2 * n] = dx * static_cast<real_t>(i);
      coords[2 * n + 1] = dy * static_cast<real_t>(j);
    }
  }
  return coords;
}
}  // namespace

Mesh structured_quad(index_t nx, index_t ny, real_t lx, real_t ly) {
  PFEM_CHECK(nx >= 1 && ny >= 1 && lx > 0 && ly > 0);
  const index_t nnx = nx + 1;
  IndexVector conn;
  conn.reserve(static_cast<std::size_t>(nx) * ny * 4);
  for (index_t j = 0; j < ny; ++j) {
    for (index_t i = 0; i < nx; ++i) {
      const index_t n0 = j * nnx + i;
      // Counter-clockwise Q4: (i,j) (i+1,j) (i+1,j+1) (i,j+1).
      conn.push_back(n0);
      conn.push_back(n0 + 1);
      conn.push_back(n0 + nnx + 1);
      conn.push_back(n0 + nnx);
    }
  }
  return Mesh(ElemType::Quad4, grid_coords(nx, ny, lx, ly), std::move(conn));
}

Mesh structured_quad8(index_t nx, index_t ny, real_t lx, real_t ly) {
  PFEM_CHECK(nx >= 1 && ny >= 1 && lx > 0 && ly > 0);
  const index_t nnx = nx + 1, nny = ny + 1;
  const real_t dx = lx / static_cast<real_t>(nx);
  const real_t dy = ly / static_cast<real_t>(ny);
  const index_t n_corner = nnx * nny;
  const index_t n_hmid = nx * nny;        // midpoints of horizontal edges
  const index_t n_vmid = nnx * ny;        // midpoints of vertical edges
  Vector coords(2 * static_cast<std::size_t>(n_corner + n_hmid + n_vmid));

  auto corner = [nnx](index_t i, index_t j) { return j * nnx + i; };
  auto hmid = [nx, n_corner](index_t i, index_t j) {
    return n_corner + j * nx + i;
  };
  auto vmid = [nnx, n_corner, n_hmid](index_t i, index_t j) {
    return n_corner + n_hmid + j * nnx + i;
  };

  for (index_t j = 0; j < nny; ++j)
    for (index_t i = 0; i < nnx; ++i) {
      const auto n = static_cast<std::size_t>(corner(i, j));
      coords[2 * n] = dx * static_cast<real_t>(i);
      coords[2 * n + 1] = dy * static_cast<real_t>(j);
    }
  for (index_t j = 0; j < nny; ++j)
    for (index_t i = 0; i < nx; ++i) {
      const auto n = static_cast<std::size_t>(hmid(i, j));
      coords[2 * n] = dx * (static_cast<real_t>(i) + 0.5);
      coords[2 * n + 1] = dy * static_cast<real_t>(j);
    }
  for (index_t j = 0; j < ny; ++j)
    for (index_t i = 0; i < nnx; ++i) {
      const auto n = static_cast<std::size_t>(vmid(i, j));
      coords[2 * n] = dx * static_cast<real_t>(i);
      coords[2 * n + 1] = dy * (static_cast<real_t>(j) + 0.5);
    }

  IndexVector conn;
  conn.reserve(static_cast<std::size_t>(nx) * ny * 8);
  for (index_t j = 0; j < ny; ++j) {
    for (index_t i = 0; i < nx; ++i) {
      // Corners CCW, then midsides of edges 01 (bottom), 12 (right),
      // 23 (top), 30 (left) — matching Quad8Coords ordering.
      conn.push_back(corner(i, j));
      conn.push_back(corner(i + 1, j));
      conn.push_back(corner(i + 1, j + 1));
      conn.push_back(corner(i, j + 1));
      conn.push_back(hmid(i, j));
      conn.push_back(vmid(i + 1, j));
      conn.push_back(hmid(i, j + 1));
      conn.push_back(vmid(i, j));
    }
  }
  return Mesh(ElemType::Quad8, std::move(coords), std::move(conn));
}

Mesh structured_hex(index_t nx, index_t ny, index_t nz, real_t lx,
                    real_t ly, real_t lz) {
  PFEM_CHECK(nx >= 1 && ny >= 1 && nz >= 1 && lx > 0 && ly > 0 && lz > 0);
  const index_t nnx = nx + 1, nny = ny + 1, nnz = nz + 1;
  const real_t dx = lx / static_cast<real_t>(nx);
  const real_t dy = ly / static_cast<real_t>(ny);
  const real_t dz = lz / static_cast<real_t>(nz);
  Vector coords(3ull * nnx * nny * nnz);
  auto id = [nnx, nny](index_t i, index_t j, index_t k) {
    return (k * nny + j) * nnx + i;
  };
  for (index_t k = 0; k < nnz; ++k)
    for (index_t j = 0; j < nny; ++j)
      for (index_t i = 0; i < nnx; ++i) {
        const auto n = static_cast<std::size_t>(id(i, j, k));
        coords[3 * n] = dx * static_cast<real_t>(i);
        coords[3 * n + 1] = dy * static_cast<real_t>(j);
        coords[3 * n + 2] = dz * static_cast<real_t>(k);
      }
  IndexVector conn;
  conn.reserve(static_cast<std::size_t>(nx) * ny * nz * 8);
  for (index_t k = 0; k < nz; ++k)
    for (index_t j = 0; j < ny; ++j)
      for (index_t i = 0; i < nx; ++i) {
        // Bottom face CCW (viewed from +z) then the top face.
        conn.push_back(id(i, j, k));
        conn.push_back(id(i + 1, j, k));
        conn.push_back(id(i + 1, j + 1, k));
        conn.push_back(id(i, j + 1, k));
        conn.push_back(id(i, j, k + 1));
        conn.push_back(id(i + 1, j, k + 1));
        conn.push_back(id(i + 1, j + 1, k + 1));
        conn.push_back(id(i, j + 1, k + 1));
      }
  return Mesh(ElemType::Hex8, std::move(coords), std::move(conn));
}

Mesh structured_tri(index_t nx, index_t ny, real_t lx, real_t ly) {
  PFEM_CHECK(nx >= 1 && ny >= 1 && lx > 0 && ly > 0);
  const index_t nnx = nx + 1;
  IndexVector conn;
  conn.reserve(static_cast<std::size_t>(nx) * ny * 6);
  for (index_t j = 0; j < ny; ++j) {
    for (index_t i = 0; i < nx; ++i) {
      const index_t n0 = j * nnx + i;
      // Lower-left triangle and upper-right triangle, both CCW.
      conn.push_back(n0);
      conn.push_back(n0 + 1);
      conn.push_back(n0 + nnx);
      conn.push_back(n0 + 1);
      conn.push_back(n0 + nnx + 1);
      conn.push_back(n0 + nnx);
    }
  }
  return Mesh(ElemType::Tri3, grid_coords(nx, ny, lx, ly), std::move(conn));
}

}  // namespace pfem::fem
