#include "fem/assembly.hpp"

#include <numeric>

#include "common/error.hpp"
#include "fem/elements.hpp"
#include "sparse/coo.hpp"

namespace pfem::fem {

namespace {

QuadCoords quad_coords(const Mesh& mesh, index_t e) {
  const auto nodes = mesh.elem_nodes(e);
  QuadCoords xy{};
  for (int i = 0; i < 4; ++i) {
    xy[2 * i] = mesh.x(nodes[i]);
    xy[2 * i + 1] = mesh.y(nodes[i]);
  }
  return xy;
}

TriCoords tri_coords(const Mesh& mesh, index_t e) {
  const auto nodes = mesh.elem_nodes(e);
  TriCoords xy{};
  for (int i = 0; i < 3; ++i) {
    xy[2 * i] = mesh.x(nodes[i]);
    xy[2 * i + 1] = mesh.y(nodes[i]);
  }
  return xy;
}

Quad8Coords quad8_coords(const Mesh& mesh, index_t e) {
  const auto nodes = mesh.elem_nodes(e);
  Quad8Coords xy{};
  for (int i = 0; i < 8; ++i) {
    xy[2 * i] = mesh.x(nodes[i]);
    xy[2 * i + 1] = mesh.y(nodes[i]);
  }
  return xy;
}

HexCoords hex_coords(const Mesh& mesh, index_t e) {
  const auto nodes = mesh.elem_nodes(e);
  HexCoords xyz{};
  for (int i = 0; i < 8; ++i) {
    xyz[3 * i] = mesh.x(nodes[i]);
    xyz[3 * i + 1] = mesh.y(nodes[i]);
    xyz[3 * i + 2] = mesh.z(nodes[i]);
  }
  return xyz;
}

index_t dofs_per_node_for(const Mesh& mesh, Operator op) {
  return op == Operator::Poisson ? 1 : mesh.dim();
}

}  // namespace

namespace {

/// Per-element heterogeneity hooks of Material: the Quad4 Poisson path
/// honours the diffusion-tensor table; Stiffness/Poisson matrices are
/// scaled by elem_scale[e].  Mass stays untouched — density is a
/// separate physical field, and scaling it would change the spectrum of
/// the wrong operator.
la::DenseMatrix apply_elem_scale(la::DenseMatrix ke, const Material& mat,
                                 Operator op, index_t e) {
  if (op == Operator::Mass || mat.elem_scale == nullptr) return ke;
  const auto& scale = *mat.elem_scale;
  PFEM_CHECK_MSG(static_cast<std::size_t>(e) < scale.size(),
                 "Material::elem_scale shorter than the element count");
  const real_t s = scale[static_cast<std::size_t>(e)];
  for (index_t r = 0; r < ke.rows(); ++r)
    for (index_t c = 0; c < ke.cols(); ++c) ke(r, c) *= s;
  return ke;
}

la::DenseMatrix quad4_poisson_elem(const Mesh& mesh, const Material& mat,
                                   index_t e) {
  if (mat.diffusion == nullptr) return quad4_poisson(quad_coords(mesh, e));
  const auto& d = *mat.diffusion;
  PFEM_CHECK_MSG(d.size() >= 4 * static_cast<std::size_t>(e) + 4,
                 "Material::diffusion shorter than 4 * element count");
  const std::size_t b = 4 * static_cast<std::size_t>(e);
  return quad4_diffusion(quad_coords(mesh, e),
                         DiffusionTensor{d[b], d[b + 1], d[b + 2], d[b + 3]});
}

}  // namespace

la::DenseMatrix element_matrix(const Mesh& mesh, const Material& mat,
                               Operator op, index_t e) {
  switch (mesh.type()) {
    case ElemType::Quad4:
      switch (op) {
        case Operator::Stiffness:
          return apply_elem_scale(quad4_stiffness(quad_coords(mesh, e), mat),
                                  mat, op, e);
        case Operator::Mass: return quad4_mass(quad_coords(mesh, e), mat);
        case Operator::Poisson:
          return apply_elem_scale(quad4_poisson_elem(mesh, mat, e), mat, op,
                                  e);
      }
      break;
    case ElemType::Tri3:
      switch (op) {
        case Operator::Stiffness:
          return apply_elem_scale(tri3_stiffness(tri_coords(mesh, e), mat),
                                  mat, op, e);
        case Operator::Mass: return tri3_mass(tri_coords(mesh, e), mat);
        case Operator::Poisson:
          return apply_elem_scale(tri3_poisson(tri_coords(mesh, e)), mat, op,
                                  e);
      }
      break;
    case ElemType::Quad8:
      switch (op) {
        case Operator::Stiffness:
          return apply_elem_scale(quad8_stiffness(quad8_coords(mesh, e), mat),
                                  mat, op, e);
        case Operator::Mass: return quad8_mass(quad8_coords(mesh, e), mat);
        case Operator::Poisson:
          PFEM_CHECK_MSG(false, "scalar Poisson not provided for Q8");
      }
      break;
    case ElemType::Hex8:
      switch (op) {
        case Operator::Stiffness:
          return apply_elem_scale(hex8_stiffness(hex_coords(mesh, e), mat),
                                  mat, op, e);
        case Operator::Mass: return hex8_mass(hex_coords(mesh, e), mat);
        case Operator::Poisson:
          PFEM_CHECK_MSG(false, "scalar Poisson not provided for Hex8");
      }
      break;
  }
  PFEM_CHECK_MSG(false, "unreachable operator kind");
}

IndexVector element_dofs(const Mesh& mesh, const DofMap& dofs, index_t e) {
  const auto nodes = mesh.elem_nodes(e);
  const index_t dpn = dofs.dofs_per_node();
  IndexVector out;
  out.reserve(nodes.size() * static_cast<std::size_t>(dpn));
  for (index_t n : nodes)
    for (index_t c = 0; c < dpn; ++c) out.push_back(dofs.dof(n, c));
  return out;
}

namespace {

/// Shared scatter loop: assemble `elems` with rows/cols mapped through
/// `map` (identity when `map` is empty); n is the output dimension.
sparse::CsrMatrix assemble_impl(const Mesh& mesh, const DofMap& dofs,
                                const Material& mat, Operator op,
                                std::span<const index_t> elems,
                                std::span<const index_t> map, index_t n) {
  PFEM_CHECK_MSG(dofs.dofs_per_node() == dofs_per_node_for(mesh, op),
                 "DofMap dofs-per-node does not match operator/dimension");
  sparse::CooBuilder coo(n, n);
  const index_t edofs =
      nodes_per_elem(mesh.type()) * dofs.dofs_per_node();
  coo.reserve(elems.size() * static_cast<std::size_t>(edofs) * edofs);
  for (index_t e : elems) {
    const la::DenseMatrix ke = element_matrix(mesh, mat, op, e);
    const IndexVector gd = element_dofs(mesh, dofs, e);
    for (index_t r = 0; r < edofs; ++r) {
      index_t gr = gd[r];
      if (gr < 0) continue;
      if (!map.empty()) gr = map[gr];
      if (gr < 0) continue;
      for (index_t c = 0; c < edofs; ++c) {
        index_t gc = gd[c];
        if (gc < 0) continue;
        if (!map.empty()) gc = map[gc];
        if (gc < 0) continue;
        coo.add(gr, gc, ke(r, c));
      }
    }
  }
  return coo.build();
}

}  // namespace

sparse::CsrMatrix assemble(const Mesh& mesh, const DofMap& dofs,
                           const Material& mat, Operator op) {
  IndexVector all(static_cast<std::size_t>(mesh.num_elems()));
  std::iota(all.begin(), all.end(), index_t{0});
  return assemble_impl(mesh, dofs, mat, op, all, {}, dofs.num_free());
}

sparse::CsrMatrix assemble_subset(const Mesh& mesh, const DofMap& dofs,
                                  const Material& mat, Operator op,
                                  std::span<const index_t> elems,
                                  std::span<const index_t> global_to_local,
                                  index_t n_local) {
  PFEM_CHECK(global_to_local.size() ==
             static_cast<std::size_t>(dofs.num_free()));
  return assemble_impl(mesh, dofs, mat, op, elems, global_to_local, n_local);
}

void add_point_load(const DofMap& dofs, index_t node, index_t comp,
                    real_t value, std::span<real_t> f) {
  PFEM_CHECK(f.size() == static_cast<std::size_t>(dofs.num_free()));
  const index_t d = dofs.dof(node, comp);
  if (d >= 0) f[d] += value;
}

void add_edge_load(const DofMap& dofs, std::span<const index_t> nodes,
                   index_t comp, real_t total, std::span<real_t> f) {
  PFEM_CHECK(!nodes.empty());
  const real_t per = total / static_cast<real_t>(nodes.size());
  for (index_t n : nodes) add_point_load(dofs, n, comp, per, f);
}

}  // namespace pfem::fem
