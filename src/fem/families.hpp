// Problem families: named generators for the operator zoo the solver
// stack is exercised on.
//
// The paper's evaluation problem is a homogeneous 2-D cantilever; the
// solver layers above (norm-1 scaling, GLS polynomial, deflation, the
// service) claim nothing that is specific to it.  This layer makes that
// claim testable: a ProblemSpec names a *family* plus its knobs —
// coefficient-jump magnitude, anisotropy ratio and orientation, whether
// the jump interface aligns with the partition's natural splits — and
// make_problem() returns a fully assembled FamilyProblem that benches,
// tests, pfem_loadgen --mix and the chaos suite can request by name:
//
//   cantilever2d — the paper's homogeneous plane-stress plate (Q4);
//   hetero2d     — heterogeneous/anisotropic scalar diffusion (Q4
//                  Poisson with per-element 2x2 tensors): kappa jumps
//                  by `jump` across an x-aligned interface or a
//                  checkerboard, principal diffusivities (1, 1/
//                  anisotropy) rotated by `angle`;
//   brick3d      — 3-D elasticity bar of Hex8 bricks with per-element
//                  stiffness jumps (Material::elem_scale).
//
// Besides the assembled system each FamilyProblem carries the metadata
// a *matched* two-level deflation space needs: components, coord_dim,
// per-free-dof coordinates and the per-free-dof coefficient magnitude
// table that drives the jump-aware coarse-space split
// (core::DeflationOptions::dof_coeff).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fem/problems.hpp"

namespace pfem::fem {

/// Knobs of a problem family.  Fields a family does not use are
/// ignored (e.g. anisotropy for the elasticity families).
struct ProblemSpec {
  std::string family = "cantilever2d";
  index_t nx = 10;
  index_t ny = 10;
  index_t nz = 2;  ///< brick3d only
  /// Coefficient contrast between the two regions (>= 1; 1 =
  /// homogeneous).  hetero2d scales the diffusion tensor, brick3d the
  /// element stiffness.
  real_t jump = 1.0;
  /// Ratio of principal diffusivities (>= 1; hetero2d only): the tensor
  /// is kappa * R(angle) diag(1, 1/anisotropy) R(angle)^T.
  real_t anisotropy = 1.0;
  real_t angle = 0.0;  ///< rotation of the principal axes (radians)
  /// true: the jump interface is the x = lx/2 plane — aligned with the
  /// cut a coordinate partitioner makes first.  false: a `checker` x
  /// `checker` (x `checker` in 3-D) checkerboard, deliberately
  /// MISALIGNED with any partition interface so every subdomain
  /// straddles both coefficient classes.
  bool aligned = true;
  index_t checker = 4;
  real_t youngs_modulus = 1000.0;
  real_t poisson_ratio = 0.3;
  real_t load_total = 100.0;
  /// Reserved determinism hook: families are fully deterministic today,
  /// and any future randomized field must draw from this seed only.
  std::uint64_t seed = 1;
};

/// An assembled family instance: the problem plus the metadata a
/// matched deflation space needs.
struct FamilyProblem {
  std::string family;
  CantileverProblem prob;
  /// Operator kind this family assembles (Poisson for hetero2d,
  /// Stiffness otherwise) — partition builders must use this, not
  /// assume Stiffness.
  Operator op = Operator::Stiffness;
  int components = 2;  ///< dofs per node (1 scalar, 2/3 elasticity)
  int coord_dim = 2;   ///< spatial dimension of dof_coords
  /// Node coordinates per global free dof, [g * coord_dim + k] — the
  /// table core::DeflationOptions::dof_coords expects.
  Vector dof_coords;
  /// Coefficient magnitude per global free dof (max over the adjacent
  /// elements' kappa / stiffness scale, so interface dofs land in the
  /// stiff class) — the table the jump-aware deflation splits on.
  /// All-ones for homogeneous families.
  Vector dof_coeff;
};

/// Registered family names, in registry order.
[[nodiscard]] std::vector<std::string> problem_families();

/// A ready-to-build spec for `family` with that family's default sizes
/// (small enough for tests, representative jump/anisotropy of 1).
/// Throws pfem::Error for an unknown family.
[[nodiscard]] ProblemSpec default_spec(const std::string& family);

/// Build the family instance.  Deterministic: equal specs produce
/// bit-identical systems.  Throws pfem::Error for an unknown family or
/// out-of-range knobs.
[[nodiscard]] FamilyProblem make_problem(const ProblemSpec& spec);

}  // namespace pfem::fem
