// Element integrals: stiffness and consistent mass matrices.
//
// Q4 (4-node bilinear quadrilateral, 2x2 Gauss) and T3 (constant-strain
// triangle, closed form) for 2-D plane-stress elasticity — the elements
// the paper evaluates with ("four-node quadrilateral finite elements",
// §6.1) plus the T3 used in its planar-graph argument (§5).  A scalar
// Poisson Q4/T3 stiffness is provided for substrate tests with known
// analytic behaviour.
#pragma once

#include <array>
#include <span>

#include "fem/material.hpp"
#include "la/dense.hpp"

namespace pfem::fem {

/// Packed element node coordinates: (x0,y0,...,x3,y3) for Q4, 3 pairs T3,
/// 8 pairs Q8 (4 CCW corners then midsides of edges 01, 12, 23, 30).
using QuadCoords = std::array<real_t, 8>;
using TriCoords = std::array<real_t, 6>;
using Quad8Coords = std::array<real_t, 16>;
/// Hex8: (x,y,z) triples, bottom face CCW (viewed from +z) then top face.
using HexCoords = std::array<real_t, 24>;

/// 8x8 plane-stress stiffness Ke = t * sum_g B^T D B |J| w_g.
[[nodiscard]] la::DenseMatrix quad4_stiffness(const QuadCoords& xy,
                                              const Material& mat);

/// 8x8 consistent mass Me = rho * t * sum_g N^T N |J| w_g
/// (dof order u0,v0,u1,v1,...).
[[nodiscard]] la::DenseMatrix quad4_mass(const QuadCoords& xy,
                                         const Material& mat);

/// 6x6 CST stiffness (exact).
[[nodiscard]] la::DenseMatrix tri3_stiffness(const TriCoords& xy,
                                             const Material& mat);

/// 6x6 consistent mass (exact closed form).
[[nodiscard]] la::DenseMatrix tri3_mass(const TriCoords& xy,
                                        const Material& mat);

/// 16x16 plane-stress stiffness of the 8-node serendipity quadrilateral
/// (3x3 Gauss) — the higher-order element §5 singles out as making the
/// matrix graph non-planar.
[[nodiscard]] la::DenseMatrix quad8_stiffness(const Quad8Coords& xy,
                                              const Material& mat);

/// 16x16 consistent mass of the Q8 element (3x3 Gauss).
[[nodiscard]] la::DenseMatrix quad8_mass(const Quad8Coords& xy,
                                         const Material& mat);

/// 24x24 3-D elasticity stiffness of the trilinear hexahedron
/// (2x2x2 Gauss); dof order u0,v0,w0,u1,...
[[nodiscard]] la::DenseMatrix hex8_stiffness(const HexCoords& xyz,
                                             const Material& mat);

/// 24x24 consistent mass of the Hex8 element.
[[nodiscard]] la::DenseMatrix hex8_mass(const HexCoords& xyz,
                                        const Material& mat);

/// 4x4 scalar Laplace stiffness ke = sum_g grad(N)^T grad(N) |J| w_g.
[[nodiscard]] la::DenseMatrix quad4_poisson(const QuadCoords& xy);

/// Symmetric positive-definite 2x2 diffusion tensor, row-major
/// (dxx, dxy, dyx, dyy); the anisotropic generalization of the scalar
/// Laplace coefficient.
using DiffusionTensor = std::array<real_t, 4>;

/// 4x4 scalar diffusion stiffness ke = sum_g grad(N)^T D grad(N) |J| w_g
/// with a per-element constant tensor D.  quad4_poisson is the D = I
/// special case.
[[nodiscard]] la::DenseMatrix quad4_diffusion(const QuadCoords& xy,
                                              const DiffusionTensor& d);

/// 3x3 scalar Laplace stiffness (exact).
[[nodiscard]] la::DenseMatrix tri3_poisson(const TriCoords& xy);

/// Signed area of the triangle (positive for CCW node order).
[[nodiscard]] real_t tri3_area(const TriCoords& xy);

/// Centroid strains from element displacement vectors (node-major,
/// component-minor dof order).  2-D elements return Voigt
/// (εxx, εyy, γxy); Hex8 returns (εxx, εyy, εzz, γxy, γyz, γzx).
[[nodiscard]] Vector quad4_centroid_strain(const QuadCoords& xy,
                                           std::span<const real_t> ue);
[[nodiscard]] Vector tri3_centroid_strain(const TriCoords& xy,
                                          std::span<const real_t> ue);
[[nodiscard]] Vector quad8_centroid_strain(const Quad8Coords& xy,
                                           std::span<const real_t> ue);
[[nodiscard]] Vector hex8_centroid_strain(const HexCoords& xyz,
                                          std::span<const real_t> ue);

}  // namespace pfem::fem
