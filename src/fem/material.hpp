// Linear elastic material and the plane-stress constitutive matrix.
#pragma once

#include <memory>
#include <vector>

#include "common/error.hpp"
#include "la/dense.hpp"

namespace pfem::fem {

/// Isotropic linear elastic material (plane stress), optionally
/// heterogeneous: per-element coefficient fields ride along as shared
/// tables so a Material stays cheap to copy and the assembly signatures
/// stay unchanged.
struct Material {
  real_t youngs_modulus = 1.0e3;  ///< E
  real_t poisson_ratio = 0.3;     ///< nu, in (-1, 0.5)
  real_t density = 1.0;           ///< rho (mass matrix)
  real_t thickness = 1.0;         ///< t (plane problems)

  /// Per-element stiffness multiplier (size num_elems when set): scales
  /// the Stiffness/Poisson element matrix of element e by elem_scale[e]
  /// — coefficient jumps for elasticity (2-D and 3-D) without touching
  /// E/nu per element.  The Mass operator is NOT scaled (density is a
  /// separate physical field).  Null means homogeneous.
  std::shared_ptr<const std::vector<real_t>> elem_scale;

  /// Per-element 2x2 diffusion tensors, row-major [e*4 + 2*i + j] (size
  /// num_elems*4 when set): routes the Quad4 Poisson operator through
  /// quad4_diffusion with D_e instead of the identity — anisotropic,
  /// possibly rotated, heterogeneous scalar diffusion.  Null keeps the
  /// plain Laplacian.  Ignored by elasticity/mass operators.
  std::shared_ptr<const std::vector<real_t>> diffusion;

  /// 3x3 plane-stress constitutive matrix D:
  ///   D = E/(1-nu^2) * [[1, nu, 0], [nu, 1, 0], [0, 0, (1-nu)/2]].
  [[nodiscard]] la::DenseMatrix plane_stress_d() const {
    PFEM_CHECK(youngs_modulus > 0.0);
    PFEM_CHECK(poisson_ratio > -1.0 && poisson_ratio < 0.5);
    const real_t e = youngs_modulus, nu = poisson_ratio;
    const real_t c = e / (1.0 - nu * nu);
    la::DenseMatrix d(3, 3);
    d(0, 0) = c;
    d(0, 1) = c * nu;
    d(1, 0) = c * nu;
    d(1, 1) = c;
    d(2, 2) = c * (1.0 - nu) / 2.0;
    return d;
  }

  /// 6x6 isotropic 3-D constitutive matrix in Voigt order
  /// (xx, yy, zz, xy, yz, zx), from the Lamé constants.
  [[nodiscard]] la::DenseMatrix elastic_3d_d() const {
    PFEM_CHECK(youngs_modulus > 0.0);
    PFEM_CHECK(poisson_ratio > -1.0 && poisson_ratio < 0.5);
    const real_t e = youngs_modulus, nu = poisson_ratio;
    const real_t lambda = e * nu / ((1.0 + nu) * (1.0 - 2.0 * nu));
    const real_t mu = e / (2.0 * (1.0 + nu));
    la::DenseMatrix d(6, 6);
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) d(i, j) = lambda;
      d(i, i) = lambda + 2.0 * mu;
      d(i + 3, i + 3) = mu;
    }
    return d;
  }
};

}  // namespace pfem::fem
