#include "fem/families.hpp"

#include <cmath>
#include <memory>
#include <utility>

#include "common/error.hpp"
#include "fem/structured.hpp"

namespace pfem::fem {

namespace {

struct Centroid {
  real_t x = 0.0, y = 0.0, z = 0.0;
};

Centroid elem_centroid3(const Mesh& mesh, index_t e) {
  const auto nodes = mesh.elem_nodes(e);
  Centroid c;
  for (index_t n : nodes) {
    c.x += mesh.x(n);
    c.y += mesh.y(n);
    if (mesh.dim() == 3) c.z += mesh.z(n);
  }
  const auto inv = 1.0 / static_cast<real_t>(nodes.size());
  c.x *= inv;
  c.y *= inv;
  c.z *= inv;
  return c;
}

/// Coefficient class of an element: 0 (soft, kappa = 1) or 1 (stiff,
/// kappa = jump).  `aligned` splits at the x = lx/2 plane; otherwise a
/// checker^d checkerboard over the bounding box, deliberately cutting
/// across every partition interface.
int elem_class(const ProblemSpec& spec, const Centroid& c, real_t lx,
               real_t ly, real_t lz, int dim) {
  if (spec.aligned) return c.x < 0.5 * lx ? 0 : 1;
  const auto blocks = static_cast<real_t>(spec.checker);
  const auto bx = static_cast<long>(std::floor(c.x / lx * blocks));
  const auto by = static_cast<long>(std::floor(c.y / ly * blocks));
  long sum = bx + by;
  if (dim == 3) sum += static_cast<long>(std::floor(c.z / lz * blocks));
  return static_cast<int>(sum & 1);
}

/// Per-element kappa table for the spec's jump pattern.
std::vector<real_t> elem_kappa(const ProblemSpec& spec, const Mesh& mesh,
                               real_t lx, real_t ly, real_t lz) {
  std::vector<real_t> kappa(static_cast<std::size_t>(mesh.num_elems()), 1.0);
  for (index_t e = 0; e < mesh.num_elems(); ++e) {
    const Centroid c = elem_centroid3(mesh, e);
    if (elem_class(spec, c, lx, ly, lz, static_cast<int>(mesh.dim())) == 1)
      kappa[static_cast<std::size_t>(e)] = spec.jump;
  }
  return kappa;
}

/// Coefficient magnitude per global free dof: max over the adjacent
/// elements, so every interface dof lands in the stiff class (the class
/// boundary of the jump-aware coarse space then traces the material
/// interface exactly).
Vector dof_coeff_from_elems(const Mesh& mesh, const DofMap& dofs,
                            const std::vector<real_t>& kappa) {
  std::vector<real_t> node_coeff(
      static_cast<std::size_t>(mesh.num_nodes()), 0.0);
  for (index_t e = 0; e < mesh.num_elems(); ++e)
    for (index_t n : mesh.elem_nodes(e)) {
      auto& v = node_coeff[static_cast<std::size_t>(n)];
      v = std::max(v, kappa[static_cast<std::size_t>(e)]);
    }
  Vector out(static_cast<std::size_t>(dofs.num_free()), 1.0);
  for (index_t n = 0; n < dofs.num_nodes(); ++n)
    for (index_t c = 0; c < dofs.dofs_per_node(); ++c) {
      const index_t g = dofs.dof(n, c);
      if (g >= 0)
        out[static_cast<std::size_t>(g)] =
            node_coeff[static_cast<std::size_t>(n)];
    }
  return out;
}

void check_spec(const ProblemSpec& spec) {
  PFEM_CHECK_MSG(spec.nx >= 1 && spec.ny >= 1 && spec.nz >= 1,
                 "problem spec: mesh sizes must be >= 1");
  PFEM_CHECK_MSG(spec.jump >= 1.0, "problem spec: jump must be >= 1");
  PFEM_CHECK_MSG(spec.anisotropy >= 1.0,
                 "problem spec: anisotropy must be >= 1");
  PFEM_CHECK_MSG(spec.checker >= 1, "problem spec: checker must be >= 1");
}

FamilyProblem make_cantilever2d(const ProblemSpec& spec) {
  CantileverSpec cs;
  cs.nx = spec.nx;
  cs.ny = spec.ny;
  cs.youngs_modulus = spec.youngs_modulus;
  cs.poisson_ratio = spec.poisson_ratio;
  cs.load_total = spec.load_total;

  CantileverProblem prob = make_cantilever(cs);
  Vector coords = free_dof_coords(prob.mesh, prob.dofs);
  Vector coeff(static_cast<std::size_t>(prob.dofs.num_free()), 1.0);
  return FamilyProblem{"cantilever2d",    std::move(prob),
                       Operator::Stiffness, /*components=*/2,
                       /*coord_dim=*/2,     std::move(coords),
                       std::move(coeff)};
}

FamilyProblem make_hetero2d(const ProblemSpec& spec) {
  const real_t lx = static_cast<real_t>(spec.nx);
  const real_t ly = static_cast<real_t>(spec.ny);
  Mesh mesh = structured_quad(spec.nx, spec.ny, lx, ly);

  const std::vector<real_t> kappa = elem_kappa(spec, mesh, lx, ly, 1.0);

  // Per-element tensor kappa * R(angle) diag(1, 1/anisotropy) R(angle)^T:
  // principal diffusivity 1 along the rotated first axis, 1/anisotropy
  // across it.
  const real_t c = std::cos(spec.angle), s = std::sin(spec.angle);
  const real_t minor = 1.0 / spec.anisotropy;
  auto tensors = std::make_shared<std::vector<real_t>>(
      4 * static_cast<std::size_t>(mesh.num_elems()));
  for (index_t e = 0; e < mesh.num_elems(); ++e) {
    const real_t k = kappa[static_cast<std::size_t>(e)];
    const std::size_t b = 4 * static_cast<std::size_t>(e);
    (*tensors)[b] = k * (c * c + s * s * minor);
    (*tensors)[b + 1] = k * (c * s * (1.0 - minor));
    (*tensors)[b + 2] = (*tensors)[b + 1];
    (*tensors)[b + 3] = k * (s * s + c * c * minor);
  }

  Material mat;
  mat.diffusion = std::move(tensors);

  DofMap dofs(mesh.num_nodes(), 1);
  for (index_t n : mesh.nodes_at_x(0.0)) dofs.fix_node(n);
  dofs.finalize();

  sparse::CsrMatrix k = assemble(mesh, dofs, mat, Operator::Poisson);
  Vector f(static_cast<std::size_t>(dofs.num_free()), 0.0);
  add_edge_load(dofs, mesh.nodes_at_x(lx), /*comp=*/0, spec.load_total, f);

  Vector coords = free_dof_coords(mesh, dofs);
  Vector coeff = dof_coeff_from_elems(mesh, dofs, kappa);
  return FamilyProblem{
      "hetero2d",
      CantileverProblem{std::move(mesh), std::move(dofs), mat, std::move(k),
                        std::move(f), spec.nx, spec.ny},
      Operator::Poisson,
      /*components=*/1,
      /*coord_dim=*/2,
      std::move(coords),
      std::move(coeff)};
}

FamilyProblem make_brick3d(const ProblemSpec& spec) {
  const real_t lx = static_cast<real_t>(spec.nx);
  const real_t ly = static_cast<real_t>(spec.ny);
  const real_t lz = static_cast<real_t>(spec.nz);
  Mesh mesh = structured_hex(spec.nx, spec.ny, spec.nz, lx, ly, lz);

  const std::vector<real_t> kappa = elem_kappa(spec, mesh, lx, ly, lz);

  Material mat;
  mat.youngs_modulus = spec.youngs_modulus;
  mat.poisson_ratio = spec.poisson_ratio;
  mat.elem_scale = std::make_shared<std::vector<real_t>>(kappa);

  DofMap dofs(mesh.num_nodes(), 3);
  for (index_t n : mesh.nodes_at_x(0.0)) dofs.fix_node(n);
  dofs.finalize();

  sparse::CsrMatrix k = assemble(mesh, dofs, mat, Operator::Stiffness);
  Vector f(static_cast<std::size_t>(dofs.num_free()), 0.0);
  add_edge_load(dofs, mesh.nodes_at_x(lx), /*comp=*/0, spec.load_total, f);

  Vector coords = free_dof_coords(mesh, dofs);
  Vector coeff = dof_coeff_from_elems(mesh, dofs, kappa);
  return FamilyProblem{
      "brick3d",
      CantileverProblem{std::move(mesh), std::move(dofs), mat, std::move(k),
                        std::move(f), spec.nx, spec.ny, spec.nz},
      Operator::Stiffness,
      /*components=*/3,
      /*coord_dim=*/3,
      std::move(coords),
      std::move(coeff)};
}

}  // namespace

std::vector<std::string> problem_families() {
  return {"cantilever2d", "hetero2d", "brick3d"};
}

ProblemSpec default_spec(const std::string& family) {
  ProblemSpec spec;
  spec.family = family;
  if (family == "cantilever2d") {
    spec.nx = 10;
    spec.ny = 4;
  } else if (family == "hetero2d") {
    spec.nx = 16;
    spec.ny = 16;
  } else if (family == "brick3d") {
    spec.nx = 8;
    spec.ny = 3;
    spec.nz = 3;
  } else {
    PFEM_CHECK_MSG(false, "unknown problem family '" << family << "'");
  }
  return spec;
}

FamilyProblem make_problem(const ProblemSpec& spec) {
  check_spec(spec);
  if (spec.family == "cantilever2d") return make_cantilever2d(spec);
  if (spec.family == "hetero2d") return make_hetero2d(spec);
  if (spec.family == "brick3d") return make_brick3d(spec);
  PFEM_CHECK_MSG(false, "unknown problem family '" << spec.family << "'");
}

}  // namespace pfem::fem
