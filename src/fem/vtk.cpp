#include "fem/vtk.hpp"

#include <fstream>
#include <iomanip>

#include "common/error.hpp"

namespace pfem::fem {

int vtk_cell_type(ElemType t) {
  switch (t) {
    case ElemType::Quad4: return 9;
    case ElemType::Tri3: return 5;
    case ElemType::Quad8: return 23;
    case ElemType::Hex8: return 12;
  }
  return 0;
}

void write_vtk(std::ostream& os, const Mesh& mesh, const DofMap& dofs,
               std::span<const real_t> u,
               const std::vector<VtkCellField>& cell_fields) {
  PFEM_CHECK(u.size() == static_cast<std::size_t>(dofs.num_free()));
  PFEM_CHECK(dofs.num_nodes() == mesh.num_nodes());
  for (const VtkCellField& f : cell_fields)
    PFEM_CHECK_MSG(f.values.size() ==
                       static_cast<std::size_t>(mesh.num_elems()),
                   "cell field '" << f.name << "' has wrong length");

  os << "# vtk DataFile Version 3.0\n";
  os << "pfem-dd-poly solution\n";
  os << "ASCII\n";
  os << "DATASET UNSTRUCTURED_GRID\n";
  os << std::setprecision(12);

  os << "POINTS " << mesh.num_nodes() << " double\n";
  for (index_t n = 0; n < mesh.num_nodes(); ++n)
    os << mesh.x(n) << " " << mesh.y(n) << " " << mesh.z(n) << "\n";

  const index_t npe = nodes_per_elem(mesh.type());
  os << "CELLS " << mesh.num_elems() << " "
     << static_cast<long long>(mesh.num_elems()) * (npe + 1) << "\n";
  for (index_t e = 0; e < mesh.num_elems(); ++e) {
    os << npe;
    for (index_t n : mesh.elem_nodes(e)) os << " " << n;
    os << "\n";
  }
  os << "CELL_TYPES " << mesh.num_elems() << "\n";
  const int cell_type = vtk_cell_type(mesh.type());
  for (index_t e = 0; e < mesh.num_elems(); ++e) os << cell_type << "\n";

  os << "POINT_DATA " << mesh.num_nodes() << "\n";
  os << "VECTORS displacement double\n";
  const index_t dpn = dofs.dofs_per_node();
  for (index_t n = 0; n < mesh.num_nodes(); ++n) {
    real_t comp[3] = {0.0, 0.0, 0.0};
    for (index_t c = 0; c < dpn && c < 3; ++c) {
      const index_t d = dofs.dof(n, c);
      if (d >= 0) comp[c] = u[static_cast<std::size_t>(d)];
    }
    os << comp[0] << " " << comp[1] << " " << comp[2] << "\n";
  }

  if (!cell_fields.empty()) {
    os << "CELL_DATA " << mesh.num_elems() << "\n";
    for (const VtkCellField& f : cell_fields) {
      os << "SCALARS " << f.name << " double 1\n";
      os << "LOOKUP_TABLE default\n";
      for (real_t v : f.values) os << v << "\n";
    }
  }
}

void write_vtk(const std::string& path, const Mesh& mesh, const DofMap& dofs,
               std::span<const real_t> u,
               const std::vector<VtkCellField>& cell_fields) {
  std::ofstream os(path);
  PFEM_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  write_vtk(os, mesh, dofs, u, cell_fields);
}

}  // namespace pfem::fem
