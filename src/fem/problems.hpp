// The paper's evaluation problem: a 2-D plane-stress cantilever plate,
// fixed at x = 0, with a "pulling load" applied at the free end
// (Fig. 9), discretized with Q4 elements on the Table-2 mesh family
// (Mesh1 = 7x1 ... Mesh10 = 200x100).
#pragma once

#include <string>
#include <vector>

#include "fem/assembly.hpp"
#include "fem/dofmap.hpp"
#include "fem/mesh.hpp"
#include "sparse/csr.hpp"

namespace pfem::fem {

/// A fully assembled cantilever problem instance.
struct CantileverProblem {
  Mesh mesh;
  DofMap dofs;
  Material material;
  sparse::CsrMatrix stiffness;  ///< K on free dofs (Eq. 50)
  Vector load;                  ///< f (tip pulling load)
  index_t nx = 0;               ///< elements along the beam
  index_t ny = 0;               ///< elements across the beam
  index_t nz = 0;               ///< elements through the thickness (3-D)

  /// Consistent mass matrix M on free dofs (Eq. 51), assembled on demand
  /// by dynamic problems.
  [[nodiscard]] sparse::CsrMatrix assemble_mass() const;
};

/// Parameters of the cantilever family.  Geometry keeps unit-square
/// elements (lx = nx, ly = ny) like a stretched plate; the load pulls the
/// free edge in +x ("pulling load", membrane action).
struct CantileverSpec {
  index_t nx = 10;
  index_t ny = 10;
  real_t youngs_modulus = 1000.0;
  real_t poisson_ratio = 0.3;
  real_t density = 1.0;
  real_t thickness = 1.0;
  real_t load_total = 100.0;
  ElemType elem_type = ElemType::Quad4;
};

/// Build the cantilever: structured mesh, x=0 edge clamped, +x edge
/// pulled, stiffness assembled on free dofs.
[[nodiscard]] CantileverProblem make_cantilever(const CantileverSpec& spec);

/// 3-D variant: an nx x ny x nz bar of trilinear hexahedra, the x = 0
/// face clamped, the x = lx face pulled in +x.  Exercises the solver
/// stack on 3-D elasticity (the regime where the paper's §5 discussion
/// flags the row-based layout's storage growth as "drastic").
struct Cantilever3dSpec {
  index_t nx = 8;
  index_t ny = 2;
  index_t nz = 2;
  real_t youngs_modulus = 1000.0;
  real_t poisson_ratio = 0.3;
  real_t density = 1.0;
  real_t load_total = 100.0;
};

[[nodiscard]] CantileverProblem make_cantilever_3d(
    const Cantilever3dSpec& spec);

/// One row of the paper's Table 2.
struct MeshInfo {
  std::string name;  // "Mesh1" ...
  index_t nx;
  index_t ny;
  index_t n_nodes;   // (nx+1)*(ny+1)
  index_t n_eqn;     // free dofs after clamping x=0
};

/// Node coordinates per global FREE dof, flattened [g * dim + k] with
/// dim = mesh.dim(); every component dof of a node repeats its
/// coordinates.  This is the table core::DeflationOptions::dof_coords
/// expects for the coordinate-linear coarse-space enrichment.
[[nodiscard]] Vector free_dof_coords(const Mesh& mesh, const DofMap& dofs);

/// The Table 2 mesh family (Mesh1 .. Mesh10).
[[nodiscard]] std::vector<MeshInfo> table2_meshes();

/// Build the cantilever for a Table 2 entry (1-based paper index).
[[nodiscard]] CantileverProblem make_table2_cantilever(int mesh_number);

}  // namespace pfem::fem
