// 2-D finite element mesh container.
//
// Homogeneous element type per mesh (Q4 bilinear quadrilateral or T3
// linear triangle), struct-of-arrays storage: coordinates packed (x,y)
// and connectivity packed nodes-per-element, for predictable access.
#pragma once

#include <array>
#include <span>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace pfem::fem {

enum class ElemType { Quad4, Tri3, Quad8, Hex8 };

[[nodiscard]] constexpr index_t nodes_per_elem(ElemType t) {
  switch (t) {
    case ElemType::Quad4: return 4;
    case ElemType::Tri3: return 3;
    case ElemType::Quad8: return 8;
    case ElemType::Hex8: return 8;
  }
  return 0;
}

/// Spatial dimension the element lives in.
[[nodiscard]] constexpr index_t elem_dim(ElemType t) {
  return t == ElemType::Hex8 ? 3 : 2;
}

class Mesh {
 public:
  /// Coordinates are interleaved per node: (x,y) pairs for 2-D element
  /// types, (x,y,z) triples for 3-D ones (the dimension follows the
  /// element type).
  Mesh(ElemType type, Vector coords, IndexVector connectivity);

  [[nodiscard]] ElemType type() const noexcept { return type_; }
  [[nodiscard]] index_t dim() const noexcept { return elem_dim(type_); }
  [[nodiscard]] index_t num_nodes() const noexcept {
    return as_index(coords_.size() / static_cast<std::size_t>(dim()));
  }
  [[nodiscard]] index_t num_elems() const noexcept {
    return as_index(conn_.size() / nodes_per_elem(type_));
  }

  [[nodiscard]] real_t x(index_t node) const {
    return coords_[static_cast<std::size_t>(dim()) * node];
  }
  [[nodiscard]] real_t y(index_t node) const {
    return coords_[static_cast<std::size_t>(dim()) * node + 1];
  }
  /// z coordinate; 0 for 2-D meshes.
  [[nodiscard]] real_t z(index_t node) const {
    return dim() == 3 ? coords_[3 * static_cast<std::size_t>(node) + 2]
                      : 0.0;
  }

  /// Node ids of element e.
  [[nodiscard]] std::span<const index_t> elem_nodes(index_t e) const {
    const index_t npe = nodes_per_elem(type_);
    return {conn_.data() + static_cast<std::size_t>(e) * npe,
            static_cast<std::size_t>(npe)};
  }

  /// Element centroid (used by the RCB partitioner).
  [[nodiscard]] std::pair<real_t, real_t> elem_centroid(index_t e) const;

  /// Nodes with x within tol of the given value (edge selection for BCs
  /// and tractions on the cantilever).
  [[nodiscard]] IndexVector nodes_at_x(real_t x_value,
                                       real_t tol = 1e-9) const;
  [[nodiscard]] IndexVector nodes_at_y(real_t y_value,
                                       real_t tol = 1e-9) const;

  /// Bounding box {xmin, xmax, ymin, ymax}.
  [[nodiscard]] std::array<real_t, 4> bounding_box() const;

 private:
  ElemType type_;
  Vector coords_;    // dim*num_nodes, interleaved per node
  IndexVector conn_; // nodes_per_elem * num_elems
};

}  // namespace pfem::fem
