#include "fem/elements.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pfem::fem {

namespace {

constexpr real_t kGauss = 0.57735026918962576451;  // 1/sqrt(3)

struct ShapeEval {
  std::array<real_t, 4> n;        // N_i
  std::array<real_t, 4> dn_dx;    // dN_i/dx
  std::array<real_t, 4> dn_dy;    // dN_i/dy
  real_t det_j;                   // |J|
};

/// Evaluate Q4 shapes and physical-space gradients at (xi, eta).
ShapeEval quad4_shapes(const QuadCoords& xy, real_t xi, real_t eta) {
  // Node order: (-1,-1), (1,-1), (1,1), (-1,1).
  const std::array<real_t, 4> xs{-1.0, 1.0, 1.0, -1.0};
  const std::array<real_t, 4> es{-1.0, -1.0, 1.0, 1.0};
  ShapeEval s{};
  std::array<real_t, 4> dn_dxi{}, dn_deta{};
  for (int i = 0; i < 4; ++i) {
    s.n[i] = 0.25 * (1.0 + xs[i] * xi) * (1.0 + es[i] * eta);
    dn_dxi[i] = 0.25 * xs[i] * (1.0 + es[i] * eta);
    dn_deta[i] = 0.25 * es[i] * (1.0 + xs[i] * xi);
  }
  real_t j00 = 0, j01 = 0, j10 = 0, j11 = 0;  // J = d(x,y)/d(xi,eta)
  for (int i = 0; i < 4; ++i) {
    j00 += dn_dxi[i] * xy[2 * i];
    j01 += dn_dxi[i] * xy[2 * i + 1];
    j10 += dn_deta[i] * xy[2 * i];
    j11 += dn_deta[i] * xy[2 * i + 1];
  }
  s.det_j = j00 * j11 - j01 * j10;
  PFEM_CHECK_MSG(s.det_j > 0.0, "degenerate/inverted Q4 element");
  const real_t inv = 1.0 / s.det_j;
  for (int i = 0; i < 4; ++i) {
    s.dn_dx[i] = inv * (j11 * dn_dxi[i] - j01 * dn_deta[i]);
    s.dn_dy[i] = inv * (-j10 * dn_dxi[i] + j00 * dn_deta[i]);
  }
  return s;
}

struct Shape8Eval {
  std::array<real_t, 8> n;
  std::array<real_t, 8> dn_dx;
  std::array<real_t, 8> dn_dy;
  real_t det_j;
};

/// Serendipity Q8 shapes at (xi, eta).  Corners CCW then midsides of
/// edges 01, 12, 23, 30.
Shape8Eval quad8_shapes(const Quad8Coords& xy, real_t xi, real_t eta) {
  const std::array<real_t, 4> xs{-1.0, 1.0, 1.0, -1.0};
  const std::array<real_t, 4> es{-1.0, -1.0, 1.0, 1.0};
  Shape8Eval s{};
  std::array<real_t, 8> dn_dxi{}, dn_deta{};
  // Corners: N = 1/4 (1+ξξi)(1+ηηi)(ξξi+ηηi−1).
  for (int i = 0; i < 4; ++i) {
    const real_t xi_i = xs[i], et_i = es[i];
    s.n[i] = 0.25 * (1 + xi_i * xi) * (1 + et_i * eta) *
             (xi_i * xi + et_i * eta - 1);
    dn_dxi[i] = 0.25 * xi_i * (1 + et_i * eta) *
                (2 * xi_i * xi + et_i * eta);
    dn_deta[i] = 0.25 * et_i * (1 + xi_i * xi) *
                 (xi_i * xi + 2 * et_i * eta);
  }
  // Midsides on η = ∓1 edges (nodes 4 and 6): N = 1/2 (1−ξ²)(1+ηηi).
  const std::array<int, 2> hmid{4, 6};
  const std::array<real_t, 2> het{-1.0, 1.0};
  for (int k = 0; k < 2; ++k) {
    const int i = hmid[static_cast<std::size_t>(k)];
    const real_t et_i = het[static_cast<std::size_t>(k)];
    s.n[i] = 0.5 * (1 - xi * xi) * (1 + et_i * eta);
    dn_dxi[i] = -xi * (1 + et_i * eta);
    dn_deta[i] = 0.5 * et_i * (1 - xi * xi);
  }
  // Midsides on ξ = ±1 edges (nodes 5 and 7): N = 1/2 (1+ξξi)(1−η²).
  const std::array<int, 2> vmid{5, 7};
  const std::array<real_t, 2> vxi{1.0, -1.0};
  for (int k = 0; k < 2; ++k) {
    const int i = vmid[static_cast<std::size_t>(k)];
    const real_t xi_i = vxi[static_cast<std::size_t>(k)];
    s.n[i] = 0.5 * (1 + xi_i * xi) * (1 - eta * eta);
    dn_dxi[i] = 0.5 * xi_i * (1 - eta * eta);
    dn_deta[i] = -eta * (1 + xi_i * xi);
  }

  real_t j00 = 0, j01 = 0, j10 = 0, j11 = 0;
  for (int i = 0; i < 8; ++i) {
    j00 += dn_dxi[i] * xy[2 * i];
    j01 += dn_dxi[i] * xy[2 * i + 1];
    j10 += dn_deta[i] * xy[2 * i];
    j11 += dn_deta[i] * xy[2 * i + 1];
  }
  s.det_j = j00 * j11 - j01 * j10;
  PFEM_CHECK_MSG(s.det_j > 0.0, "degenerate/inverted Q8 element");
  const real_t inv = 1.0 / s.det_j;
  for (int i = 0; i < 8; ++i) {
    s.dn_dx[i] = inv * (j11 * dn_dxi[i] - j01 * dn_deta[i]);
    s.dn_dy[i] = inv * (-j10 * dn_dxi[i] + j00 * dn_deta[i]);
  }
  return s;
}

/// 3-point Gauss nodes/weights on (-1, 1).
constexpr std::array<real_t, 3> kG3x{-0.77459666924148337704, 0.0,
                                     0.77459666924148337704};
constexpr std::array<real_t, 3> kG3w{5.0 / 9.0, 8.0 / 9.0, 5.0 / 9.0};

struct ShapeHexEval {
  std::array<real_t, 8> n;
  std::array<real_t, 8> dn_dx;
  std::array<real_t, 8> dn_dy;
  std::array<real_t, 8> dn_dz;
  real_t det_j;
};

/// Trilinear Hex8 shapes at (xi, eta, zeta).  Node order: bottom face
/// (-1,-1,-1),(1,-1,-1),(1,1,-1),(-1,1,-1) then the top face above it.
ShapeHexEval hex8_shapes(const HexCoords& xyz, real_t xi, real_t eta,
                         real_t zeta) {
  const std::array<real_t, 8> xs{-1, 1, 1, -1, -1, 1, 1, -1};
  const std::array<real_t, 8> es{-1, -1, 1, 1, -1, -1, 1, 1};
  const std::array<real_t, 8> zs{-1, -1, -1, -1, 1, 1, 1, 1};
  ShapeHexEval s{};
  std::array<real_t, 8> dxi{}, deta{}, dzeta{};
  for (int i = 0; i < 8; ++i) {
    const real_t fx = 1 + xs[i] * xi, fe = 1 + es[i] * eta,
                 fz = 1 + zs[i] * zeta;
    s.n[i] = 0.125 * fx * fe * fz;
    dxi[i] = 0.125 * xs[i] * fe * fz;
    deta[i] = 0.125 * es[i] * fx * fz;
    dzeta[i] = 0.125 * zs[i] * fx * fe;
  }
  // Jacobian J = d(x,y,z)/d(xi,eta,zeta), row-major.
  real_t j[3][3] = {{0, 0, 0}, {0, 0, 0}, {0, 0, 0}};
  for (int i = 0; i < 8; ++i) {
    const real_t x = xyz[3 * i], y = xyz[3 * i + 1], zc = xyz[3 * i + 2];
    j[0][0] += dxi[i] * x;
    j[0][1] += dxi[i] * y;
    j[0][2] += dxi[i] * zc;
    j[1][0] += deta[i] * x;
    j[1][1] += deta[i] * y;
    j[1][2] += deta[i] * zc;
    j[2][0] += dzeta[i] * x;
    j[2][1] += dzeta[i] * y;
    j[2][2] += dzeta[i] * zc;
  }
  s.det_j = j[0][0] * (j[1][1] * j[2][2] - j[1][2] * j[2][1]) -
            j[0][1] * (j[1][0] * j[2][2] - j[1][2] * j[2][0]) +
            j[0][2] * (j[1][0] * j[2][1] - j[1][1] * j[2][0]);
  PFEM_CHECK_MSG(s.det_j > 0.0, "degenerate/inverted Hex8 element");
  // Inverse Jacobian (adjugate / det).
  const real_t inv = 1.0 / s.det_j;
  real_t ji[3][3];
  ji[0][0] = inv * (j[1][1] * j[2][2] - j[1][2] * j[2][1]);
  ji[0][1] = inv * (j[0][2] * j[2][1] - j[0][1] * j[2][2]);
  ji[0][2] = inv * (j[0][1] * j[1][2] - j[0][2] * j[1][1]);
  ji[1][0] = inv * (j[1][2] * j[2][0] - j[1][0] * j[2][2]);
  ji[1][1] = inv * (j[0][0] * j[2][2] - j[0][2] * j[2][0]);
  ji[1][2] = inv * (j[0][2] * j[1][0] - j[0][0] * j[1][2]);
  ji[2][0] = inv * (j[1][0] * j[2][1] - j[1][1] * j[2][0]);
  ji[2][1] = inv * (j[0][1] * j[2][0] - j[0][0] * j[2][1]);
  ji[2][2] = inv * (j[0][0] * j[1][1] - j[0][1] * j[1][0]);
  for (int i = 0; i < 8; ++i) {
    s.dn_dx[i] = ji[0][0] * dxi[i] + ji[0][1] * deta[i] + ji[0][2] * dzeta[i];
    s.dn_dy[i] = ji[1][0] * dxi[i] + ji[1][1] * deta[i] + ji[1][2] * dzeta[i];
    s.dn_dz[i] = ji[2][0] * dxi[i] + ji[2][1] * deta[i] + ji[2][2] * dzeta[i];
  }
  return s;
}

}  // namespace

la::DenseMatrix hex8_stiffness(const HexCoords& xyz, const Material& mat) {
  const la::DenseMatrix d = mat.elastic_3d_d();
  la::DenseMatrix ke(24, 24);
  for (int gx = 0; gx < 2; ++gx)
    for (int gy = 0; gy < 2; ++gy)
      for (int gz = 0; gz < 2; ++gz) {
        const ShapeHexEval s =
            hex8_shapes(xyz, gx == 0 ? -kGauss : kGauss,
                        gy == 0 ? -kGauss : kGauss,
                        gz == 0 ? -kGauss : kGauss);
        // B (6x24), Voigt (xx, yy, zz, xy, yz, zx).
        la::DenseMatrix b(6, 24);
        for (int i = 0; i < 8; ++i) {
          b(0, 3 * i) = s.dn_dx[i];
          b(1, 3 * i + 1) = s.dn_dy[i];
          b(2, 3 * i + 2) = s.dn_dz[i];
          b(3, 3 * i) = s.dn_dy[i];
          b(3, 3 * i + 1) = s.dn_dx[i];
          b(4, 3 * i + 1) = s.dn_dz[i];
          b(4, 3 * i + 2) = s.dn_dy[i];
          b(5, 3 * i) = s.dn_dz[i];
          b(5, 3 * i + 2) = s.dn_dx[i];
        }
        const la::DenseMatrix db = d.multiply(b);
        const real_t w = s.det_j;  // unit Gauss weights
        for (index_t r = 0; r < 24; ++r)
          for (index_t c = 0; c < 24; ++c) {
            real_t acc = 0.0;
            for (index_t k = 0; k < 6; ++k) acc += b(k, r) * db(k, c);
            ke(r, c) += w * acc;
          }
      }
  return ke;
}

la::DenseMatrix hex8_mass(const HexCoords& xyz, const Material& mat) {
  la::DenseMatrix me(24, 24);
  for (int gx = 0; gx < 2; ++gx)
    for (int gy = 0; gy < 2; ++gy)
      for (int gz = 0; gz < 2; ++gz) {
        const ShapeHexEval s =
            hex8_shapes(xyz, gx == 0 ? -kGauss : kGauss,
                        gy == 0 ? -kGauss : kGauss,
                        gz == 0 ? -kGauss : kGauss);
        const real_t w = mat.density * s.det_j;
        for (int i = 0; i < 8; ++i)
          for (int jn = 0; jn < 8; ++jn) {
            const real_t nij = w * s.n[i] * s.n[jn];
            me(3 * i, 3 * jn) += nij;
            me(3 * i + 1, 3 * jn + 1) += nij;
            me(3 * i + 2, 3 * jn + 2) += nij;
          }
      }
  return me;
}

la::DenseMatrix quad8_stiffness(const Quad8Coords& xy, const Material& mat) {
  const la::DenseMatrix d = mat.plane_stress_d();
  la::DenseMatrix ke(16, 16);
  for (int gx = 0; gx < 3; ++gx) {
    for (int gy = 0; gy < 3; ++gy) {
      const Shape8Eval s = quad8_shapes(xy, kG3x[static_cast<std::size_t>(gx)],
                                        kG3x[static_cast<std::size_t>(gy)]);
      la::DenseMatrix b(3, 16);
      for (int i = 0; i < 8; ++i) {
        b(0, 2 * i) = s.dn_dx[i];
        b(1, 2 * i + 1) = s.dn_dy[i];
        b(2, 2 * i) = s.dn_dy[i];
        b(2, 2 * i + 1) = s.dn_dx[i];
      }
      const la::DenseMatrix db = d.multiply(b);
      const real_t w = mat.thickness * s.det_j *
                       kG3w[static_cast<std::size_t>(gx)] *
                       kG3w[static_cast<std::size_t>(gy)];
      for (index_t r = 0; r < 16; ++r)
        for (index_t c = 0; c < 16; ++c) {
          real_t acc = 0.0;
          for (index_t k = 0; k < 3; ++k) acc += b(k, r) * db(k, c);
          ke(r, c) += w * acc;
        }
    }
  }
  return ke;
}

la::DenseMatrix quad8_mass(const Quad8Coords& xy, const Material& mat) {
  la::DenseMatrix me(16, 16);
  for (int gx = 0; gx < 3; ++gx) {
    for (int gy = 0; gy < 3; ++gy) {
      const Shape8Eval s = quad8_shapes(xy, kG3x[static_cast<std::size_t>(gx)],
                                        kG3x[static_cast<std::size_t>(gy)]);
      const real_t w = mat.density * mat.thickness * s.det_j *
                       kG3w[static_cast<std::size_t>(gx)] *
                       kG3w[static_cast<std::size_t>(gy)];
      for (int i = 0; i < 8; ++i)
        for (int j = 0; j < 8; ++j) {
          const real_t nij = w * s.n[i] * s.n[j];
          me(2 * i, 2 * j) += nij;
          me(2 * i + 1, 2 * j + 1) += nij;
        }
    }
  }
  return me;
}

la::DenseMatrix quad4_stiffness(const QuadCoords& xy, const Material& mat) {
  const la::DenseMatrix d = mat.plane_stress_d();
  la::DenseMatrix ke(8, 8);
  for (int gx = 0; gx < 2; ++gx) {
    for (int gy = 0; gy < 2; ++gy) {
      const real_t xi = (gx == 0 ? -kGauss : kGauss);
      const real_t eta = (gy == 0 ? -kGauss : kGauss);
      const ShapeEval s = quad4_shapes(xy, xi, eta);
      // B (3x8): rows [du/dx, dv/dy, du/dy+dv/dx].
      la::DenseMatrix b(3, 8);
      for (int i = 0; i < 4; ++i) {
        b(0, 2 * i) = s.dn_dx[i];
        b(1, 2 * i + 1) = s.dn_dy[i];
        b(2, 2 * i) = s.dn_dy[i];
        b(2, 2 * i + 1) = s.dn_dx[i];
      }
      const la::DenseMatrix db = d.multiply(b);
      const real_t w = mat.thickness * s.det_j;  // unit Gauss weights
      for (index_t r = 0; r < 8; ++r)
        for (index_t c = 0; c < 8; ++c) {
          real_t acc = 0.0;
          for (index_t k = 0; k < 3; ++k) acc += b(k, r) * db(k, c);
          ke(r, c) += w * acc;
        }
    }
  }
  return ke;
}

la::DenseMatrix quad4_mass(const QuadCoords& xy, const Material& mat) {
  la::DenseMatrix me(8, 8);
  for (int gx = 0; gx < 2; ++gx) {
    for (int gy = 0; gy < 2; ++gy) {
      const real_t xi = (gx == 0 ? -kGauss : kGauss);
      const real_t eta = (gy == 0 ? -kGauss : kGauss);
      const ShapeEval s = quad4_shapes(xy, xi, eta);
      const real_t w = mat.density * mat.thickness * s.det_j;
      for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j) {
          const real_t nij = w * s.n[i] * s.n[j];
          me(2 * i, 2 * j) += nij;
          me(2 * i + 1, 2 * j + 1) += nij;
        }
    }
  }
  return me;
}

real_t tri3_area(const TriCoords& xy) {
  return 0.5 * ((xy[2] - xy[0]) * (xy[5] - xy[1]) -
                (xy[4] - xy[0]) * (xy[3] - xy[1]));
}

la::DenseMatrix tri3_stiffness(const TriCoords& xy, const Material& mat) {
  const real_t area = tri3_area(xy);
  PFEM_CHECK_MSG(area > 0.0, "degenerate/inverted T3 element");
  const real_t x1 = xy[0], y1 = xy[1], x2 = xy[2], y2 = xy[3], x3 = xy[4],
               y3 = xy[5];
  // Constant gradients: b_i = y_j - y_k, c_i = x_k - x_j (cyclic).
  const std::array<real_t, 3> bb{y2 - y3, y3 - y1, y1 - y2};
  const std::array<real_t, 3> cc{x3 - x2, x1 - x3, x2 - x1};
  const real_t inv2a = 1.0 / (2.0 * area);
  la::DenseMatrix b(3, 6);
  for (int i = 0; i < 3; ++i) {
    b(0, 2 * i) = bb[i] * inv2a;
    b(1, 2 * i + 1) = cc[i] * inv2a;
    b(2, 2 * i) = cc[i] * inv2a;
    b(2, 2 * i + 1) = bb[i] * inv2a;
  }
  const la::DenseMatrix d = mat.plane_stress_d();
  const la::DenseMatrix db = d.multiply(b);
  la::DenseMatrix ke(6, 6);
  const real_t w = mat.thickness * area;
  for (index_t r = 0; r < 6; ++r)
    for (index_t c = 0; c < 6; ++c) {
      real_t acc = 0.0;
      for (index_t k = 0; k < 3; ++k) acc += b(k, r) * db(k, c);
      ke(r, c) = w * acc;
    }
  return ke;
}

la::DenseMatrix tri3_mass(const TriCoords& xy, const Material& mat) {
  const real_t area = tri3_area(xy);
  PFEM_CHECK_MSG(area > 0.0, "degenerate/inverted T3 element");
  // Consistent CST mass: (rho*t*A/12) * (2 if i==j else 1) per dof pair.
  const real_t c = mat.density * mat.thickness * area / 12.0;
  la::DenseMatrix me(6, 6);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) {
      const real_t v = c * (i == j ? 2.0 : 1.0);
      me(2 * i, 2 * j) = v;
      me(2 * i + 1, 2 * j + 1) = v;
    }
  return me;
}

Vector quad4_centroid_strain(const QuadCoords& xy,
                             std::span<const real_t> ue) {
  PFEM_CHECK(ue.size() == 8);
  const ShapeEval s = quad4_shapes(xy, 0.0, 0.0);
  Vector eps(3, 0.0);
  for (int i = 0; i < 4; ++i) {
    eps[0] += s.dn_dx[i] * ue[2 * i];
    eps[1] += s.dn_dy[i] * ue[2 * i + 1];
    eps[2] += s.dn_dy[i] * ue[2 * i] + s.dn_dx[i] * ue[2 * i + 1];
  }
  return eps;
}

Vector tri3_centroid_strain(const TriCoords& xy, std::span<const real_t> ue) {
  PFEM_CHECK(ue.size() == 6);
  const real_t area = tri3_area(xy);
  PFEM_CHECK_MSG(area > 0.0, "degenerate/inverted T3 element");
  const real_t x1 = xy[0], y1 = xy[1], x2 = xy[2], y2 = xy[3], x3 = xy[4],
               y3 = xy[5];
  const std::array<real_t, 3> bb{y2 - y3, y3 - y1, y1 - y2};
  const std::array<real_t, 3> cc{x3 - x2, x1 - x3, x2 - x1};
  const real_t inv2a = 1.0 / (2.0 * area);
  Vector eps(3, 0.0);
  for (int i = 0; i < 3; ++i) {
    eps[0] += inv2a * bb[i] * ue[2 * i];
    eps[1] += inv2a * cc[i] * ue[2 * i + 1];
    eps[2] += inv2a * (cc[i] * ue[2 * i] + bb[i] * ue[2 * i + 1]);
  }
  return eps;
}

Vector quad8_centroid_strain(const Quad8Coords& xy,
                             std::span<const real_t> ue) {
  PFEM_CHECK(ue.size() == 16);
  const Shape8Eval s = quad8_shapes(xy, 0.0, 0.0);
  Vector eps(3, 0.0);
  for (int i = 0; i < 8; ++i) {
    eps[0] += s.dn_dx[i] * ue[2 * i];
    eps[1] += s.dn_dy[i] * ue[2 * i + 1];
    eps[2] += s.dn_dy[i] * ue[2 * i] + s.dn_dx[i] * ue[2 * i + 1];
  }
  return eps;
}

Vector hex8_centroid_strain(const HexCoords& xyz,
                            std::span<const real_t> ue) {
  PFEM_CHECK(ue.size() == 24);
  const ShapeHexEval s = hex8_shapes(xyz, 0.0, 0.0, 0.0);
  Vector eps(6, 0.0);
  for (int i = 0; i < 8; ++i) {
    const real_t u = ue[3 * i], v = ue[3 * i + 1], w = ue[3 * i + 2];
    eps[0] += s.dn_dx[i] * u;
    eps[1] += s.dn_dy[i] * v;
    eps[2] += s.dn_dz[i] * w;
    eps[3] += s.dn_dy[i] * u + s.dn_dx[i] * v;
    eps[4] += s.dn_dz[i] * v + s.dn_dy[i] * w;
    eps[5] += s.dn_dz[i] * u + s.dn_dx[i] * w;
  }
  return eps;
}

la::DenseMatrix quad4_poisson(const QuadCoords& xy) {
  la::DenseMatrix ke(4, 4);
  for (int gx = 0; gx < 2; ++gx) {
    for (int gy = 0; gy < 2; ++gy) {
      const real_t xi = (gx == 0 ? -kGauss : kGauss);
      const real_t eta = (gy == 0 ? -kGauss : kGauss);
      const ShapeEval s = quad4_shapes(xy, xi, eta);
      for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
          ke(i, j) +=
              s.det_j * (s.dn_dx[i] * s.dn_dx[j] + s.dn_dy[i] * s.dn_dy[j]);
    }
  }
  return ke;
}

la::DenseMatrix quad4_diffusion(const QuadCoords& xy,
                                const DiffusionTensor& d) {
  la::DenseMatrix ke(4, 4);
  for (int gx = 0; gx < 2; ++gx) {
    for (int gy = 0; gy < 2; ++gy) {
      const real_t xi = (gx == 0 ? -kGauss : kGauss);
      const real_t eta = (gy == 0 ? -kGauss : kGauss);
      const ShapeEval s = quad4_shapes(xy, xi, eta);
      for (int i = 0; i < 4; ++i) {
        // (D grad Ni) with D = [dxx dxy; dyx dyy], row-major.
        const real_t qx = d[0] * s.dn_dx[i] + d[1] * s.dn_dy[i];
        const real_t qy = d[2] * s.dn_dx[i] + d[3] * s.dn_dy[i];
        for (int j = 0; j < 4; ++j)
          ke(i, j) += s.det_j * (qx * s.dn_dx[j] + qy * s.dn_dy[j]);
      }
    }
  }
  return ke;
}

la::DenseMatrix tri3_poisson(const TriCoords& xy) {
  const real_t area = tri3_area(xy);
  PFEM_CHECK_MSG(area > 0.0, "degenerate/inverted T3 element");
  const real_t x1 = xy[0], y1 = xy[1], x2 = xy[2], y2 = xy[3], x3 = xy[4],
               y3 = xy[5];
  const std::array<real_t, 3> bb{y2 - y3, y3 - y1, y1 - y2};
  const std::array<real_t, 3> cc{x3 - x2, x1 - x3, x2 - x1};
  la::DenseMatrix ke(3, 3);
  const real_t c = 1.0 / (4.0 * area);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      ke(i, j) = c * (bb[i] * bb[j] + cc[i] * cc[j]);
  return ke;
}

}  // namespace pfem::fem
