#include "fem/mesh_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace pfem::fem {

std::string elem_type_name(ElemType t) {
  switch (t) {
    case ElemType::Quad4: return "quad4";
    case ElemType::Tri3: return "tri3";
    case ElemType::Quad8: return "quad8";
    case ElemType::Hex8: return "hex8";
  }
  return "?";
}

ElemType elem_type_from_name(const std::string& name) {
  if (name == "quad4") return ElemType::Quad4;
  if (name == "tri3") return ElemType::Tri3;
  if (name == "quad8") return ElemType::Quad8;
  if (name == "hex8") return ElemType::Hex8;
  throw Error("unknown element type '" + name + "'");
}

void write_mesh(std::ostream& os, const Mesh& mesh) {
  os << "pfem-mesh 1\n";
  os << "elemtype " << elem_type_name(mesh.type()) << "\n";
  os << "nodes " << mesh.num_nodes() << "\n";
  os << std::setprecision(17);
  for (index_t n = 0; n < mesh.num_nodes(); ++n) {
    os << mesh.x(n) << " " << mesh.y(n);
    if (mesh.dim() == 3) os << " " << mesh.z(n);
    os << "\n";
  }
  os << "elements " << mesh.num_elems() << "\n";
  for (index_t e = 0; e < mesh.num_elems(); ++e) {
    const auto nodes = mesh.elem_nodes(e);
    for (std::size_t k = 0; k < nodes.size(); ++k)
      os << (k ? " " : "") << nodes[k];
    os << "\n";
  }
}

void write_mesh(const std::string& path, const Mesh& mesh) {
  std::ofstream os(path);
  PFEM_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  write_mesh(os, mesh);
}

Mesh read_mesh(std::istream& is) {
  std::string magic;
  int version = 0;
  PFEM_CHECK_MSG(static_cast<bool>(is >> magic >> version) &&
                     magic == "pfem-mesh" && version == 1,
                 "not a pfem-mesh v1 stream");
  std::string kw, type_name;
  PFEM_CHECK_MSG(static_cast<bool>(is >> kw >> type_name) && kw == "elemtype",
                 "expected 'elemtype'");
  const ElemType type = elem_type_from_name(type_name);
  const index_t dim = elem_dim(type);

  index_t n_nodes = 0;
  PFEM_CHECK_MSG(static_cast<bool>(is >> kw >> n_nodes) && kw == "nodes" &&
                     n_nodes >= 0,
                 "expected 'nodes <N>'");
  Vector coords(static_cast<std::size_t>(n_nodes) *
                static_cast<std::size_t>(dim));
  for (std::size_t i = 0; i < coords.size(); ++i)
    PFEM_CHECK_MSG(static_cast<bool>(is >> coords[i]),
                   "truncated node coordinates");

  index_t n_elems = 0;
  PFEM_CHECK_MSG(static_cast<bool>(is >> kw >> n_elems) && kw == "elements" &&
                     n_elems >= 0,
                 "expected 'elements <M>'");
  IndexVector conn(static_cast<std::size_t>(n_elems) *
                   static_cast<std::size_t>(nodes_per_elem(type)));
  for (std::size_t i = 0; i < conn.size(); ++i) {
    PFEM_CHECK_MSG(static_cast<bool>(is >> conn[i]),
                   "truncated connectivity");
    PFEM_CHECK_MSG(conn[i] >= 0 && conn[i] < n_nodes,
                   "connectivity node id out of range");
  }
  return Mesh(type, std::move(coords), std::move(conn));
}

Mesh read_mesh(const std::string& path) {
  std::ifstream is(path);
  PFEM_CHECK_MSG(is.good(), "cannot open " << path << " for reading");
  return read_mesh(is);
}

}  // namespace pfem::fem
