#include "fem/problems.hpp"

#include "common/error.hpp"
#include "fem/structured.hpp"

namespace pfem::fem {

sparse::CsrMatrix CantileverProblem::assemble_mass() const {
  return assemble(mesh, dofs, material, Operator::Mass);
}

CantileverProblem make_cantilever(const CantileverSpec& spec) {
  PFEM_CHECK(spec.nx >= 1 && spec.ny >= 1);
  const real_t lx = static_cast<real_t>(spec.nx);
  const real_t ly = static_cast<real_t>(spec.ny);
  Mesh mesh = [&] {
    switch (spec.elem_type) {
      case ElemType::Quad4: return structured_quad(spec.nx, spec.ny, lx, ly);
      case ElemType::Tri3: return structured_tri(spec.nx, spec.ny, lx, ly);
      case ElemType::Quad8: return structured_quad8(spec.nx, spec.ny, lx, ly);
      case ElemType::Hex8: break;  // falls through to the check below
    }
    PFEM_CHECK_MSG(false,
                   "make_cantilever builds 2-D meshes; use "
                   "make_cantilever_3d for Hex8");
  }();

  Material mat;
  mat.youngs_modulus = spec.youngs_modulus;
  mat.poisson_ratio = spec.poisson_ratio;
  mat.density = spec.density;
  mat.thickness = spec.thickness;

  DofMap dofs(mesh.num_nodes(), 2);
  for (index_t n : mesh.nodes_at_x(0.0)) dofs.fix_node(n);
  dofs.finalize();

  sparse::CsrMatrix k = assemble(mesh, dofs, mat, Operator::Stiffness);

  Vector f(static_cast<std::size_t>(dofs.num_free()), 0.0);
  const IndexVector tip = mesh.nodes_at_x(lx);
  add_edge_load(dofs, tip, /*comp=*/0, spec.load_total, f);

  return CantileverProblem{std::move(mesh), std::move(dofs), mat,
                           std::move(k),   std::move(f),     spec.nx,
                           spec.ny};
}

CantileverProblem make_cantilever_3d(const Cantilever3dSpec& spec) {
  PFEM_CHECK(spec.nx >= 1 && spec.ny >= 1 && spec.nz >= 1);
  const real_t lx = static_cast<real_t>(spec.nx);
  const real_t ly = static_cast<real_t>(spec.ny);
  const real_t lz = static_cast<real_t>(spec.nz);
  Mesh mesh = structured_hex(spec.nx, spec.ny, spec.nz, lx, ly, lz);

  Material mat;
  mat.youngs_modulus = spec.youngs_modulus;
  mat.poisson_ratio = spec.poisson_ratio;
  mat.density = spec.density;

  DofMap dofs(mesh.num_nodes(), 3);
  for (index_t n : mesh.nodes_at_x(0.0)) dofs.fix_node(n);
  dofs.finalize();

  sparse::CsrMatrix k = assemble(mesh, dofs, mat, Operator::Stiffness);
  Vector f(static_cast<std::size_t>(dofs.num_free()), 0.0);
  const IndexVector tip = mesh.nodes_at_x(lx);
  add_edge_load(dofs, tip, /*comp=*/0, spec.load_total, f);

  return CantileverProblem{std::move(mesh), std::move(dofs), mat,
                           std::move(k),   std::move(f),     spec.nx,
                           spec.ny,        spec.nz};
}

std::vector<MeshInfo> table2_meshes() {
  // nx, ny as printed in Table 2 of the paper.  Note: the paper's nEqn
  // for Mesh2/Mesh3 (656, 1640) corresponds to clamping the 41-node
  // edge, i.e. those meshes are oriented with the clamped edge along
  // their 40-element side; make_table2_cantilever() builds them
  // transposed (8x40, 20x40 with the x=0 edge clamped) so that nEqn
  // reproduces the paper exactly.  All other meshes clamp x=0 directly.
  static constexpr std::pair<index_t, index_t> dims[] = {
      {7, 1},    {40, 8},   {40, 20},  {50, 50},  {60, 60},
      {70, 70},  {80, 80},  {90, 90},  {100, 100}, {200, 100}};
  std::vector<MeshInfo> out;
  out.reserve(std::size(dims));
  int k = 1;
  for (auto [nx, ny] : dims) {
    MeshInfo m;
    m.name = "Mesh" + std::to_string(k);
    m.nx = nx;
    m.ny = ny;
    m.n_nodes = (nx + 1) * (ny + 1);
    const bool transposed = (k == 2 || k == 3);
    const index_t clamped_nodes = transposed ? (nx + 1) : (ny + 1);
    m.n_eqn = 2 * m.n_nodes - 2 * clamped_nodes;
    out.push_back(std::move(m));
    ++k;
  }
  return out;
}

Vector free_dof_coords(const Mesh& mesh, const DofMap& dofs) {
  PFEM_CHECK(dofs.finalized());
  const auto dim = static_cast<std::size_t>(mesh.dim());
  Vector coords(static_cast<std::size_t>(dofs.num_free()) * dim);
  for (index_t n = 0; n < dofs.num_nodes(); ++n)
    for (index_t c = 0; c < dofs.dofs_per_node(); ++c) {
      const index_t g = dofs.dof(n, c);
      if (g < 0) continue;
      const auto base = static_cast<std::size_t>(g) * dim;
      coords[base] = mesh.x(n);
      coords[base + 1] = mesh.y(n);
      if (dim == 3) coords[base + 2] = mesh.z(n);
    }
  return coords;
}

CantileverProblem make_table2_cantilever(int mesh_number) {
  const auto meshes = table2_meshes();
  PFEM_CHECK_MSG(mesh_number >= 1 &&
                     mesh_number <= static_cast<int>(meshes.size()),
                 "Table 2 defines Mesh1..Mesh10");
  const MeshInfo& info = meshes[static_cast<std::size_t>(mesh_number - 1)];
  CantileverSpec spec;
  const bool transposed = (mesh_number == 2 || mesh_number == 3);
  spec.nx = transposed ? info.ny : info.nx;
  spec.ny = transposed ? info.nx : info.ny;
  return make_cantilever(spec);
}

}  // namespace pfem::fem
