// Element-by-element (EBE) operator — mat-vec without any assembly.
//
// The paper's EDD already skips *global* assembly; EBE goes one step
// further and skips the subdomain CSR too: the operator keeps each
// element's dense matrix and applies K x = Σ_e B_eᵀ (K_e (B_e x)) by
// gather–multiply–scatter.  The trade: dense element storage (64
// entries per Q4 vs ~39 assembled scalars) and duplicated interface
// work, in exchange for zero assembly time and a perfectly regular
// data layout.  Classic on vector machines — the HPC lineage the
// paper's polynomial preconditioners come from.  The storage/time
// trade-off is measured in bench/ablate_ebe.
#pragma once

#include <vector>

#include "core/operator.hpp"
#include "fem/assembly.hpp"
#include "fem/dofmap.hpp"
#include "fem/mesh.hpp"

namespace pfem::fem {

class EbeOperator {
 public:
  /// Precompute the element matrices of `op` for all mesh elements.
  EbeOperator(const Mesh& mesh, const DofMap& dofs, const Material& mat,
              Operator op);

  [[nodiscard]] index_t size() const noexcept { return n_; }

  /// y <- K x (free-dof vectors).
  void apply(std::span<const real_t> x, std::span<real_t> y) const;

  /// Wrap as an abstract operator for the Krylov solvers.
  [[nodiscard]] core::LinearOp as_linear_op() const;

  /// Stored matrix entries (dense element matrices).
  [[nodiscard]] std::uint64_t stored_values() const noexcept {
    return values_.size();
  }

  /// Flops of one apply: 2 entries per stored value + gather/scatter.
  [[nodiscard]] std::uint64_t apply_flops() const noexcept {
    return 2 * stored_values() + 2 * dof_ids_.size();
  }

 private:
  index_t n_;
  index_t edofs_;               // dofs per element
  IndexVector dof_ids_;         // edofs_ per element, -1 = fixed
  std::vector<real_t> values_;  // edofs_^2 per element, row-major
};

}  // namespace pfem::fem
