// Element-by-element (EBE) operator — mat-vec without any assembly.
//
// The paper's EDD already skips *global* assembly; EBE goes one step
// further and skips the subdomain CSR too: the operator keeps each
// element's dense matrix and applies K x = Σ_e B_eᵀ (K_e (B_e x)) by
// gather–multiply–scatter.  The trade: dense element storage (64
// entries per Q4 vs ~39 assembled scalars) and duplicated interface
// work, in exchange for zero assembly time and a perfectly regular
// data layout.  Classic on vector machines — the HPC lineage the
// paper's polynomial preconditioners come from.  The storage/time
// trade-off is measured in bench/ablate_ebe.
//
// The element data lives in a sparse::EbeStore — the same container
// the distributed Format::Ebe rank kernel applies — so apply() runs on
// fixed stack scratch: no per-call allocation, and const applies are
// safe to run concurrently from multiple threads.
#pragma once

#include "core/operator.hpp"
#include "fem/assembly.hpp"
#include "fem/dofmap.hpp"
#include "fem/mesh.hpp"
#include "sparse/ebe_store.hpp"

namespace pfem::fem {

/// Build the element store of `op` over all mesh elements: per-element
/// dense matrices with free-dof ids (-1 = fixed).  This is the global
/// single-domain analog of the per-subdomain store build_edd_partition
/// attaches to each EddSubdomain.
[[nodiscard]] sparse::EbeStore build_ebe_store(const Mesh& mesh,
                                               const DofMap& dofs,
                                               const Material& mat,
                                               Operator op);

class EbeOperator {
 public:
  /// Precompute the element matrices of `op` for all mesh elements.
  EbeOperator(const Mesh& mesh, const DofMap& dofs, const Material& mat,
              Operator op);

  [[nodiscard]] index_t size() const noexcept { return store_.rows(); }

  /// y <- K x (free-dof vectors).  Allocation-free: the element sweep
  /// works on stack scratch bounded by sparse::kMaxEbeElemDofs.
  void apply(std::span<const real_t> x, std::span<real_t> y) const;

  /// Wrap as an abstract operator for the Krylov solvers.
  [[nodiscard]] core::LinearOp as_linear_op() const;

  /// The underlying element store (shared with the rank-kernel format).
  [[nodiscard]] const sparse::EbeStore& store() const noexcept {
    return store_;
  }

  /// Stored matrix entries (dense element matrices).
  [[nodiscard]] std::uint64_t stored_values() const noexcept {
    return store_.stored_values();
  }

  /// Flops of one apply: 2 entries per stored value + gather/scatter.
  [[nodiscard]] std::uint64_t apply_flops() const noexcept {
    return store_.apply_flops();
  }

 private:
  sparse::EbeStore store_;
};

}  // namespace pfem::fem
