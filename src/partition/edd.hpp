// Element-based domain decomposition (EDD) structures — the paper's §3.
//
// Elements are partitioned disjointly; each subdomain s owns the dofs its
// elements touch, in a *local* numbering.  The local distributed matrix
// K̂_loc^(s) (Eq. 32 left) is sub-assembled from the subdomain's elements
// only — interface rows hold *partial* sums, never merged across ranks.
// Interface dofs shared with a neighboring subdomain form per-pair
// exchange lists, ordered by global dof id on both sides, so the
// nearest-neighbor operation û_glob = ⊕Σ_{∂Ω_s} û_loc (Eq. 28) is one
// send + one recv + one add per neighbor.
#pragma once

#include <memory>
#include <vector>

#include "fem/assembly.hpp"
#include "fem/dofmap.hpp"
#include "fem/mesh.hpp"
#include "sparse/csr.hpp"
#include "sparse/ebe_store.hpp"

namespace pfem::partition {

/// One subdomain of an element-based decomposition.
struct EddSubdomain {
  IndexVector elems;            ///< global element ids owned by s
  IndexVector local_to_global;  ///< local dof -> global free dof (sorted)
  sparse::CsrMatrix k_loc;      ///< K̂_loc^(s): sub-assembly on local dofs

  /// The same sub-assembly kept unassembled: the subdomain's element
  /// matrices with dof ids in *local* numbering (UNSCALED, matching
  /// k_loc's entries pre-scaling), element order = elems order.  Feeds
  /// the matrix-free `KernelOptions::Format::Ebe` kernel; shared_ptr so
  /// partition copies stay cheap.  Hand-built partitions may leave it
  /// null — the Ebe kernel then fails with a typed error.
  std::shared_ptr<const sparse::EbeStore> elem_store;

  /// Exchange list with one neighboring subdomain: the local dofs shared
  /// with that neighbor, ordered identically (by global dof) on both
  /// sides so payloads align without index headers.
  struct Neighbor {
    int rank;
    IndexVector shared_local_dofs;
  };
  std::vector<Neighbor> neighbors;

  /// Local dofs lying on any interface (each once, sorted).
  IndexVector interface_local_dofs;

  /// Number of subdomains sharing each local dof (>= 1; > 1 on Γ).
  IndexVector multiplicity;

  [[nodiscard]] index_t n_local() const {
    return as_index(local_to_global.size());
  }
};

/// A complete EDD decomposition of a problem.
struct EddPartition {
  index_t n_global = 0;  ///< global free dofs
  std::vector<EddSubdomain> subs;

  [[nodiscard]] int nparts() const { return static_cast<int>(subs.size()); }

  /// Interface statistics for reporting: total shared dof slots and the
  /// maximum neighbor count of any subdomain.
  [[nodiscard]] index_t total_interface_dofs() const;
  [[nodiscard]] int max_neighbors() const;
};

/// Build an EDD partition.  `elem_part[e]` assigns element e to a part;
/// `op` selects which operator is sub-assembled into k_loc.
[[nodiscard]] EddPartition build_edd_partition(
    const fem::Mesh& mesh, const fem::DofMap& dofs, const fem::Material& mat,
    fem::Operator op, const IndexVector& elem_part, int nparts);

/// Sub-assemble another operator on an existing partition's dof layout
/// (e.g. the mass matrix for dynamics; same sparsity as k_loc).
[[nodiscard]] sparse::CsrMatrix assemble_edd_local(
    const fem::Mesh& mesh, const fem::DofMap& dofs, const fem::Material& mat,
    fem::Operator op, const EddPartition& part, int s);

/// Scatter a global vector to subdomain s in *global distributed* format:
/// û^(s) = B_s u (Eq. 27 left).
[[nodiscard]] Vector edd_scatter(const EddPartition& part, int s,
                                 std::span<const real_t> global);

/// Gather local distributed vectors into the global vector:
/// u = Σ_s B_s^T û_loc^(s) (Eq. 27 right).
[[nodiscard]] Vector edd_gather_local(
    const EddPartition& part, const std::vector<Vector>& local_vectors);

/// Read a globally consistent vector out of global-distributed per-rank
/// copies (values at shared dofs must agree; checked in debug builds).
[[nodiscard]] Vector edd_gather_global(
    const EddPartition& part, const std::vector<Vector>& global_vectors);

}  // namespace pfem::partition
