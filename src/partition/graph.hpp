// Graph-based partitioning: element adjacency and greedy graph growing.
//
// The geometric partitioners (strips/RCB) exploit the structured meshes
// of the paper's experiments; graph growing is the mesh-topology-driven
// alternative ("specific graph methods", §4.1.1) that works on any
// connectivity.  Also provides partition-quality metrics used by the
// partitioner ablation bench.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "fem/mesh.hpp"

namespace pfem::partition {

/// Element adjacency lists: elements are neighbors when they share at
/// least `min_shared_nodes` nodes (1 = node adjacency, 2 = edge
/// adjacency for 2-D elements).
[[nodiscard]] std::vector<IndexVector> element_adjacency(
    const fem::Mesh& mesh, int min_shared_nodes = 2);

/// Greedy graph growing: grow each part by BFS from a peripheral seed
/// until its quota is met.  Returns a part id per vertex.
[[nodiscard]] IndexVector partition_greedy(
    const std::vector<IndexVector>& adjacency, int nparts);

/// Edge cut of a partition: number of adjacency edges whose endpoints
/// land in different parts (each counted once).
[[nodiscard]] std::int64_t edge_cut(const std::vector<IndexVector>& adjacency,
                                    const IndexVector& part);

}  // namespace pfem::partition
