#include "partition/edd.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/error.hpp"

namespace pfem::partition {

index_t EddPartition::total_interface_dofs() const {
  index_t total = 0;
  for (const EddSubdomain& s : subs)
    total += as_index(s.interface_local_dofs.size());
  return total;
}

int EddPartition::max_neighbors() const {
  int m = 0;
  for (const EddSubdomain& s : subs)
    m = std::max(m, static_cast<int>(s.neighbors.size()));
  return m;
}

EddPartition build_edd_partition(const fem::Mesh& mesh,
                                 const fem::DofMap& dofs,
                                 const fem::Material& mat, fem::Operator op,
                                 const IndexVector& elem_part, int nparts) {
  PFEM_CHECK(nparts >= 1);
  PFEM_CHECK(elem_part.size() == static_cast<std::size_t>(mesh.num_elems()));
  const index_t n_global = dofs.num_free();

  EddPartition part;
  part.n_global = n_global;
  part.subs.resize(static_cast<std::size_t>(nparts));

  // Element lists per part.
  for (index_t e = 0; e < mesh.num_elems(); ++e) {
    const index_t p = elem_part[e];
    PFEM_CHECK(p >= 0 && p < nparts);
    part.subs[static_cast<std::size_t>(p)].elems.push_back(e);
  }

  // Which parts touch each global dof.
  std::vector<std::set<index_t>> touching(static_cast<std::size_t>(n_global));
  for (index_t e = 0; e < mesh.num_elems(); ++e) {
    const index_t p = elem_part[e];
    for (index_t g : fem::element_dofs(mesh, dofs, e))
      if (g >= 0) touching[static_cast<std::size_t>(g)].insert(p);
  }

  // Local numbering per part: sorted global dofs the part touches.
  std::vector<IndexVector> g2l(
      static_cast<std::size_t>(nparts),
      IndexVector(static_cast<std::size_t>(n_global), -1));
  for (index_t g = 0; g < n_global; ++g) {
    for (index_t p : touching[static_cast<std::size_t>(g)]) {
      EddSubdomain& sub = part.subs[static_cast<std::size_t>(p)];
      g2l[static_cast<std::size_t>(p)][static_cast<std::size_t>(g)] =
          as_index(sub.local_to_global.size());
      sub.local_to_global.push_back(g);
    }
  }

  // Interface lists: for each pair (s, t) sharing a dof, both record the
  // shared dof in ascending global order — identical order on both ends.
  std::map<std::pair<index_t, index_t>, IndexVector> shared;  // (s,t)->gdofs
  for (index_t g = 0; g < n_global; ++g) {
    const auto& parts = touching[static_cast<std::size_t>(g)];
    if (parts.size() < 2) continue;
    for (auto it = parts.begin(); it != parts.end(); ++it) {
      for (auto jt = std::next(it); jt != parts.end(); ++jt) {
        shared[{*it, *jt}].push_back(g);
      }
    }
  }
  for (const auto& [key, gdofs] : shared) {
    const auto [s, t] = key;
    EddSubdomain& sub_s = part.subs[static_cast<std::size_t>(s)];
    EddSubdomain& sub_t = part.subs[static_cast<std::size_t>(t)];
    EddSubdomain::Neighbor ns{static_cast<int>(t), {}};
    EddSubdomain::Neighbor nt{static_cast<int>(s), {}};
    for (index_t g : gdofs) {
      ns.shared_local_dofs.push_back(
          g2l[static_cast<std::size_t>(s)][static_cast<std::size_t>(g)]);
      nt.shared_local_dofs.push_back(
          g2l[static_cast<std::size_t>(t)][static_cast<std::size_t>(g)]);
    }
    sub_s.neighbors.push_back(std::move(ns));
    sub_t.neighbors.push_back(std::move(nt));
  }
  for (EddSubdomain& sub : part.subs) {
    std::sort(sub.neighbors.begin(), sub.neighbors.end(),
              [](const auto& a, const auto& b) { return a.rank < b.rank; });
    std::set<index_t> iface;
    for (const auto& nb : sub.neighbors)
      iface.insert(nb.shared_local_dofs.begin(), nb.shared_local_dofs.end());
    sub.interface_local_dofs.assign(iface.begin(), iface.end());
  }

  // Multiplicity, local matrices, and the unassembled element blocks the
  // matrix-free Ebe kernel applies (same elements, local dof ids).
  const index_t edofs =
      mesh.num_elems() > 0
          ? as_index(fem::element_dofs(mesh, dofs, 0).size())
          : index_t{1};
  for (int p = 0; p < nparts; ++p) {
    EddSubdomain& sub = part.subs[static_cast<std::size_t>(p)];
    sub.multiplicity.resize(sub.local_to_global.size());
    for (std::size_t l = 0; l < sub.local_to_global.size(); ++l)
      sub.multiplicity[l] = as_index(
          touching[static_cast<std::size_t>(sub.local_to_global[l])].size());
    sub.k_loc = fem::assemble_subset(mesh, dofs, mat, op, sub.elems,
                                     g2l[static_cast<std::size_t>(p)],
                                     sub.n_local());
    IndexVector eids;
    std::vector<real_t> evals;
    eids.reserve(sub.elems.size() * static_cast<std::size_t>(edofs));
    evals.reserve(sub.elems.size() * static_cast<std::size_t>(edofs) * edofs);
    for (const index_t e : sub.elems) {
      const IndexVector gd = fem::element_dofs(mesh, dofs, e);
      for (const index_t g : gd)
        eids.push_back(g >= 0 ? g2l[static_cast<std::size_t>(p)]
                                   [static_cast<std::size_t>(g)]
                              : index_t{-1});
      const la::DenseMatrix ke = fem::element_matrix(mesh, mat, op, e);
      const auto data = ke.data();
      evals.insert(evals.end(), data.begin(), data.end());
    }
    sub.elem_store = std::make_shared<const sparse::EbeStore>(
        sub.n_local(), edofs, std::move(eids), std::move(evals));
  }
  return part;
}

sparse::CsrMatrix assemble_edd_local(const fem::Mesh& mesh,
                                     const fem::DofMap& dofs,
                                     const fem::Material& mat,
                                     fem::Operator op,
                                     const EddPartition& part, int s) {
  PFEM_CHECK(s >= 0 && s < part.nparts());
  const EddSubdomain& sub = part.subs[static_cast<std::size_t>(s)];
  IndexVector g2l(static_cast<std::size_t>(part.n_global), -1);
  for (std::size_t l = 0; l < sub.local_to_global.size(); ++l)
    g2l[static_cast<std::size_t>(sub.local_to_global[l])] = as_index(l);
  return fem::assemble_subset(mesh, dofs, mat, op, sub.elems, g2l,
                              sub.n_local());
}

Vector edd_scatter(const EddPartition& part, int s,
                   std::span<const real_t> global) {
  PFEM_CHECK(s >= 0 && s < part.nparts());
  PFEM_CHECK(global.size() == static_cast<std::size_t>(part.n_global));
  const EddSubdomain& sub = part.subs[static_cast<std::size_t>(s)];
  Vector local(sub.local_to_global.size());
  for (std::size_t l = 0; l < local.size(); ++l)
    local[l] = global[static_cast<std::size_t>(sub.local_to_global[l])];
  return local;
}

Vector edd_gather_local(const EddPartition& part,
                        const std::vector<Vector>& local_vectors) {
  PFEM_CHECK(local_vectors.size() == part.subs.size());
  Vector global(static_cast<std::size_t>(part.n_global), 0.0);
  for (std::size_t s = 0; s < part.subs.size(); ++s) {
    const EddSubdomain& sub = part.subs[s];
    PFEM_CHECK(local_vectors[s].size() == sub.local_to_global.size());
    for (std::size_t l = 0; l < sub.local_to_global.size(); ++l)
      global[static_cast<std::size_t>(sub.local_to_global[l])] +=
          local_vectors[s][l];
  }
  return global;
}

Vector edd_gather_global(const EddPartition& part,
                         const std::vector<Vector>& global_vectors) {
  PFEM_CHECK(global_vectors.size() == part.subs.size());
  Vector global(static_cast<std::size_t>(part.n_global), 0.0);
  std::vector<bool> seen(static_cast<std::size_t>(part.n_global), false);
  for (std::size_t s = 0; s < part.subs.size(); ++s) {
    const EddSubdomain& sub = part.subs[s];
    PFEM_CHECK(global_vectors[s].size() == sub.local_to_global.size());
    for (std::size_t l = 0; l < sub.local_to_global.size(); ++l) {
      const auto g = static_cast<std::size_t>(sub.local_to_global[l]);
      if (!seen[g]) {
        global[g] = global_vectors[s][l];
        seen[g] = true;
      }
    }
  }
  return global;
}

}  // namespace pfem::partition
