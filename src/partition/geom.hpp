// Geometric k-way partitioners.
//
// The paper partitions its structured cantilever meshes into P
// sub-domains ("partition Ω into P non-overlapping sub-domains in terms
// of element", Algorithm 2).  On structured rectangles, coordinate
// strips and recursive coordinate bisection (RCB) give balanced
// partitions with minimal interfaces — the role METIS-style graph
// partitioners play on unstructured meshes.
#pragma once

#include <array>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace pfem::partition {

using Point = std::pair<real_t, real_t>;

/// Slice items into `nparts` contiguous strips along x (or y), balanced
/// by count.  Returns one part id per item, 0..nparts-1.
[[nodiscard]] IndexVector partition_strips(const std::vector<Point>& pts,
                                           int nparts, bool along_x = true);

/// Recursive coordinate bisection: splits along the longer extent,
/// proportionally for non-power-of-two part counts.
[[nodiscard]] IndexVector partition_rcb(const std::vector<Point>& pts,
                                        int nparts);

/// Part sizes (for balance checks).
[[nodiscard]] IndexVector part_sizes(const IndexVector& part, int nparts);

/// 3-D recursive coordinate bisection: splits along the axis of largest
/// extent among x, y, z.
using Point3 = std::array<real_t, 3>;
[[nodiscard]] IndexVector partition_rcb3(const std::vector<Point3>& pts,
                                         int nparts);

}  // namespace pfem::partition
