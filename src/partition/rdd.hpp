// Row-based domain decomposition (RDD) — the paper's §4 baseline.
//
// A node-based partition of the finite element mesh induces a block-row
// partition of the assembled matrix (Fig. 6).  Each subdomain owns a set
// of global rows; its equations decouple into a local block A_loc (columns
// it owns) and an external block A_ext (columns owned by neighbors).
// The mat-vec (Eq. 48) scatters owned boundary values to neighbors,
// gathers externals, then computes y = A_loc x_loc + A_ext x_ext.
// This is the PSPARSLIB/Aztec/pARMS data layout.
#pragma once

#include <vector>

#include "fem/dofmap.hpp"
#include "fem/mesh.hpp"
#include "sparse/csr.hpp"

namespace pfem::partition {

struct RddSubdomain {
  IndexVector rows;            ///< global rows owned (sorted; local idx = pos)
  sparse::CsrMatrix a_loc;     ///< n_loc x n_loc, owned columns
  sparse::CsrMatrix a_ext;     ///< n_loc x n_ext, external columns
  IndexVector ext_global;      ///< global ids of external columns (sorted)

  /// Square block on owned ∪ external dofs (owned first, externals at
  /// n_local()+k) — the overlap-1 subdomain of restricted additive
  /// Schwarz (one of the §4.1.2 RDD preconditioners).
  sparse::CsrMatrix a_overlap;

  /// Communication schedule with one neighbor (two-sided):
  /// this rank sends the values of `send_local_rows` and receives a
  /// payload written into x_ext at `recv_ext_positions`.
  struct Neighbor {
    int rank;
    IndexVector send_local_rows;
    IndexVector recv_ext_positions;
  };
  std::vector<Neighbor> neighbors;

  index_t n_interior = 0;  ///< rows with no external coupling
  index_t n_boundary = 0;  ///< rows coupled to (or needed by) neighbors

  /// Redundant flops per mat-vec from the paper's node-based FE layout
  /// (Fig. 8): every element touching an owned node is assigned to this
  /// processor, so rows of non-owned ("ghost") nodes are computed and
  /// thrown away.  Zero until annotate_rdd_fe_duplication() runs and for
  /// P = 1.  Affects only the cost accounting, never the values.
  std::uint64_t matvec_extra_flops = 0;

  /// Stored nonzeros of the duplicated-element sub-assembly (the paper's
  /// "storage requirements may increase drastically" drawback).
  std::uint64_t duplicated_nnz = 0;

  [[nodiscard]] index_t n_local() const { return as_index(rows.size()); }
  [[nodiscard]] index_t n_ext() const { return as_index(ext_global.size()); }
};

struct RddPartition {
  index_t n_global = 0;
  std::vector<RddSubdomain> subs;
  IndexVector row_owner;  ///< global row -> part

  [[nodiscard]] int nparts() const { return static_cast<int>(subs.size()); }
};

/// Build the RDD decomposition of an assembled matrix from a row->part
/// assignment.
[[nodiscard]] RddPartition build_rdd_partition(const sparse::CsrMatrix& a,
                                               const IndexVector& row_part,
                                               int nparts);

/// Derive a dof(row) partition from a node partition (a dof inherits its
/// node's part) — the paper's "node-based partitioning".
[[nodiscard]] IndexVector node_part_to_dof_part(const fem::DofMap& dofs,
                                                const IndexVector& node_part);

/// Annotate an RDD partition with the redundant computation/storage of
/// the paper's node-based FE layout (Fig. 8): each processor holds every
/// element sharing one of its nodes, so interface elements are assigned
/// to several processors and the rows of their non-owned nodes are
/// computed redundantly.  Fills matvec_extra_flops / duplicated_nnz per
/// subdomain from the mesh connectivity.
void annotate_rdd_fe_duplication(RddPartition& part, const fem::Mesh& mesh,
                                 const fem::DofMap& dofs);

/// Scatter a global vector to subdomain s (owned rows only): x̄^(s) = B_s x.
[[nodiscard]] Vector rdd_scatter(const RddPartition& part, int s,
                                 std::span<const real_t> global);

/// Gather owned rows of all subdomains into the global vector.
[[nodiscard]] Vector rdd_gather(const RddPartition& part,
                                const std::vector<Vector>& local_vectors);

}  // namespace pfem::partition
