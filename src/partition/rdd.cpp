#include "partition/rdd.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/error.hpp"
#include "fem/assembly.hpp"
#include "sparse/coo.hpp"

namespace pfem::partition {

RddPartition build_rdd_partition(const sparse::CsrMatrix& a,
                                 const IndexVector& row_part, int nparts) {
  PFEM_CHECK(a.rows() == a.cols());
  PFEM_CHECK(row_part.size() == static_cast<std::size_t>(a.rows()));
  PFEM_CHECK(nparts >= 1);
  const index_t n = a.rows();

  RddPartition part;
  part.n_global = n;
  part.row_owner = row_part;
  part.subs.resize(static_cast<std::size_t>(nparts));

  for (index_t g = 0; g < n; ++g) {
    const index_t p = row_part[g];
    PFEM_CHECK(p >= 0 && p < nparts);
    part.subs[static_cast<std::size_t>(p)].rows.push_back(g);
  }

  // Global -> local row index within the owner.
  IndexVector g2l(static_cast<std::size_t>(n), -1);
  for (auto& sub : part.subs) {
    std::sort(sub.rows.begin(), sub.rows.end());
    for (std::size_t l = 0; l < sub.rows.size(); ++l)
      g2l[static_cast<std::size_t>(sub.rows[l])] = as_index(l);
  }

  // Per part: external columns grouped by owner, then build matrices.
  for (int p = 0; p < nparts; ++p) {
    RddSubdomain& sub = part.subs[static_cast<std::size_t>(p)];
    std::set<index_t> ext;
    for (index_t g : sub.rows)
      for (index_t c : a.row_cols(g))
        if (row_part[static_cast<std::size_t>(c)] != p) ext.insert(c);
    sub.ext_global.assign(ext.begin(), ext.end());

    IndexVector ext_pos(static_cast<std::size_t>(n), -1);
    for (std::size_t k = 0; k < sub.ext_global.size(); ++k)
      ext_pos[static_cast<std::size_t>(sub.ext_global[k])] = as_index(k);

    const index_t nl = sub.n_local();
    sparse::CooBuilder loc(nl, nl);
    sparse::CooBuilder extm(nl, std::max<index_t>(sub.n_ext(), 1));
    for (index_t l = 0; l < nl; ++l) {
      const index_t g = sub.rows[static_cast<std::size_t>(l)];
      const auto cols = a.row_cols(g);
      const auto vals = a.row_vals(g);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        const index_t c = cols[k];
        if (row_part[static_cast<std::size_t>(c)] == p)
          loc.add(l, g2l[static_cast<std::size_t>(c)], vals[k]);
        else
          extm.add(l, ext_pos[static_cast<std::size_t>(c)], vals[k]);
      }
    }
    sub.a_loc = loc.build();
    sub.a_ext = extm.build();

    // Overlap-1 Schwarz block: owned rows first, externals appended.
    IndexVector keep = sub.rows;
    keep.insert(keep.end(), sub.ext_global.begin(), sub.ext_global.end());
    sub.a_overlap = a.extract_square(keep);
  }

  // Communication schedules.  For each (consumer p, owner q): the list of
  // q-owned dofs appearing among p's externals, in ascending global order
  // — q sends them, p writes them into x_ext.
  std::map<std::pair<int, int>, IndexVector> needed;  // (p,q) -> global dofs
  for (int p = 0; p < nparts; ++p) {
    const RddSubdomain& sub = part.subs[static_cast<std::size_t>(p)];
    for (index_t g : sub.ext_global)
      needed[{p, static_cast<int>(row_part[static_cast<std::size_t>(g)])}]
          .push_back(g);
  }
  // Track boundary rows of each part (rows whose value some neighbor needs
  // or that read external values).
  std::vector<std::set<index_t>> boundary_rows(
      static_cast<std::size_t>(nparts));
  for (const auto& [key, gdofs] : needed) {
    const auto [p, q] = key;
    RddSubdomain& consumer = part.subs[static_cast<std::size_t>(p)];
    RddSubdomain& owner = part.subs[static_cast<std::size_t>(q)];

    IndexVector ext_pos(gdofs.size());
    IndexVector send_rows(gdofs.size());
    for (std::size_t k = 0; k < gdofs.size(); ++k) {
      const index_t g = gdofs[k];
      const auto it = std::lower_bound(consumer.ext_global.begin(),
                                       consumer.ext_global.end(), g);
      ext_pos[k] = as_index(it - consumer.ext_global.begin());
      send_rows[k] = g2l[static_cast<std::size_t>(g)];
      boundary_rows[static_cast<std::size_t>(q)].insert(
          g2l[static_cast<std::size_t>(g)]);
    }
    // Consumer side: receives from q.
    auto get_neighbor = [](RddSubdomain& s, int rank) -> RddSubdomain::Neighbor& {
      for (auto& nb : s.neighbors)
        if (nb.rank == rank) return nb;
      s.neighbors.push_back(RddSubdomain::Neighbor{rank, {}, {}});
      return s.neighbors.back();
    };
    get_neighbor(consumer, q).recv_ext_positions = std::move(ext_pos);
    get_neighbor(owner, p).send_local_rows = std::move(send_rows);
  }
  for (int p = 0; p < nparts; ++p) {
    RddSubdomain& sub = part.subs[static_cast<std::size_t>(p)];
    std::sort(sub.neighbors.begin(), sub.neighbors.end(),
              [](const auto& a_, const auto& b_) { return a_.rank < b_.rank; });
    // Rows reading externals are also boundary rows.
    for (index_t l = 0; l < sub.n_local(); ++l)
      if (sub.a_ext.row_cols(l).size() > 0 && sub.n_ext() > 0)
        boundary_rows[static_cast<std::size_t>(p)].insert(l);
    sub.n_boundary = as_index(boundary_rows[static_cast<std::size_t>(p)].size());
    sub.n_interior = sub.n_local() - sub.n_boundary;
  }
  return part;
}

void annotate_rdd_fe_duplication(RddPartition& part, const fem::Mesh& mesh,
                                 const fem::DofMap& dofs) {
  const int nparts = part.nparts();
  if (nparts <= 1) return;  // no duplication with a single processor
  PFEM_CHECK(dofs.num_free() == part.n_global);

  // Owner part of each free dof.
  const IndexVector& owner = part.row_owner;

  // For each part: the set of stored (row, col) pairs of the
  // duplicated-element sub-assembly — all elements touching an owned
  // dof, all rows those elements produce.
  std::vector<std::set<std::pair<index_t, index_t>>> stored(
      static_cast<std::size_t>(nparts));
  for (index_t e = 0; e < mesh.num_elems(); ++e) {
    const IndexVector ed = fem::element_dofs(mesh, dofs, e);
    std::set<index_t> parts_here;
    for (index_t g : ed)
      if (g >= 0) parts_here.insert(owner[static_cast<std::size_t>(g)]);
    for (index_t p : parts_here) {
      auto& s = stored[static_cast<std::size_t>(p)];
      for (index_t gi : ed) {
        if (gi < 0) continue;
        for (index_t gj : ed) {
          if (gj < 0) continue;
          s.insert({gi, gj});
        }
      }
    }
  }
  for (int p = 0; p < nparts; ++p) {
    RddSubdomain& sub = part.subs[static_cast<std::size_t>(p)];
    const std::uint64_t dup_nnz = stored[static_cast<std::size_t>(p)].size();
    const std::uint64_t owned_nnz =
        static_cast<std::uint64_t>(sub.a_loc.nnz()) +
        static_cast<std::uint64_t>(sub.a_ext.nnz());
    sub.duplicated_nnz = dup_nnz;
    sub.matvec_extra_flops =
        dup_nnz > owned_nnz ? 2 * (dup_nnz - owned_nnz) : 0;
  }
}

IndexVector node_part_to_dof_part(const fem::DofMap& dofs,
                                  const IndexVector& node_part) {
  PFEM_CHECK(node_part.size() == static_cast<std::size_t>(dofs.num_nodes()));
  IndexVector dof_part(static_cast<std::size_t>(dofs.num_free()), 0);
  for (index_t n = 0; n < dofs.num_nodes(); ++n) {
    for (index_t c = 0; c < dofs.dofs_per_node(); ++c) {
      const index_t d = dofs.dof(n, c);
      if (d >= 0) dof_part[static_cast<std::size_t>(d)] =
          node_part[static_cast<std::size_t>(n)];
    }
  }
  return dof_part;
}

Vector rdd_scatter(const RddPartition& part, int s,
                   std::span<const real_t> global) {
  PFEM_CHECK(s >= 0 && s < part.nparts());
  PFEM_CHECK(global.size() == static_cast<std::size_t>(part.n_global));
  const RddSubdomain& sub = part.subs[static_cast<std::size_t>(s)];
  Vector local(sub.rows.size());
  for (std::size_t l = 0; l < sub.rows.size(); ++l)
    local[l] = global[static_cast<std::size_t>(sub.rows[l])];
  return local;
}

Vector rdd_gather(const RddPartition& part,
                  const std::vector<Vector>& local_vectors) {
  PFEM_CHECK(local_vectors.size() == part.subs.size());
  Vector global(static_cast<std::size_t>(part.n_global), 0.0);
  for (std::size_t s = 0; s < part.subs.size(); ++s) {
    const RddSubdomain& sub = part.subs[s];
    PFEM_CHECK(local_vectors[s].size() == sub.rows.size());
    for (std::size_t l = 0; l < sub.rows.size(); ++l)
      global[static_cast<std::size_t>(sub.rows[l])] = local_vectors[s][l];
  }
  return global;
}

}  // namespace pfem::partition
