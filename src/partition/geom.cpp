#include "partition/geom.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace pfem::partition {

IndexVector partition_strips(const std::vector<Point>& pts, int nparts,
                             bool along_x) {
  PFEM_CHECK(nparts >= 1);
  const std::size_t n = pts.size();
  if (n == 0) return {};
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return along_x ? pts[a].first < pts[b].first
                                    : pts[a].second < pts[b].second;
                   });
  IndexVector part(n, 0);
  for (std::size_t k = 0; k < n; ++k) {
    // Balanced contiguous blocks: item k of the sorted order goes to
    // part floor(k * nparts / n).
    part[order[k]] =
        static_cast<index_t>((k * static_cast<std::size_t>(nparts)) / n);
  }
  return part;
}

namespace {

void rcb_recurse(const std::vector<Point>& pts, std::vector<std::size_t>& ids,
                 std::size_t lo, std::size_t hi, int part_lo, int part_hi,
                 IndexVector& part) {
  if (part_hi - part_lo == 1) {
    for (std::size_t k = lo; k < hi; ++k)
      part[ids[k]] = static_cast<index_t>(part_lo);
    return;
  }
  // Split proportionally: left gets floor(nparts/2) parts.
  const int nl = (part_hi - part_lo) / 2;
  const int nr = (part_hi - part_lo) - nl;
  const std::size_t n = hi - lo;
  const std::size_t cut =
      lo + (n * static_cast<std::size_t>(nl)) /
               static_cast<std::size_t>(nl + nr);

  if (lo == hi) return;  // nothing left: remaining parts stay empty
  // Choose the axis with the larger extent.
  real_t xmin = pts[ids[lo]].first, xmax = xmin;
  real_t ymin = pts[ids[lo]].second, ymax = ymin;
  for (std::size_t k = lo; k < hi; ++k) {
    xmin = std::min(xmin, pts[ids[k]].first);
    xmax = std::max(xmax, pts[ids[k]].first);
    ymin = std::min(ymin, pts[ids[k]].second);
    ymax = std::max(ymax, pts[ids[k]].second);
  }
  const bool along_x = (xmax - xmin) >= (ymax - ymin);

  std::nth_element(ids.begin() + static_cast<std::ptrdiff_t>(lo),
                   ids.begin() + static_cast<std::ptrdiff_t>(cut),
                   ids.begin() + static_cast<std::ptrdiff_t>(hi),
                   [&](std::size_t a, std::size_t b) {
                     return along_x ? pts[a].first < pts[b].first
                                    : pts[a].second < pts[b].second;
                   });
  rcb_recurse(pts, ids, lo, cut, part_lo, part_lo + nl, part);
  rcb_recurse(pts, ids, cut, hi, part_lo + nl, part_hi, part);
}

}  // namespace

IndexVector partition_rcb(const std::vector<Point>& pts, int nparts) {
  PFEM_CHECK(nparts >= 1);
  const std::size_t n = pts.size();
  // With fewer items than parts the surplus parts simply stay empty —
  // this matches the paper's Table 3, which runs Mesh1 (7 elements) on
  // 8 processors.
  std::vector<std::size_t> ids(n);
  std::iota(ids.begin(), ids.end(), std::size_t{0});
  IndexVector part(n, 0);
  rcb_recurse(pts, ids, 0, n, 0, nparts, part);
  return part;
}

namespace {

void rcb3_recurse(const std::vector<Point3>& pts,
                  std::vector<std::size_t>& ids, std::size_t lo,
                  std::size_t hi, int part_lo, int part_hi,
                  IndexVector& part) {
  if (part_hi - part_lo == 1) {
    for (std::size_t k = lo; k < hi; ++k)
      part[ids[k]] = static_cast<index_t>(part_lo);
    return;
  }
  if (lo == hi) return;
  const int nl = (part_hi - part_lo) / 2;
  const int nr = (part_hi - part_lo) - nl;
  const std::size_t n = hi - lo;
  const std::size_t cut =
      lo + (n * static_cast<std::size_t>(nl)) /
               static_cast<std::size_t>(nl + nr);

  std::array<real_t, 3> mins = pts[ids[lo]], maxs = pts[ids[lo]];
  for (std::size_t k = lo; k < hi; ++k)
    for (int d = 0; d < 3; ++d) {
      mins[static_cast<std::size_t>(d)] = std::min(
          mins[static_cast<std::size_t>(d)],
          pts[ids[k]][static_cast<std::size_t>(d)]);
      maxs[static_cast<std::size_t>(d)] = std::max(
          maxs[static_cast<std::size_t>(d)],
          pts[ids[k]][static_cast<std::size_t>(d)]);
    }
  int axis = 0;
  real_t extent = maxs[0] - mins[0];
  for (int d = 1; d < 3; ++d)
    if (maxs[static_cast<std::size_t>(d)] -
            mins[static_cast<std::size_t>(d)] > extent) {
      extent = maxs[static_cast<std::size_t>(d)] -
               mins[static_cast<std::size_t>(d)];
      axis = d;
    }
  std::nth_element(ids.begin() + static_cast<std::ptrdiff_t>(lo),
                   ids.begin() + static_cast<std::ptrdiff_t>(cut),
                   ids.begin() + static_cast<std::ptrdiff_t>(hi),
                   [&](std::size_t a, std::size_t b) {
                     return pts[a][static_cast<std::size_t>(axis)] <
                            pts[b][static_cast<std::size_t>(axis)];
                   });
  rcb3_recurse(pts, ids, lo, cut, part_lo, part_lo + nl, part);
  rcb3_recurse(pts, ids, cut, hi, part_lo + nl, part_hi, part);
}

}  // namespace

IndexVector partition_rcb3(const std::vector<Point3>& pts, int nparts) {
  PFEM_CHECK(nparts >= 1);
  const std::size_t n = pts.size();
  std::vector<std::size_t> ids(n);
  std::iota(ids.begin(), ids.end(), std::size_t{0});
  IndexVector part(n, 0);
  rcb3_recurse(pts, ids, 0, n, 0, nparts, part);
  return part;
}

IndexVector part_sizes(const IndexVector& part, int nparts) {
  IndexVector sizes(static_cast<std::size_t>(nparts), 0);
  for (index_t p : part) {
    PFEM_CHECK(p >= 0 && p < nparts);
    ++sizes[static_cast<std::size_t>(p)];
  }
  return sizes;
}

}  // namespace pfem::partition
