#include "partition/graph.hpp"

#include <algorithm>
#include <deque>
#include <map>

#include "common/error.hpp"

namespace pfem::partition {

std::vector<IndexVector> element_adjacency(const fem::Mesh& mesh,
                                           int min_shared_nodes) {
  PFEM_CHECK(min_shared_nodes >= 1);
  const index_t ne = mesh.num_elems();
  // Node -> elements touching it.
  std::vector<IndexVector> node_elems(
      static_cast<std::size_t>(mesh.num_nodes()));
  for (index_t e = 0; e < ne; ++e)
    for (index_t n : mesh.elem_nodes(e))
      node_elems[static_cast<std::size_t>(n)].push_back(e);

  std::vector<IndexVector> adj(static_cast<std::size_t>(ne));
  std::map<index_t, int> shared;  // neighbor candidate -> shared count
  for (index_t e = 0; e < ne; ++e) {
    shared.clear();
    for (index_t n : mesh.elem_nodes(e))
      for (index_t other : node_elems[static_cast<std::size_t>(n)])
        if (other != e) ++shared[other];
    for (const auto& [other, count] : shared)
      if (count >= min_shared_nodes)
        adj[static_cast<std::size_t>(e)].push_back(other);
  }
  return adj;
}

IndexVector partition_greedy(const std::vector<IndexVector>& adjacency,
                             int nparts) {
  PFEM_CHECK(nparts >= 1);
  const std::size_t n = adjacency.size();
  PFEM_CHECK(n >= static_cast<std::size_t>(nparts));
  IndexVector part(n, -1);
  std::size_t assigned = 0;

  for (int p = 0; p < nparts; ++p) {
    const std::size_t quota =
        (n - assigned) / static_cast<std::size_t>(nparts - p);
    if (quota == 0) continue;

    // Peripheral seed: unassigned vertex with the fewest unassigned
    // neighbors (breaks the grid open at a corner).
    std::size_t seed = n;
    std::size_t best_degree = n + 1;
    for (std::size_t v = 0; v < n; ++v) {
      if (part[v] != -1) continue;
      std::size_t deg = 0;
      for (index_t u : adjacency[v])
        if (part[static_cast<std::size_t>(u)] == -1) ++deg;
      if (deg < best_degree) {
        best_degree = deg;
        seed = v;
      }
    }
    PFEM_CHECK(seed < n);

    // BFS growth; if the frontier dries up (disconnected remainder),
    // re-seed at the next unassigned vertex.
    std::size_t grown = 0;
    std::deque<std::size_t> frontier{seed};
    while (grown < quota) {
      if (frontier.empty()) {
        for (std::size_t v = 0; v < n; ++v)
          if (part[v] == -1) {
            frontier.push_back(v);
            break;
          }
        PFEM_CHECK(!frontier.empty());
      }
      const std::size_t v = frontier.front();
      frontier.pop_front();
      if (part[v] != -1) continue;
      part[v] = p;
      ++grown;
      ++assigned;
      for (index_t u : adjacency[v])
        if (part[static_cast<std::size_t>(u)] == -1)
          frontier.push_back(static_cast<std::size_t>(u));
    }
  }
  // Any stragglers (rounding) go to the last part.
  for (std::size_t v = 0; v < n; ++v)
    if (part[v] == -1) part[v] = nparts - 1;
  return part;
}

std::int64_t edge_cut(const std::vector<IndexVector>& adjacency,
                      const IndexVector& part) {
  PFEM_CHECK(adjacency.size() == part.size());
  std::int64_t cut = 0;
  for (std::size_t v = 0; v < adjacency.size(); ++v)
    for (index_t u : adjacency[v])
      if (static_cast<std::size_t>(u) > v &&
          part[v] != part[static_cast<std::size_t>(u)])
        ++cut;
  return cut;
}

}  // namespace pfem::partition
