// Error handling: precondition/invariant checks that throw `pfem::Error`.
//
// Checks guard API boundaries (user-supplied meshes, matrices, solver
// parameters).  Hot loops use PFEM_DEBUG_CHECK which compiles out in
// release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pfem {

/// Exception thrown on violated preconditions or numerical failures
/// (e.g. zero pivot in ILU(0) on a floating subdomain).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A structurally unusable operator or an operator-level configuration
/// that cannot build: a zero/degenerate row under norm-1 scaling, or
/// deflation options whose coord_dim/components/coefficient tables do
/// not match the operator's dof layout.  Distinct from Error so the
/// service can answer with the typed Failed{BadOperator} outcome
/// (request-scoped — the shard keeps serving) instead of a generic
/// solve failure.
class BadOperatorError : public Error {
 public:
  explicit BadOperatorError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_error(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace pfem

#define PFEM_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr))                                                      \
      ::pfem::detail::throw_error(#expr, __FILE__, __LINE__, "");     \
  } while (0)

#define PFEM_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream pfem_os_;                                    \
      pfem_os_ << msg;                                                \
      ::pfem::detail::throw_error(#expr, __FILE__, __LINE__,          \
                                  pfem_os_.str());                    \
    }                                                                 \
  } while (0)

#ifdef NDEBUG
#define PFEM_DEBUG_CHECK(expr) ((void)0)
#else
#define PFEM_DEBUG_CHECK(expr) PFEM_CHECK(expr)
#endif
