// Deterministic random number generation for tests and synthetic matrices.
//
// All stochastic code in the library takes an explicit Rng so every
// experiment is reproducible from its seed.
#pragma once

#include <random>

#include "common/types.hpp"

namespace pfem {

/// Seeded PRNG wrapper with the few draw shapes the library needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : eng_(seed) {}

  /// Uniform real in [lo, hi).
  real_t uniform(real_t lo = 0.0, real_t hi = 1.0) {
    return std::uniform_real_distribution<real_t>(lo, hi)(eng_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  index_t uniform_index(index_t lo, index_t hi) {
    return std::uniform_int_distribution<index_t>(lo, hi)(eng_);
  }

  /// Standard normal draw.
  real_t normal() { return std::normal_distribution<real_t>(0.0, 1.0)(eng_); }

  std::mt19937_64& engine() { return eng_; }

 private:
  std::mt19937_64 eng_;
};

}  // namespace pfem
