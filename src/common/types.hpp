// Fundamental scalar and index types shared across the library.
//
// The whole library uses a 32-bit signed index by default: the paper's
// largest system is 40,400 dofs and even "large" reproduction meshes stay
// far below 2^31 nonzeros.  `index_t` is a typedef so a 64-bit build is a
// one-line change.
#pragma once

#include <cstdint>
#include <vector>

namespace pfem {

using index_t = std::int32_t;
using real_t = double;

/// Dense vector of reals; all kernels operate on contiguous storage.
using Vector = std::vector<real_t>;

/// Dense vector of indices (connectivity, permutations, comm lists).
using IndexVector = std::vector<index_t>;

/// Cast helper: size_t -> index_t with the intent visible at call sites.
constexpr index_t as_index(std::size_t n) noexcept {
  return static_cast<index_t>(n);
}

}  // namespace pfem
