// One home for the cross-layer status enums and their stringifiers.
//
// Three subsystems expose typed status codes that travel beyond their
// own translation unit — onto the wire, into JSON artifacts, into chaos
// replay signatures:
//
//   RejectReason   why the service shed a request   (svc::Rejected)
//   CommErrorKind  why a channel operation failed   (fault::CommError)
//   DecodeStatus   why a protocol frame was refused (net::proto)
//
// They live here under one pattern: explicit, WIRE-STABLE numeric
// values (RejectReason is encoded verbatim by net::proto, and the other
// two appear in JSON artifacts and chaos signatures by name — so for
// all three, append new values and never renumber or reorder existing
// ones), plus one `name()` overload per enum returning the snake_case
// token used on the wire's text fields, in JSON, and in log lines.
// The owning namespaces re-export these via aliases, so call sites keep
// their subsystem-local spelling (svc::RejectReason,
// fault::CommErrorKind, net::proto::DecodeStatus); the numeric contract
// is documented once more, wire-side, in net/proto.hpp.
#pragma once

#include <cstdint>

namespace pfem::status {

/// Why the service refused a SolveRequest without running it.
/// Wire: SolveResponseMsg::reject_reason (u32), values stable.
enum class RejectReason : std::uint32_t {
  QueueFull = 0,         ///< bounded queue at capacity (backpressure)
  DeadlineExceeded = 1,  ///< deadline passed before the solve finished
  UnknownOperator = 2,   ///< operator_key was never registered
  BadRequest = 3,        ///< empty RHS batch or wrong vector length
  ShuttingDown = 4,      ///< service no longer accepting work
  UnknownSession = 5,    ///< session id was never opened (or was evicted
                         ///< and the request demanded strict affinity)
};

[[nodiscard]] constexpr const char* name(RejectReason r) noexcept {
  switch (r) {
    case RejectReason::QueueFull: return "queue_full";
    case RejectReason::DeadlineExceeded: return "deadline_exceeded";
    case RejectReason::UnknownOperator: return "unknown_operator";
    case RejectReason::BadRequest: return "bad_request";
    case RejectReason::ShuttingDown: return "shutting_down";
    case RejectReason::UnknownSession: return "unknown_session";
  }
  return "?";
}

/// Why a channel operation failed (fault::CommError::kind()).
enum class CommErrorKind : std::uint8_t {
  Timeout = 0,  ///< a blocking channel/collective wait exceeded the deadline
  Crash = 1,    ///< an injected rank crash (chaos testing)
  /// The receiver observed a gap in the channel's wire sequence numbers:
  /// a message was dropped on the wire.  Detecting the gap (instead of
  /// silently consuming the next message in its place) is what keeps a
  /// drop from corrupting the solve — the stream can never shift.
  Lost = 2,
};

[[nodiscard]] constexpr const char* name(CommErrorKind k) noexcept {
  switch (k) {
    case CommErrorKind::Timeout: return "timeout";
    case CommErrorKind::Crash: return "crash";
    case CommErrorKind::Lost: return "lost";
  }
  return "?";
}

/// Why a dispatched solve FAILED after admission (svc::Failed::reason).
/// Appears in JSON artifacts and log lines by name; values are stable
/// and append-only like the other enums here.
enum class FailReason : std::uint32_t {
  SolveError = 0,   ///< the solve threw: numerical breakdown, internal check
  BadOperator = 1,  ///< degenerate operator or an operator/options mismatch
                    ///< caught while building (pfem::BadOperatorError)
  CommFailure = 2,  ///< typed communication failure that survived the
                    ///< retry policy (Failed::comm mirrors this value)
};

[[nodiscard]] constexpr const char* name(FailReason r) noexcept {
  switch (r) {
    case FailReason::SolveError: return "solve_error";
    case FailReason::BadOperator: return "bad_operator";
    case FailReason::CommFailure: return "comm_failure";
  }
  return "?";
}

/// Why a protocol frame was refused.  Total decoding: every malformed
/// input maps to one of these (never UB, never an exception).
enum class DecodeStatus : std::uint32_t {
  Ok = 0,
  Truncated = 1,   ///< fewer bytes than the header/body claims
  BadMagic = 2,
  BadVersion = 3,
  BadType = 4,
  Oversized = 5,   ///< body_len exceeds kMaxBodyBytes (or a count lies)
  BadBody = 6,     ///< structurally invalid body for the declared type
};

[[nodiscard]] constexpr const char* name(DecodeStatus s) noexcept {
  switch (s) {
    case DecodeStatus::Ok: return "ok";
    case DecodeStatus::Truncated: return "truncated";
    case DecodeStatus::BadMagic: return "bad_magic";
    case DecodeStatus::BadVersion: return "bad_version";
    case DecodeStatus::BadType: return "bad_type";
    case DecodeStatus::Oversized: return "oversized";
    case DecodeStatus::BadBody: return "bad_body";
  }
  return "?";
}

}  // namespace pfem::status
