// Wall-clock timing used by the experiment harness.
#pragma once

#include <chrono>

namespace pfem {

/// Monotonic wall-clock stopwatch.  Construction starts the clock.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restart the clock.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pfem
