// Deterministic fault injection for the SPMD runtime.
//
// The paper's EDD-FGMRES is all nearest-neighbor exchanges and global
// reductions (Table 1) — at production scale every one of those channel
// ops is an opportunity for a peer to be late, lossy or dead.  This
// module supplies the *schedule* of such failures: a seeded FaultPlan
// maps (rank, peer, op-sequence-number) sites to actions (delay a
// message, drop it on the wire, deliver it twice, stall a rank, crash a
// rank), and a FaultInjector arms the plan inside par::Team so the
// runtime consults it right at the channel boundary.
//
// Everything is replayable bit-for-bit from the seed: plan generation
// uses a self-contained splitmix64 stream (no libstdc++ distribution
// whose output could vary across platforms), sites are keyed by each
// rank's own deterministic op counters, and fired faults are consumed
// one-shot so a retried job marches past the transient failures of the
// previous attempt exactly once.
//
// This library is a leaf: par links against it (the injector must not
// know about Team), and the typed CommError that channel timeouts and
// injected crashes surface as lives here so solvers and the service can
// catch one exception type without depending on runtime internals.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "common/status.hpp"

namespace pfem::fault {

/// What happens at a fault site.  Keep in sync with fault_type_name().
enum class FaultType : std::uint8_t {
  Delay,      ///< sleep before the op, then perform it normally
  Drop,       ///< the message never enters the channel (send-side only)
  Duplicate,  ///< deliver the message twice (send-side only)
  Stall,      ///< long sleep before the op — a rank that "goes dark"
  Crash,      ///< the rank dies at this op (throws CommError::crash)
};

[[nodiscard]] const char* fault_type_name(FaultType t) noexcept;

/// Which channel operation a site refers to.  Keep in sync with
/// op_name().
enum class Op : std::uint8_t { Send, Recv, Collective };

[[nodiscard]] const char* op_name(Op o) noexcept;

/// Where a fault bites: the `seq`-th `op` that `rank` performs against
/// `peer` (peer == -1 for collectives).  Sequence numbers count per
/// (rank, peer, op-direction) and restart at 0 every job, so a site is
/// a deterministic point in a rank's program order.
struct FaultSite {
  int rank = 0;
  int peer = -1;
  Op op = Op::Send;
  std::uint64_t seq = 0;

  friend bool operator==(const FaultSite&, const FaultSite&) = default;
  friend bool operator<(const FaultSite& a, const FaultSite& b) {
    if (a.rank != b.rank) return a.rank < b.rank;
    if (a.peer != b.peer) return a.peer < b.peer;
    if (a.op != b.op) return a.op < b.op;
    return a.seq < b.seq;
  }
};

struct FaultAction {
  FaultType type = FaultType::Delay;
  double seconds = 0.0;  ///< sleep length for Delay/Stall; unused otherwise

  friend bool operator==(const FaultAction&, const FaultAction&) = default;
};

struct PlannedFault {
  FaultSite site;
  FaultAction action;

  friend bool operator==(const PlannedFault&, const PlannedFault&) = default;
};

/// Knobs for FaultPlan::generate.  Drop/Duplicate only make sense on
/// the send side (a wire loses or re-delivers a message in flight), so
/// generation pins those to Op::Send; the other types land on any op.
struct FaultSpec {
  int nranks = 4;
  int nfaults = 1;
  /// Allowed fault types (all on by default).
  bool delay = true;
  bool drop = true;
  bool duplicate = true;
  bool stall = true;
  bool crash = true;
  /// At most one team-aborting fault (Drop or Crash) per plan.  With
  /// this set, every fault below a plan's first aborting site fires
  /// deterministically on replay — the property the chaos harness
  /// asserts (see DESIGN.md §9 on the determinism boundary).
  bool at_most_one_aborting = false;
  /// Sites land on op sequence numbers in [0, max_seq).
  std::uint64_t max_seq = 64;
  double delay_seconds = 1e-4;
  double stall_seconds = 2e-2;
};

/// splitmix64 — the deterministic stream everything here derives from.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept;

/// FNV-1a over a byte string — the platform-stable companion to mix64
/// for keying schedules off request *content* (std::hash makes no
/// cross-platform promise).  Same string, same value, everywhere.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// A seeded, immutable schedule of faults (sorted by site, sites
/// unique).  Same (seed, spec) always yields the same plan, on any
/// platform.
struct FaultPlan {
  std::uint64_t seed = 0;
  int nranks = 0;
  std::vector<PlannedFault> faults;

  [[nodiscard]] static FaultPlan generate(std::uint64_t seed,
                                          const FaultSpec& spec);

  /// True if any fault can abort the team (a Drop surfaces at the
  /// receiver as a wire-seq gap, or as a timeout when nothing follows
  /// it; Crash throws).
  [[nodiscard]] bool aborting() const;

  /// One line per fault, e.g. "crash @ rank 2 send to 0 seq 17" — the
  /// reproduction recipe printed by failing chaos tests.
  [[nodiscard]] std::string describe() const;
};

/// One fired fault, in the order its rank consumed it.
struct FaultEvent {
  FaultSite site;
  FaultAction action;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Arms a FaultPlan for execution.  Thread-safety contract: fire(site)
/// may only be called with site.rank == the calling rank thread's own
/// rank, so each plan entry's fired flag and each per-rank event log
/// has exactly one writer; readers (events(), all_events()) must wait
/// for the job to finish (Team::run's join provides the ordering).
///
/// Faults are one-shot: a site fires on the first job that reaches it
/// and never again, so a service retry onto the same injector marches
/// past the previous attempt's transient failures — while a reset()
/// re-arms everything for a bit-identical replay.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// The action to apply at `site`, or nullptr (not planned / already
  /// fired).  Firing appends to the rank's event log.
  [[nodiscard]] const FaultAction* fire(const FaultSite& site);

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// Events fired by `rank`, in program order.
  [[nodiscard]] const std::vector<FaultEvent>& events(int rank) const;

  /// All fired events, rank-major (rank 0's in order, then rank 1's...).
  [[nodiscard]] std::vector<FaultEvent> all_events() const;

  /// Re-arm every fault and clear the logs (only while no job is in
  /// flight) — the replay switch.
  void reset();

 private:
  struct Entry {
    FaultAction action;
    bool fired = false;
  };

  FaultPlan plan_;
  std::map<FaultSite, Entry> entries_;          ///< structure const after ctor
  std::vector<std::vector<FaultEvent>> logs_;   ///< one single-writer log/rank
};

/// Why a channel operation failed.  Defined in common/status.hpp (one
/// home for cross-layer status enums, with stable values); re-exported
/// here so fault call sites keep the subsystem-local spelling.
using CommErrorKind = status::CommErrorKind;

[[nodiscard]] constexpr const char* comm_error_kind_name(
    CommErrorKind k) noexcept {
  return status::name(k);
}

/// Typed failure of a channel or collective operation — what a dead or
/// silent peer surfaces as once timeouts are armed, instead of a hang.
/// Solvers catch this (and only this) to return a typed failed report;
/// a rank's own unrelated exception still propagates as itself.
class CommError : public Error {
 public:
  CommError(CommErrorKind kind, int rank, int peer, Op op, std::string what)
      : Error(std::move(what)), kind_(kind), rank_(rank), peer_(peer),
        op_(op) {}

  [[nodiscard]] static CommError timeout(int rank, int peer, Op op,
                                         double seconds);
  [[nodiscard]] static CommError crash(const FaultSite& site);
  [[nodiscard]] static CommError lost(int rank, int peer,
                                      std::uint64_t expected_seq,
                                      std::uint64_t got_seq);

  [[nodiscard]] CommErrorKind kind() const noexcept { return kind_; }
  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int peer() const noexcept { return peer_; }
  [[nodiscard]] Op op() const noexcept { return op_; }

 private:
  CommErrorKind kind_;
  int rank_;
  int peer_;
  Op op_;
};

/// Canonical text form of an event list — what the chaos harness
/// compares across replays of the same seed.
[[nodiscard]] std::string event_signature(const std::vector<FaultEvent>& evts);

/// Deterministic exponential backoff with jitter for attempt
/// `attempt` (0-based): base * 2^attempt, capped at `max_delay`, then
/// scaled by a jitter factor in [0.5, 1.0] drawn from
/// mix64(seed ^ attempt).  Pure function — same (seed, attempt) always
/// gives the same delay, which keeps service retries replayable.
[[nodiscard]] double backoff_seconds(double base, double max_delay,
                                     int attempt, std::uint64_t seed) noexcept;

}  // namespace pfem::fault
