#include "fault/fault.hpp"

#include <algorithm>
#include <sstream>

namespace pfem::fault {

const char* fault_type_name(FaultType t) noexcept {
  switch (t) {
    case FaultType::Delay: return "delay";
    case FaultType::Drop: return "drop";
    case FaultType::Duplicate: return "dup";
    case FaultType::Stall: return "stall";
    case FaultType::Crash: return "crash";
  }
  return "?";
}

const char* op_name(Op o) noexcept {
  switch (o) {
    case Op::Send: return "send";
    case Op::Recv: return "recv";
    case Op::Collective: return "collective";
  }
  return "?";
}

std::uint64_t mix64(std::uint64_t x) noexcept {
  // splitmix64 finalizer (Steele, Lea & Flood) — full-avalanche, and the
  // same bits on every platform, unlike std::uniform_int_distribution.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

namespace {

/// Tiny deterministic stream over mix64: state advances by re-hashing,
/// draws reduce by modulo (bias is irrelevant for scheduling faults).
class Stream {
 public:
  explicit Stream(std::uint64_t seed) : s_(mix64(seed ^ 0x5eedull)) {}

  std::uint64_t next() noexcept { return s_ = mix64(s_); }

  std::uint64_t below(std::uint64_t n) noexcept {
    return n == 0 ? 0 : next() % n;
  }

 private:
  std::uint64_t s_;
};

bool is_aborting(FaultType t) noexcept {
  return t == FaultType::Drop || t == FaultType::Crash;
}

void describe_fault(std::ostringstream& os, const PlannedFault& f) {
  os << fault_type_name(f.action.type) << " @ rank " << f.site.rank << " "
     << op_name(f.site.op);
  if (f.site.op != Op::Collective) {
    os << (f.site.op == Op::Send ? " to " : " from ") << f.site.peer;
  }
  os << " seq " << f.site.seq;
  if (f.action.type == FaultType::Delay || f.action.type == FaultType::Stall)
    os << " (" << f.action.seconds << "s)";
}

}  // namespace

FaultPlan FaultPlan::generate(std::uint64_t seed, const FaultSpec& spec) {
  PFEM_CHECK_MSG(spec.nranks >= 1, "FaultPlan: nranks must be >= 1");
  PFEM_CHECK_MSG(spec.nfaults >= 0, "FaultPlan: negative fault count");

  std::vector<FaultType> types;
  if (spec.delay) types.push_back(FaultType::Delay);
  if (spec.stall) types.push_back(FaultType::Stall);
  if (spec.nranks > 1) {
    // Point-to-point faults need a peer; a 1-rank team has none.
    if (spec.drop) types.push_back(FaultType::Drop);
    if (spec.duplicate) types.push_back(FaultType::Duplicate);
  }
  if (spec.crash) types.push_back(FaultType::Crash);

  FaultPlan plan;
  plan.seed = seed;
  plan.nranks = spec.nranks;
  if (types.empty() || spec.nfaults == 0) return plan;

  Stream rng(seed);
  std::map<FaultSite, FaultAction> sites;
  bool have_aborting = false;
  // Bounded attempts so a tiny site space can't loop forever; duplicate
  // sites are simply re-drawn.
  const int budget = spec.nfaults * 16 + 16;
  for (int tries = 0;
       static_cast<int>(sites.size()) < spec.nfaults && tries < budget;
       ++tries) {
    FaultType t = types[rng.below(types.size())];
    if (spec.at_most_one_aborting && have_aborting && is_aborting(t)) {
      // Re-map to a quiet type if any is enabled; otherwise skip.
      if (spec.delay) t = FaultType::Delay;
      else if (spec.stall) t = FaultType::Stall;
      else if (spec.duplicate && spec.nranks > 1) t = FaultType::Duplicate;
      else continue;
    }

    FaultSite site;
    site.rank = static_cast<int>(rng.below(static_cast<std::uint64_t>(
        spec.nranks)));
    if (t == FaultType::Drop || t == FaultType::Duplicate) {
      site.op = Op::Send;  // wire-level faults originate at the sender
    } else {
      switch (rng.below(spec.nranks > 1 ? 3 : 1)) {
        case 0: site.op = Op::Collective; break;
        case 1: site.op = Op::Send; break;
        default: site.op = Op::Recv; break;
      }
    }
    if (site.op == Op::Collective) {
      site.peer = -1;
    } else {
      const auto other = rng.below(static_cast<std::uint64_t>(spec.nranks - 1));
      site.peer = static_cast<int>(other) +
                  (static_cast<int>(other) >= site.rank ? 1 : 0);
    }
    site.seq = rng.below(spec.max_seq);

    FaultAction action;
    action.type = t;
    if (t == FaultType::Delay) action.seconds = spec.delay_seconds;
    if (t == FaultType::Stall) action.seconds = spec.stall_seconds;

    if (sites.emplace(site, action).second && is_aborting(t))
      have_aborting = true;
  }

  plan.faults.reserve(sites.size());
  for (const auto& [site, action] : sites)
    plan.faults.push_back(PlannedFault{site, action});
  return plan;
}

bool FaultPlan::aborting() const {
  return std::any_of(faults.begin(), faults.end(), [](const PlannedFault& f) {
    return is_aborting(f.action.type);
  });
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  os << "FaultPlan seed=" << seed << " nranks=" << nranks << " ["
     << faults.size() << " faults]";
  for (const PlannedFault& f : faults) {
    os << "\n  ";
    describe_fault(os, f);
  }
  return os.str();
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  PFEM_CHECK_MSG(plan_.nranks >= 1, "FaultInjector: plan has no ranks");
  for (const PlannedFault& f : plan_.faults) {
    PFEM_CHECK_MSG(f.site.rank >= 0 && f.site.rank < plan_.nranks,
                   "FaultInjector: fault site rank out of range");
    entries_.emplace(f.site, Entry{f.action, false});
  }
  logs_.resize(static_cast<std::size_t>(plan_.nranks));
}

const FaultAction* FaultInjector::fire(const FaultSite& site) {
  const auto it = entries_.find(site);
  if (it == entries_.end() || it->second.fired) return nullptr;
  it->second.fired = true;
  logs_[static_cast<std::size_t>(site.rank)].push_back(
      FaultEvent{site, it->second.action});
  return &it->second.action;
}

const std::vector<FaultEvent>& FaultInjector::events(int rank) const {
  PFEM_CHECK(rank >= 0 && rank < plan_.nranks);
  return logs_[static_cast<std::size_t>(rank)];
}

std::vector<FaultEvent> FaultInjector::all_events() const {
  std::vector<FaultEvent> all;
  for (const auto& log : logs_) all.insert(all.end(), log.begin(), log.end());
  return all;
}

void FaultInjector::reset() {
  for (auto& [site, entry] : entries_) entry.fired = false;
  for (auto& log : logs_) log.clear();
}

CommError CommError::timeout(int rank, int peer, Op op, double seconds) {
  std::ostringstream os;
  os << "comm timeout after " << seconds << "s: rank " << rank << " "
     << op_name(op);
  if (op == Op::Send) os << " to " << peer;
  else if (op == Op::Recv) os << " from " << peer;
  return CommError(CommErrorKind::Timeout, rank, peer, op, os.str());
}

CommError CommError::crash(const FaultSite& site) {
  std::ostringstream os;
  os << "injected crash: rank " << site.rank << " at " << op_name(site.op);
  if (site.op != Op::Collective)
    os << (site.op == Op::Send ? " to " : " from ") << site.peer;
  os << " seq " << site.seq;
  return CommError(CommErrorKind::Crash, site.rank, site.peer, site.op,
                   os.str());
}

CommError CommError::lost(int rank, int peer, std::uint64_t expected_seq,
                          std::uint64_t got_seq) {
  std::ostringstream os;
  os << "message lost on the wire: rank " << rank << " recv from " << peer
     << " (wire seq jumped " << expected_seq << " -> " << got_seq << ")";
  return CommError(CommErrorKind::Lost, rank, peer, Op::Recv, os.str());
}

std::string event_signature(const std::vector<FaultEvent>& evts) {
  std::ostringstream os;
  for (const FaultEvent& e : evts) {
    describe_fault(os, PlannedFault{e.site, e.action});
    os << ";";
  }
  return os.str();
}

double backoff_seconds(double base, double max_delay, int attempt,
                       std::uint64_t seed) noexcept {
  if (base <= 0.0) return 0.0;
  double d = base;
  for (int i = 0; i < attempt && d < max_delay; ++i) d *= 2.0;
  if (d > max_delay) d = max_delay;
  const std::uint64_t u =
      mix64(seed ^ (0xa77e0b5ull + static_cast<std::uint64_t>(attempt)));
  const double jitter =
      0.5 + 0.5 * (static_cast<double>(u >> 11) * 0x1.0p-53);
  return d * jitter;
}

}  // namespace pfem::fault
