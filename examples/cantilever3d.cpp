// 3-D example: a hexahedral bar pulled at its free end, solved with the
// parallel EDD solver, with recovered centroid stresses along the bar.
//
//   $ ./cantilever3d [nx ny nz nparts]   (default 12 3 3 4)
#include <cstdlib>
#include <iostream>

#include "core/edd_solver.hpp"
#include "exp/experiments.hpp"
#include "exp/table.hpp"
#include "fem/problems.hpp"
#include "fem/stress.hpp"

int main(int argc, char** argv) {
  using namespace pfem;
  fem::Cantilever3dSpec spec;
  spec.nx = argc > 1 ? std::atoi(argv[1]) : 12;
  spec.ny = argc > 2 ? std::atoi(argv[2]) : 3;
  spec.nz = argc > 3 ? std::atoi(argv[3]) : 3;
  const int nparts = argc > 4 ? std::atoi(argv[4]) : 4;
  const fem::CantileverProblem prob = fem::make_cantilever_3d(spec);

  exp::banner(std::cout, "3-D cantilever bar " + std::to_string(spec.nx) +
                             "x" + std::to_string(spec.ny) + "x" +
                             std::to_string(spec.nz) + " Hex8, " +
                             std::to_string(prob.dofs.num_free()) +
                             " equations, P = " + std::to_string(nparts));

  const partition::EddPartition part = exp::make_edd(prob, nparts);
  core::PolySpec poly;
  poly.degree = 7;
  const core::DistSolve res = core::solve_edd(part, prob.load, poly);
  std::cout << (res.converged ? "converged" : "FAILED") << " in "
            << res.iterations << " iterations\n";
  if (!res.converged) return 1;

  // Axial stress along the bar (element column at the bar axis).
  const auto stresses =
      fem::compute_stresses(prob.mesh, prob.dofs, prob.material, res.x);
  exp::Table table({"x (element centroid)", "sxx", "von Mises"});
  for (index_t i = 0; i < spec.nx; ++i) {
    // Element (i, j=0, k=0): index (0*ny + 0)*nx + i.
    const auto& s = stresses[static_cast<std::size_t>(i)];
    table.add_row({exp::Table::num(static_cast<double>(i) + 0.5, 1),
                   exp::Table::num(s.sxx, 3),
                   exp::Table::num(s.von_mises, 3)});
  }
  table.print(std::cout);
  std::cout << "expected mid-bar sxx ~ F/A = "
            << spec.load_total / static_cast<double>(spec.ny * spec.nz)
            << "\n";
  return 0;
}
