// pfem solve CLI — drive the whole solver stack from the command line on
// a MatrixMarket system or a pfem-mesh file.
//
//   $ ./solve_cli --matrix system.mtx [options]
//   $ ./solve_cli --mesh beam.mesh --clamp-x 0 --pull-x 10 --load 100 [opts]
//   $ ./solve_cli --demo [options]                  (built-in cantilever)
//
// Options:
//   --dd edd|rdd            domain decomposition (default edd; rdd for
//                           --matrix input, which has no mesh)
//   --solver fgmres|cg|bicgstab   Krylov method (default fgmres)
//   --precond gls|neumann|cheb|none|ilu|schwarz   (default gls)
//   --degree N              polynomial degree (default 7)
//   --parts P               subdomains/ranks (default 4)
//   --tol T                 relative residual target (default 1e-6)
//   --restart M             FGMRES restart (default 25)
//   --adaptive-theta        pick Θ by a 30-step Lanczos estimate
//   --machine sp2|origin|modern   report modeled time (default origin)
#include <cstdlib>
#include <optional>
#include <cstring>
#include <iostream>
#include <string>

#include "core/bicgstab.hpp"
#include "core/cg.hpp"
#include "core/diag_scaling.hpp"
#include "core/edd_solver.hpp"
#include "core/rdd_solver.hpp"
#include "exp/experiments.hpp"
#include "exp/table.hpp"
#include "fem/mesh_io.hpp"
#include "fem/problems.hpp"
#include "la/vector_ops.hpp"
#include "par/cost_model.hpp"
#include "sparse/io.hpp"
#include "sparse/lanczos.hpp"

namespace {

using namespace pfem;

struct Args {
  std::string matrix, mesh;
  bool demo = false;
  std::string dd = "edd";
  std::string solver = "fgmres";
  std::string precond = "gls";
  int degree = 7;
  int parts = 4;
  double tol = 1e-6;
  int restart = 25;
  bool adaptive_theta = false;
  std::string machine = "origin";
  double clamp_x = 0.0, pull_x = -1.0, load = 100.0;
};

Args parse(int argc, char** argv) {
  Args a;
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--matrix") a.matrix = need(i);
    else if (flag == "--mesh") a.mesh = need(i);
    else if (flag == "--demo") a.demo = true;
    else if (flag == "--dd") a.dd = need(i);
    else if (flag == "--solver") a.solver = need(i);
    else if (flag == "--precond") a.precond = need(i);
    else if (flag == "--degree") a.degree = std::atoi(need(i));
    else if (flag == "--parts") a.parts = std::atoi(need(i));
    else if (flag == "--tol") a.tol = std::atof(need(i));
    else if (flag == "--restart") a.restart = std::atoi(need(i));
    else if (flag == "--adaptive-theta") a.adaptive_theta = true;
    else if (flag == "--machine") a.machine = need(i);
    else if (flag == "--clamp-x") a.clamp_x = std::atof(need(i));
    else if (flag == "--pull-x") a.pull_x = std::atof(need(i));
    else if (flag == "--load") a.load = std::atof(need(i));
    else {
      std::cerr << "unknown flag " << flag << " (see the header comment)\n";
      std::exit(2);
    }
  }
  if (a.matrix.empty() && a.mesh.empty() && !a.demo) {
    std::cerr << "need --matrix, --mesh or --demo\n";
    std::exit(2);
  }
  return a;
}

par::MachineModel machine_for(const std::string& name) {
  if (name == "sp2") return par::MachineModel::ibm_sp2();
  if (name == "modern") return par::MachineModel::modern_node();
  return par::MachineModel::sgi_origin();
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  core::SolveOptions opts;
  opts.tol = args.tol;
  opts.restart = args.restart;
  opts.max_iters = 200000;

  core::PolySpec poly;
  poly.degree = args.degree;
  if (args.precond == "neumann") poly.kind = core::PolyKind::Neumann;
  else if (args.precond == "cheb") poly.kind = core::PolyKind::Chebyshev;
  else if (args.precond == "none") poly.kind = core::PolyKind::None;
  else poly.kind = core::PolyKind::Gls;

  // ---- Build the problem.
  sparse::CsrMatrix k;
  Vector f;
  std::optional<fem::CantileverProblem> prob;  // FE input path

  if (!args.matrix.empty()) {
    k = sparse::read_matrix_market(args.matrix);
    if (k.rows() != k.cols()) {
      std::cerr << "need a square system\n";
      return 1;
    }
    f.assign(static_cast<std::size_t>(k.rows()), 1.0);
    std::cout << "matrix " << args.matrix << ": " << k.rows() << " x "
              << k.cols() << ", " << k.nnz() << " nnz\n";
  } else if (!args.mesh.empty()) {
    fem::Mesh mesh = fem::read_mesh(args.mesh);
    fem::DofMap dofs(mesh.num_nodes(), mesh.dim());
    for (index_t n : mesh.nodes_at_x(args.clamp_x)) dofs.fix_node(n);
    dofs.finalize();
    if (dofs.num_free() == dofs.num_total()) {
      std::cerr << "no nodes at --clamp-x " << args.clamp_x
                << "; the system would be singular\n";
      return 1;
    }
    fem::Material mat;
    sparse::CsrMatrix kk =
        fem::assemble(mesh, dofs, mat, fem::Operator::Stiffness);
    Vector ff(static_cast<std::size_t>(dofs.num_free()), 0.0);
    const real_t pull =
        args.pull_x >= 0.0 ? args.pull_x : mesh.bounding_box()[1];
    fem::add_edge_load(dofs, mesh.nodes_at_x(pull), 0, args.load, ff);
    prob.emplace(fem::CantileverProblem{std::move(mesh), std::move(dofs),
                                        mat, std::move(kk), std::move(ff),
                                        0, 0, 0});
    k = prob->stiffness;
    f = prob->load;
    std::cout << "mesh " << args.mesh << ": "
              << prob->mesh.num_elems() << " elements, "
              << prob->dofs.num_free() << " equations\n";
  } else {
    fem::CantileverSpec spec;
    spec.nx = 40;
    spec.ny = 20;
    prob.emplace(fem::make_cantilever(spec));
    k = prob->stiffness;
    f = prob->load;
    std::cout << "demo cantilever 40x20: " << prob->dofs.num_free()
              << " equations\n";
  }

  if (args.adaptive_theta && poly.kind != core::PolyKind::None) {
    const core::ScaledSystem s = core::scale_system(k, f);
    const sparse::Interval iv = sparse::estimate_spectrum(s.a, 30);
    poly.theta = {{iv.lo, iv.hi}};
    std::cout << "adaptive Theta = [" << iv.lo << ", " << iv.hi << "]\n";
  }

  // ---- Solve.
  core::DistSolve res;
  std::string solver_name;
  if (args.dd == "edd" && prob.has_value()) {
    const partition::EddPartition part = exp::make_edd(*prob, args.parts);
    if (args.solver == "cg") {
      res = core::solve_edd_cg(part, f, poly, opts);
      solver_name = "EDD-PCG-" + poly.name();
    } else if (args.solver == "bicgstab") {
      res = core::solve_edd_bicgstab(part, f, poly, opts);
      solver_name = "EDD-BiCGSTAB-" + poly.name();
    } else {
      res = core::solve_edd(part, f, poly, opts);
      solver_name = "EDD-FGMRES-" + poly.name();
    }
  } else {
    if (args.dd == "edd")
      std::cout << "(no mesh input: falling back to the RDD row "
                   "decomposition)\n";
    IndexVector row_part(static_cast<std::size_t>(k.rows()));
    for (std::size_t i = 0; i < row_part.size(); ++i)
      row_part[i] = static_cast<index_t>(
          (i * static_cast<std::size_t>(args.parts)) / row_part.size());
    partition::RddPartition part =
        partition::build_rdd_partition(k, row_part, args.parts);
    core::RddOptions rdd;
    rdd.poly = poly;
    if (args.precond == "ilu")
      rdd.precond = core::RddOptions::Precond::BlockJacobiIlu;
    else if (args.precond == "schwarz")
      rdd.precond = core::RddOptions::Precond::AdditiveSchwarz;
    res = core::solve_rdd(part, f, rdd, opts);
    solver_name = "RDD-FGMRES-" +
                  (args.precond == "ilu"
                       ? std::string("blockILU")
                       : (args.precond == "schwarz" ? std::string("RAS")
                                                    : poly.name()));
  }

  // ---- Report.
  const par::MachineModel machine = machine_for(args.machine);
  std::cout << solver_name << " on P = " << args.parts << ": "
            << (res.converged ? "converged" : "FAILED") << " in "
            << res.iterations << " iterations (relres "
            << exp::Table::sci(res.final_relres, 2) << ")\n";
  std::cout << "wall " << exp::Table::num(res.wall_seconds, 4)
            << " s on this host; modeled "
            << exp::Table::num(par::model_time(machine, res.rank_counters)
                                   .total(), 4)
            << " s on " << machine.name << "\n";
  std::cout << "||u||_inf = " << la::nrm_inf(res.x) << "\n";
  return res.converged ? 0 : 1;
}
