// External-system example: solve a MatrixMarket system with the RDD
// solver and the polynomial preconditioner — the path a user takes when
// the matrix does not come from this library's FE substrate.
//
//   $ ./external_matrix [file.mtx]
//
// Without an argument it writes a demo SPD system to a temp file first,
// then reads it back, so the example is self-contained.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "core/rdd_solver.hpp"
#include "exp/table.hpp"
#include "partition/rdd.hpp"
#include "sparse/generators.hpp"
#include "sparse/io.hpp"

int main(int argc, char** argv) {
  using namespace pfem;
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = "external_matrix_demo.mtx";
    sparse::write_matrix_market(path, sparse::laplace2d(40, 40));
    std::cout << "(no input given — wrote demo system to " << path << ")\n";
  }

  const sparse::CsrMatrix a = sparse::read_matrix_market(path);
  std::cout << "read " << path << ": " << a.rows() << " x " << a.cols()
            << ", " << a.nnz() << " nonzeros\n";
  if (a.rows() != a.cols()) {
    std::cerr << "need a square system\n";
    return 1;
  }

  // Simple block-row partition into 4; general matrices have no mesh, so
  // contiguous row blocks are the natural default.
  const int nparts = 4;
  IndexVector row_part(static_cast<std::size_t>(a.rows()));
  for (std::size_t i = 0; i < row_part.size(); ++i)
    row_part[i] = static_cast<index_t>(
        (i * static_cast<std::size_t>(nparts)) / row_part.size());
  const partition::RddPartition part =
      partition::build_rdd_partition(a, row_part, nparts);

  Vector f(static_cast<std::size_t>(a.rows()), 1.0);
  core::RddOptions opts;
  opts.poly.kind = core::PolyKind::Gls;
  opts.poly.degree = 7;
  const core::DistSolve res = core::solve_rdd(part, f, opts);

  std::cout << "RDD-FGMRES-GLS(7): "
            << (res.converged ? "converged" : "FAILED") << " in "
            << res.iterations << " iterations (relres "
            << exp::Table::sci(res.final_relres, 2) << ")\n";
  std::cout << "||u||_inf = "
            << *std::max_element(res.x.begin(), res.x.end()) << "\n";
  if (argc <= 1) std::remove(path.c_str());
  return res.converged ? 0 : 1;
}
