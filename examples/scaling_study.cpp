// Scaling study: sweep the process count for EDD and RDD on one problem
// and print iterations, modeled times on the two paper machines, and the
// communication trace summary — the "am I scaling?" view a user would
// run on their own problem.
//
//   $ ./scaling_study [nx ny maxP]      (default 40 40 8)
#include <cstdlib>
#include <iostream>

#include "core/edd_solver.hpp"
#include "core/rdd_solver.hpp"
#include "exp/experiments.hpp"
#include "exp/table.hpp"
#include "fem/problems.hpp"
#include "par/cost_model.hpp"

int main(int argc, char** argv) {
  using namespace pfem;
  fem::CantileverSpec spec;
  spec.nx = argc > 1 ? std::atoi(argv[1]) : 40;
  spec.ny = argc > 2 ? std::atoi(argv[2]) : 40;
  const int max_p = argc > 3 ? std::atoi(argv[3]) : 8;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);

  exp::banner(std::cout, "scaling study, " +
                             std::to_string(prob.dofs.num_free()) +
                             " equations, GLS(7)");

  core::PolySpec poly;
  poly.degree = 7;
  core::SolveOptions opts;
  opts.tol = 1e-6;
  opts.max_iters = 60000;

  exp::Table table({"solver", "P", "iters", "exchanges", "msgs", "kB sent",
                    "reductions", "S(SP2)", "S(Origin)"});
  auto trace_row = [&](const std::string& name, int p,
                       const core::DistSolve& r, double t1_sp2,
                       double t1_origin) {
    const par::PerfCounters& c = r.rank_counters[0];
    std::uint64_t msgs = 0, bytes = 0;
    for (const auto& rc : r.rank_counters) {
      msgs += rc.neighbor_msgs;
      bytes += rc.neighbor_bytes;
    }
    const double t_sp2 =
        par::model_time(par::MachineModel::ibm_sp2(), r.rank_counters).total();
    const double t_origin =
        par::model_time(par::MachineModel::sgi_origin(), r.rank_counters)
            .total();
    table.add_row({name, exp::Table::integer(p),
                   exp::Table::integer(r.iterations),
                   exp::Table::integer(static_cast<long long>(
                       c.neighbor_exchanges)),
                   exp::Table::integer(static_cast<long long>(msgs)),
                   exp::Table::num(static_cast<double>(bytes) / 1024.0, 1),
                   exp::Table::integer(static_cast<long long>(
                       c.global_reductions)),
                   exp::Table::num(t1_sp2 / t_sp2, 2),
                   exp::Table::num(t1_origin / t_origin, 2)});
  };

  double edd_t1_sp2 = 0, edd_t1_origin = 0, rdd_t1_sp2 = 0, rdd_t1_origin = 0;
  for (int p = 1; p <= max_p; p *= 2) {
    const auto epart = exp::make_edd(prob, p);
    const auto eres = core::solve_edd(epart, prob.load, poly, opts);
    if (p == 1) {
      edd_t1_sp2 = par::model_time(par::MachineModel::ibm_sp2(),
                                   eres.rank_counters).total();
      edd_t1_origin = par::model_time(par::MachineModel::sgi_origin(),
                                      eres.rank_counters).total();
    }
    trace_row("EDD", p, eres, edd_t1_sp2, edd_t1_origin);
  }
  for (int p = 1; p <= max_p; p *= 2) {
    const auto rpart = exp::make_rdd(prob, p);
    core::RddOptions rdd_opts;
    rdd_opts.poly = poly;
    const auto rres = core::solve_rdd(rpart, prob.load, rdd_opts, opts);
    if (p == 1) {
      rdd_t1_sp2 = par::model_time(par::MachineModel::ibm_sp2(),
                                   rres.rank_counters).total();
      rdd_t1_origin = par::model_time(par::MachineModel::sgi_origin(),
                                      rres.rank_counters).total();
    }
    trace_row("RDD", p, rres, rdd_t1_sp2, rdd_t1_origin);
  }
  table.print(std::cout);
  return 0;
}
