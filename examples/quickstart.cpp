// Quickstart: assemble a small cantilever plate, solve it in parallel
// with the element-based domain decomposition FGMRES solver and the
// GLS(7) polynomial preconditioner, and print the tip displacement.
//
//   $ ./quickstart
//
// This is the minimal end-to-end path through the public API:
//   make_cantilever -> make_edd -> solve_edd.
#include <iostream>

#include "core/edd_solver.hpp"
#include "exp/experiments.hpp"
#include "fem/problems.hpp"

int main() {
  using namespace pfem;

  // 1. Build the problem: a 20x5 plane-stress cantilever, clamped at
  //    x = 0, pulled at the free end (the paper's Fig. 9 setup).
  fem::CantileverSpec spec;
  spec.nx = 20;
  spec.ny = 5;
  spec.load_total = 100.0;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  std::cout << "cantilever: " << prob.mesh.num_elems() << " Q4 elements, "
            << prob.dofs.num_free() << " equations\n";

  // 2. Decompose into 4 element-based subdomains (recursive coordinate
  //    bisection); each subdomain sub-assembles its own stiffness and
  //    never merges interface entries — the paper's key idea.
  const partition::EddPartition part = exp::make_edd(prob, /*nparts=*/4);
  std::cout << "partition: " << part.nparts() << " subdomains, "
            << part.total_interface_dofs() << " interface dof slots\n";

  // 3. Solve with restarted FGMRES (m̃ = 25, tol = 1e-6, the paper's
  //    settings) preconditioned by the GLS(7) polynomial on Θ = (ε, 1).
  core::PolySpec poly;
  poly.kind = core::PolyKind::Gls;
  poly.degree = 7;
  const core::DistSolve res = core::solve_edd(part, prob.load, poly);

  std::cout << "solver: " << (res.converged ? "converged" : "FAILED")
            << " in " << res.iterations << " iterations, final relres "
            << res.final_relres << "\n";

  // 4. Read the solution: x-displacement at the tip mid-edge node.
  const IndexVector tip = prob.mesh.nodes_at_x(static_cast<real_t>(spec.nx));
  const index_t node = tip[tip.size() / 2];
  const index_t dof = prob.dofs.dof(node, 0);
  std::cout << "tip x-displacement: " << res.x[static_cast<std::size_t>(dof)]
            << "\n";
  return res.converged ? 0 : 1;
}
