// Nonlinear example: load–displacement curve of a strain-softening
// cantilever, each load level solved by the Picard loop around the
// parallel EDD-FGMRES-GLS(7) solver.
//
//   $ ./nonlinear_softening [softening nparts]   (default 4.0 4)
#include <cstdlib>
#include <iostream>

#include "exp/experiments.hpp"
#include "exp/table.hpp"
#include "fem/problems.hpp"
#include "timeint/nonlinear_driver.hpp"

int main(int argc, char** argv) {
  using namespace pfem;
  const double softening = argc > 1 ? std::atof(argv[1]) : 4.0;
  const int nparts = argc > 2 ? std::atoi(argv[2]) : 4;

  exp::banner(std::cout, "strain-softening cantilever, c = " +
                             exp::Table::num(softening, 2) +
                             ", EDD-FGMRES-GLS(7), P = " +
                             std::to_string(nparts));

  exp::Table table({"load", "tip u_x (linear)", "tip u_x (nonlinear)",
                    "Picard iters", "linear iters total"});
  for (double load : {50.0, 100.0, 200.0, 400.0}) {
    fem::CantileverSpec spec;
    spec.nx = 12;
    spec.ny = 4;
    spec.load_total = load;
    const fem::CantileverProblem prob = fem::make_cantilever(spec);
    const partition::EddPartition part = exp::make_edd(prob, nparts);
    core::PolySpec poly;
    poly.degree = 7;

    timeint::NonlinearOptions lin;
    lin.softening = 0.0;
    const auto r_lin = timeint::solve_nonlinear_edd(
        prob.mesh, prob.dofs, prob.material, part, prob.load, poly, lin);
    timeint::NonlinearOptions soft;
    soft.softening = softening;
    const auto r_soft = timeint::solve_nonlinear_edd(
        prob.mesh, prob.dofs, prob.material, part, prob.load, poly, soft);
    if (!r_lin.converged || !r_soft.converged) {
      std::cerr << "Picard failed to converge at load " << load << "\n";
      return 1;
    }
    const auto tip = prob.mesh.nodes_at_x(static_cast<real_t>(spec.nx));
    const index_t d = prob.dofs.dof(tip[tip.size() / 2], 0);
    table.add_row(
        {exp::Table::num(load, 0),
         exp::Table::num(r_lin.u[static_cast<std::size_t>(d)], 4),
         exp::Table::num(r_soft.u[static_cast<std::size_t>(d)], 4),
         exp::Table::integer(r_soft.picard_iterations),
         exp::Table::integer(r_soft.total_linear_iterations)});
  }
  table.print(std::cout);
  std::cout << "expected: the nonlinear column grows super-linearly with "
               "load (softening), the linear one linearly.\n";
  return 0;
}
