// Elastodynamics example: march the cantilever under a suddenly applied
// tip load with Newmark-β, solving each implicit step with the parallel
// EDD-FGMRES-GLS solver, and print the tip displacement trace (which
// oscillates around twice the static deflection — the classical dynamic
// amplification of a step load).
//
//   $ ./dynamic_cantilever [steps nparts]    (default 20 4)
#include <cstdlib>
#include <iostream>

#include "exp/experiments.hpp"
#include "exp/table.hpp"
#include "fem/problems.hpp"
#include "timeint/dynamic_driver.hpp"

int main(int argc, char** argv) {
  using namespace pfem;
  const index_t steps = argc > 1 ? std::atoi(argv[1]) : 20;
  const int nparts = argc > 2 ? std::atoi(argv[2]) : 4;

  fem::CantileverSpec spec;
  spec.nx = 16;
  spec.ny = 4;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const partition::EddPartition part = exp::make_edd(prob, nparts);

  exp::banner(std::cout, "dynamic cantilever, Newmark-beta + EDD-FGMRES-GLS(7), "
                         "P = " + std::to_string(nparts));

  timeint::DynamicRunOptions opts;
  opts.steps = steps;
  opts.newmark.dt = 0.5;
  opts.solve.tol = 1e-8;
  core::PolySpec poly;
  poly.degree = 7;

  // Instrumented run: re-do the march step by step so we can print the
  // tip trajectory (run_dynamic_edd returns only the final state).
  const sparse::CsrMatrix m =
      fem::assemble(prob.mesh, prob.dofs, prob.material, fem::Operator::Mass);
  const timeint::Newmark nm(prob.stiffness, m, opts.newmark);

  std::vector<sparse::CsrMatrix> k_eff;
  for (int s = 0; s < part.nparts(); ++s) {
    sparse::CsrMatrix ke = part.subs[static_cast<std::size_t>(s)].k_loc;
    ke.add_same_pattern(partition::assemble_edd_local(
                            prob.mesh, prob.dofs, prob.material,
                            fem::Operator::Mass, part, s),
                        nm.a0());
    k_eff.push_back(std::move(ke));
  }

  const IndexVector tip_nodes =
      prob.mesh.nodes_at_x(static_cast<real_t>(spec.nx));
  const index_t tip_dof =
      prob.dofs.dof(tip_nodes[tip_nodes.size() / 2], 0);

  const std::size_t n = prob.load.size();
  Vector u(n, 0.0), v(n, 0.0), a(n, 0.0);
  // a0 from M a = f (zero initial displacement/velocity).
  {
    core::JacobiPrecond jac(m);
    core::SolveOptions io;
    io.tol = 1e-10;
    (void)core::fgmres(m, prob.load, a, jac, io);
  }

  exp::Table table({"step", "t", "iterations", "tip u_x"});
  index_t total_iters = 0;
  for (index_t step = 1; step <= steps; ++step) {
    const Vector rhs = nm.effective_rhs(u, v, a, prob.load);
    const core::DistSolve res =
        core::solve_edd(part, rhs, poly, opts.solve, core::EddVariant::Enhanced,
                        &k_eff);
    if (!res.converged) {
      std::cerr << "step " << step << " failed to converge\n";
      return 1;
    }
    total_iters += res.iterations;
    nm.advance(res.x, u, v, a);
    table.add_row({exp::Table::integer(step),
                   exp::Table::num(step * opts.newmark.dt, 2),
                   exp::Table::integer(res.iterations),
                   exp::Table::num(u[static_cast<std::size_t>(tip_dof)], 5)});
  }
  table.print(std::cout);
  std::cout << "total solver iterations over " << steps << " steps: "
            << total_iters << "\n";
  return 0;
}
