// Static cantilever study: compare preconditioners and domain
// decompositions on one problem, sequential and parallel, and show the
// modeled machine times.
//
//   $ ./static_cantilever [nx ny nparts]     (default 40 20 4)
#include <cstdlib>
#include <iostream>

#include "core/diag_scaling.hpp"
#include "core/edd_solver.hpp"
#include "core/fgmres.hpp"
#include "core/rdd_solver.hpp"
#include "exp/experiments.hpp"
#include "exp/table.hpp"
#include "fem/problems.hpp"
#include "par/cost_model.hpp"

int main(int argc, char** argv) {
  using namespace pfem;
  fem::CantileverSpec spec;
  spec.nx = argc > 1 ? std::atoi(argv[1]) : 40;
  spec.ny = argc > 2 ? std::atoi(argv[2]) : 20;
  const int nparts = argc > 3 ? std::atoi(argv[3]) : 4;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);

  exp::banner(std::cout, "static cantilever " + std::to_string(spec.nx) +
                             "x" + std::to_string(spec.ny) + ", " +
                             std::to_string(prob.dofs.num_free()) +
                             " equations, P = " + std::to_string(nparts));

  // --- Sequential preconditioner shoot-out (scaled system).
  const core::ScaledSystem s = core::scale_system(prob.stiffness, prob.load);
  core::SolveOptions opts;
  opts.tol = 1e-6;
  opts.max_iters = 60000;
  exp::Table seq({"sequential preconditioner", "iterations"});
  {
    Vector x(s.b.size(), 0.0);
    core::Ilu0Precond p(s.a);
    seq.add_row({p.name(), exp::Table::integer(
                               core::fgmres(s.a, s.b, x, p, opts).iterations)});
  }
  for (int m : {3, 7, 10}) {
    Vector x(s.b.size(), 0.0);
    core::GlsPrecond p(core::LinearOp::from_csr(s.a),
                       core::GlsPolynomial(core::default_theta_after_scaling(),
                                           m));
    seq.add_row({p.name(), exp::Table::integer(
                               core::fgmres(s.a, s.b, x, p, opts).iterations)});
  }
  seq.print(std::cout);

  // --- Parallel EDD vs RDD with GLS(7), modeled on both machines.
  core::PolySpec poly;
  poly.degree = 7;
  const partition::EddPartition epart = exp::make_edd(prob, nparts);
  const partition::RddPartition rpart = exp::make_rdd(prob, nparts);
  const core::DistSolve edd =
      core::solve_edd(epart, prob.load, poly, opts);
  core::RddOptions rdd_opts;
  rdd_opts.poly = poly;
  const core::DistSolve rdd =
      core::solve_rdd(rpart, prob.load, rdd_opts, opts);

  exp::Table par_table({"solver", "iterations", "T(SP2) s", "T(Origin) s",
                        "wall s (this host)"});
  auto add = [&](const std::string& name, const core::DistSolve& r) {
    par_table.add_row(
        {name, exp::Table::integer(r.iterations),
         exp::Table::num(
             par::model_time(par::MachineModel::ibm_sp2(), r.rank_counters)
                 .total(), 4),
         exp::Table::num(
             par::model_time(par::MachineModel::sgi_origin(), r.rank_counters)
                 .total(), 4),
         exp::Table::num(r.wall_seconds, 4)});
  };
  add("EDD-FGMRES-GLS(7)", edd);
  add("RDD-FGMRES-GLS(7)", rdd);
  par_table.print(std::cout);

  // Cross-check: both decompositions give the same displacement field.
  real_t maxdiff = 0.0;
  for (std::size_t i = 0; i < edd.x.size(); ++i)
    maxdiff = std::max(maxdiff, std::abs(edd.x[i] - rdd.x[i]));
  std::cout << "max |u_EDD - u_RDD| = " << maxdiff << "\n";
  return (edd.converged && rdd.converged) ? 0 : 1;
}
